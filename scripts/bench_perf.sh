#!/usr/bin/env bash
# End-to-end perf tracker: ligand SCF+DFPT, a polyethylene case, GEMM
# throughput and basis-cache hit rates -> BENCH_perf.json.
#
#   scripts/bench_perf.sh            # full workloads, writes BENCH_perf.json
#   scripts/bench_perf.sh --quick    # CI smoke (~1 s), writes nothing durable
#
# Thread count follows QP_THREADS (default: all cores). Extra flags are
# passed through to the bench_perf binary (e.g. --out PATH).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p qp-bench --bin bench_perf
exec ./target/release/bench_perf "$@"
