#!/usr/bin/env bash
# End-to-end perf tracker: ligand SCF+DFPT, a polyethylene case, GEMM
# throughput and basis-cache hit rates -> BENCH_perf.json.
#
#   scripts/bench_perf.sh            # full workloads, writes BENCH_perf.json
#   scripts/bench_perf.sh --quick    # CI smoke (~1 s), writes nothing durable
#
# The parallel leg runs on QP_THREADS threads (default: all cores; the
# binary clamps to >= 2 and aborts rather than record a single-threaded
# "parallel" row). Extra flags are passed through to the bench_perf binary
# (e.g. --out PATH, --guard for the Sternheimer phase-regression check).
set -euo pipefail
cd "$(dirname "$0")/.."

export QP_THREADS="${QP_THREADS:-$(nproc)}"

cargo build -q --release -p qp-bench --bin bench_perf
exec ./target/release/bench_perf "$@"
