#!/usr/bin/env bash
# Local CI: formatting, lints, tests. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test (QP_THREADS=4: parallel substrate leg)"
QP_THREADS=4 cargo test -q --workspace

echo "== Sternheimer GEMM/pair-loop equivalence (QP_THREADS=4)"
QP_THREADS=4 cargo test -q -p qp-core sternheimer

echo "== perf smoke + Sternheimer phase-regression guard (bench_perf --quick --guard)"
bash scripts/bench_perf.sh --quick --guard --out "$(mktemp)"

echo "== regenerate BENCH_perf.json under the tightened e2e guard"
# Full workloads with --guard: exits 4 whenever any case's parallel leg is
# slower than its serial reference on a >= 2-core host (zero slack). The
# guard also covers the polymer weak-scaling sweep: exit 7 if the fitted
# end-to-end assembly exponent exceeds QP_BENCH_SCALING_MAX, exit 8 if the
# screened path loses to dense on ligand-49, exit 9/10 if the tree-mode
# Rho / screened-DM exponents exceed QP_BENCH_RHO_MAX/QP_BENCH_DM_MAX
# (default 1.4), exit 11 if the tree far field deviates from the direct
# oracle beyond QP_FARFIELD_TOL.
QP_THREADS=2 bash scripts/bench_perf.sh --guard --out BENCH_perf.json

echo "== archive weak-scaling rows (results/weak_scaling.json)"
mkdir -p results
jq '.weak_scaling' BENCH_perf.json > results/weak_scaling.json
test -s results/weak_scaling.json
echo "-- archived results/weak_scaling.json"

echo "== screened vs dense: byte-identical result records (QP_THREADS=3)"
cargo build -q --release -p qp-cli
screen_dir="$(mktemp -d)"
for mol in water polymer:8; do
  tag="${mol/:/_}"
  QP_LOG=warn QP_THREADS=3 ./target/release/qperturb --builtin "$mol" \
      --grid coarse --screening on \
      --result-json "$screen_dir/${tag}_on.json" > /dev/null
  QP_LOG=warn QP_THREADS=3 ./target/release/qperturb --builtin "$mol" \
      --grid coarse --screening off \
      --result-json "$screen_dir/${tag}_off.json" > /dev/null
  cmp "$screen_dir/${tag}_on.json" "$screen_dir/${tag}_off.json"
  echo "-- $mol screened == dense (byte-identical)"
done
rm -rf "$screen_dir"

echo "== far field: tree-served polarizability vs the direct oracle (QP_THREADS=3)"
# The tree far field is on a tolerance contract (QP_FARFIELD_TOL), not a
# byte one: the full DFPT observable must land within 1e-6 Bohr^3 of the
# --farfield direct record, which itself stays byte-stable (the default
# auto route keeps these small systems on the direct path — covered by the
# screening leg's cmp above).
ff_dir="$(mktemp -d)"
for mol in water polymer:8; do
  tag="${mol/:/_}"
  QP_LOG=warn QP_THREADS=3 ./target/release/qperturb --builtin "$mol" \
      --grid coarse --farfield direct \
      --result-json "$ff_dir/${tag}_direct.json" > /dev/null
  QP_LOG=warn QP_THREADS=3 ./target/release/qperturb --builtin "$mol" \
      --grid coarse --farfield tree \
      --result-json "$ff_dir/${tag}_tree.json" > /dev/null
  jq -e --slurpfile ref "$ff_dir/${tag}_direct.json" '
      [.alpha[][]] as $t
      | [$ref[0].alpha[][]] as $r
      | [range($t | length) | (($t[.] - $r[.]) | if . < 0 then -. else . end)]
      | max < 1e-6' "$ff_dir/${tag}_tree.json" > /dev/null \
    || { echo "$mol: tree alpha deviates from direct by >= 1e-6"; exit 1; }
  echo "-- $mol tree alpha == direct alpha (within 1e-6)"
done
rm -rf "$ff_dir"

echo "== profile smoke: qperturb --profile on water (schema + artifact)"
cargo build -q --release -p qp-cli -p qp-bench
profile_dir="$(mktemp -d)"
QP_LOG=warn ./target/release/qperturb --builtin water --grid coarse \
    --profile "$profile_dir/profile_water"
./target/release/profile_report --validate "$profile_dir/profile_water.json"
test -s "$profile_dir/profile_water.folded" \
    || { echo "collapsed-stack artifact missing or empty"; exit 1; }
mkdir -p results
cp "$profile_dir/profile_water.folded" results/profile_water.folded
echo "-- archived results/profile_water.folded"
rm -rf "$profile_dir"

echo "== fault-injection smoke matrix (qperturb + QP_FAULT)"
cargo build -q --release -p qp-cli
for plan in \
    "seed=1;crash:rank=1,iter=2" \
    "seed=2;crash:rank=0,iter=4" \
    "seed=3;stall:rank=2,iter=3,ms=20;crash:rank=2,iter=5"; do
  echo "-- QP_FAULT='$plan'"
  ck_dir="$(mktemp -d)"
  QP_LOG=warn QP_FAULT="$plan" ./target/release/qperturb --builtin water \
      --grid coarse --ranks 4 --checkpoint-dir "$ck_dir" \
      --checkpoint-interval 2
  rm -rf "$ck_dir"
done

echo "== serve smoke: served == direct bytes; kill -9 mid-job resumes bit-exactly"
cargo build -q --release -p qp-cli
serve_dir="$(mktemp -d)"
scrape_addr() { # log-file -> bound address (the startup handshake line)
  local log="$1" a=""
  for _ in $(seq 1 100); do
    a="$(sed -n 's/^qp-serve listening on //p' "$log" | head -n1)"
    [ -n "$a" ] && { echo "$a"; return 0; }
    sleep 0.1
  done
  echo "qp-serve did not report its address" >&2
  cat "$log" >&2
  return 1
}
QP_LOG=warn ./target/release/qperturb serve --addr 127.0.0.1:0 \
    --state-dir "$serve_dir/state" > "$serve_dir/serve.log" 2>&1 &
serve_pid=$!
addr="$(scrape_addr "$serve_dir/serve.log")"
QP_LOG=warn ./target/release/qperturb submit --addr "$addr" --builtin water \
    --json > "$serve_dir/served.json"
QP_LOG=warn ./target/release/qperturb --builtin water \
    --result-json "$serve_dir/direct.json" > /dev/null
cmp "$serve_dir/served.json" "$serve_dir/direct.json"
echo "-- served water == direct water (byte-identical)"

# Kill the server mid-job; the restarted server must re-admit the job from
# its QPCK checkpoint and land on the direct-path bytes.
job="$(QP_LOG=warn ./target/release/qperturb submit --addr "$addr" \
    --builtin polymer:2 --no-wait --json | sed -n 's/.*"job": *\([0-9]*\).*/\1/p')"
[ -n "$job" ] || { echo "no job id from --no-wait submit"; exit 1; }
sleep 1
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
QP_LOG=warn ./target/release/qperturb serve --addr 127.0.0.1:0 \
    --state-dir "$serve_dir/state" > "$serve_dir/serve2.log" 2>&1 &
serve_pid=$!
addr="$(scrape_addr "$serve_dir/serve2.log")"
QP_LOG=warn ./target/release/qperturb wait --addr "$addr" --job "$job" \
    > "$serve_dir/resumed.json"
QP_LOG=warn ./target/release/qperturb --builtin polymer:2 \
    --result-json "$serve_dir/direct_polymer.json" > /dev/null
cmp "$serve_dir/resumed.json" "$serve_dir/direct_polymer.json"
echo "-- killed-and-resumed polymer:2 == direct (byte-identical)"
QP_LOG=warn ./target/release/qperturb shutdown --addr "$addr"
wait "$serve_pid" 2>/dev/null || true
rm -rf "$serve_dir"

echo "CI green."
