#!/usr/bin/env bash
# Regenerate every paper figure + ablation into results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p qp-bench --bins
for fig in fig09a_memory fig09b_density_hamiltonian fig09c_splines \
           fig10_allreduce fig11_indirect fig12_fusion fig13_finegrained \
           fig14_overall fig15_strong fig16_weak \
           ablation_packing_budget ablation_bisection ablation_hierarchy_width; do
  echo "== $fig =="
  ./target/release/$fig | tee "results/$fig.txt"
done
