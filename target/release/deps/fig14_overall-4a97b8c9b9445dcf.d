/root/repo/target/release/deps/fig14_overall-4a97b8c9b9445dcf.d: crates/bench/src/bin/fig14_overall.rs

/root/repo/target/release/deps/fig14_overall-4a97b8c9b9445dcf: crates/bench/src/bin/fig14_overall.rs

crates/bench/src/bin/fig14_overall.rs:
