/root/repo/target/release/deps/fig13_finegrained-18f4dc23263dd8f8.d: crates/bench/src/bin/fig13_finegrained.rs

/root/repo/target/release/deps/fig13_finegrained-18f4dc23263dd8f8: crates/bench/src/bin/fig13_finegrained.rs

crates/bench/src/bin/fig13_finegrained.rs:
