/root/repo/target/release/deps/qp_machine-f48b9edf8a1178d3.d: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/release/deps/libqp_machine-f48b9edf8a1178d3.rlib: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/release/deps/libqp_machine-f48b9edf8a1178d3.rmeta: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

crates/qp-machine/src/lib.rs:
crates/qp-machine/src/calib.rs:
crates/qp-machine/src/cost.rs:
crates/qp-machine/src/kernel_cost.rs:
crates/qp-machine/src/machine.rs:
