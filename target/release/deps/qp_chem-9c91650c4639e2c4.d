/root/repo/target/release/deps/qp_chem-9c91650c4639e2c4.d: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs

/root/repo/target/release/deps/libqp_chem-9c91650c4639e2c4.rlib: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs

/root/repo/target/release/deps/libqp_chem-9c91650c4639e2c4.rmeta: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs

crates/qp-chem/src/lib.rs:
crates/qp-chem/src/angular.rs:
crates/qp-chem/src/basis.rs:
crates/qp-chem/src/elements.rs:
crates/qp-chem/src/geometry.rs:
crates/qp-chem/src/grids.rs:
crates/qp-chem/src/harmonics.rs:
crates/qp-chem/src/io.rs:
crates/qp-chem/src/multipole.rs:
crates/qp-chem/src/radial.rs:
crates/qp-chem/src/spline.rs:
crates/qp-chem/src/structures.rs:
crates/qp-chem/src/xc.rs:
