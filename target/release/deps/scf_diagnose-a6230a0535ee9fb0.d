/root/repo/target/release/deps/scf_diagnose-a6230a0535ee9fb0.d: crates/bench/src/bin/scf_diagnose.rs

/root/repo/target/release/deps/scf_diagnose-a6230a0535ee9fb0: crates/bench/src/bin/scf_diagnose.rs

crates/bench/src/bin/scf_diagnose.rs:
