/root/repo/target/release/deps/scf_diagnose-8d8d3958351441ca.d: crates/bench/src/bin/scf_diagnose.rs

/root/repo/target/release/deps/scf_diagnose-8d8d3958351441ca: crates/bench/src/bin/scf_diagnose.rs

crates/bench/src/bin/scf_diagnose.rs:
