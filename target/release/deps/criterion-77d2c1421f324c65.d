/root/repo/target/release/deps/criterion-77d2c1421f324c65.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-77d2c1421f324c65.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-77d2c1421f324c65.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
