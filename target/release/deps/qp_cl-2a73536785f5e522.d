/root/repo/target/release/deps/qp_cl-2a73536785f5e522.d: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

/root/repo/target/release/deps/libqp_cl-2a73536785f5e522.rlib: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

/root/repo/target/release/deps/libqp_cl-2a73536785f5e522.rmeta: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

crates/qp-cl/src/lib.rs:
crates/qp-cl/src/buffer.rs:
crates/qp-cl/src/collapse.rs:
crates/qp-cl/src/counters.rs:
crates/qp-cl/src/device.rs:
crates/qp-cl/src/fusion.rs:
crates/qp-cl/src/indirect.rs:
crates/qp-cl/src/queue.rs:
