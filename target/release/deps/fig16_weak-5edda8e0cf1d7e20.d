/root/repo/target/release/deps/fig16_weak-5edda8e0cf1d7e20.d: crates/bench/src/bin/fig16_weak.rs

/root/repo/target/release/deps/fig16_weak-5edda8e0cf1d7e20: crates/bench/src/bin/fig16_weak.rs

crates/bench/src/bin/fig16_weak.rs:
