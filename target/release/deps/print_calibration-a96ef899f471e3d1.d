/root/repo/target/release/deps/print_calibration-a96ef899f471e3d1.d: crates/bench/src/bin/print_calibration.rs

/root/repo/target/release/deps/print_calibration-a96ef899f471e3d1: crates/bench/src/bin/print_calibration.rs

crates/bench/src/bin/print_calibration.rs:
