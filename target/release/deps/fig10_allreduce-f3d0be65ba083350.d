/root/repo/target/release/deps/fig10_allreduce-f3d0be65ba083350.d: crates/bench/src/bin/fig10_allreduce.rs

/root/repo/target/release/deps/fig10_allreduce-f3d0be65ba083350: crates/bench/src/bin/fig10_allreduce.rs

crates/bench/src/bin/fig10_allreduce.rs:
