/root/repo/target/release/deps/fig12_fusion-b73317581475a5c6.d: crates/bench/src/bin/fig12_fusion.rs

/root/repo/target/release/deps/fig12_fusion-b73317581475a5c6: crates/bench/src/bin/fig12_fusion.rs

crates/bench/src/bin/fig12_fusion.rs:
