/root/repo/target/release/deps/qp_bench-bbdb7609fb74bfd9.d: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libqp_bench-bbdb7609fb74bfd9.rlib: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libqp_bench-bbdb7609fb74bfd9.rmeta: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/phase_model.rs:
crates/bench/src/table.rs:
crates/bench/src/trace_hook.rs:
crates/bench/src/workloads.rs:
