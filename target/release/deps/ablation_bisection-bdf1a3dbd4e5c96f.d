/root/repo/target/release/deps/ablation_bisection-bdf1a3dbd4e5c96f.d: crates/bench/src/bin/ablation_bisection.rs

/root/repo/target/release/deps/ablation_bisection-bdf1a3dbd4e5c96f: crates/bench/src/bin/ablation_bisection.rs

crates/bench/src/bin/ablation_bisection.rs:
