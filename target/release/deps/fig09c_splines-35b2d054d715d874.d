/root/repo/target/release/deps/fig09c_splines-35b2d054d715d874.d: crates/bench/src/bin/fig09c_splines.rs

/root/repo/target/release/deps/fig09c_splines-35b2d054d715d874: crates/bench/src/bin/fig09c_splines.rs

crates/bench/src/bin/fig09c_splines.rs:
