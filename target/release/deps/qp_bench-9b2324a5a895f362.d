/root/repo/target/release/deps/qp_bench-9b2324a5a895f362.d: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libqp_bench-9b2324a5a895f362.rlib: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libqp_bench-9b2324a5a895f362.rmeta: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/phase_model.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
