/root/repo/target/release/deps/fig09a_memory-0d1eed144d636153.d: crates/bench/src/bin/fig09a_memory.rs

/root/repo/target/release/deps/fig09a_memory-0d1eed144d636153: crates/bench/src/bin/fig09a_memory.rs

crates/bench/src/bin/fig09a_memory.rs:
