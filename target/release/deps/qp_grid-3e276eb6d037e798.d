/root/repo/target/release/deps/qp_grid-3e276eb6d037e798.d: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/release/deps/libqp_grid-3e276eb6d037e798.rlib: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/release/deps/libqp_grid-3e276eb6d037e798.rmeta: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

crates/qp-grid/src/lib.rs:
crates/qp-grid/src/batch.rs:
crates/qp-grid/src/footprint.rs:
crates/qp-grid/src/mapping.rs:
crates/qp-grid/src/octree.rs:
