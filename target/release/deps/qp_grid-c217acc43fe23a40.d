/root/repo/target/release/deps/qp_grid-c217acc43fe23a40.d: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/release/deps/libqp_grid-c217acc43fe23a40.rlib: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/release/deps/libqp_grid-c217acc43fe23a40.rmeta: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

crates/qp-grid/src/lib.rs:
crates/qp-grid/src/batch.rs:
crates/qp-grid/src/footprint.rs:
crates/qp-grid/src/mapping.rs:
crates/qp-grid/src/octree.rs:
