/root/repo/target/release/deps/qp_mpi-ff7bd1bd92076b2b.d: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

/root/repo/target/release/deps/libqp_mpi-ff7bd1bd92076b2b.rlib: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

/root/repo/target/release/deps/libqp_mpi-ff7bd1bd92076b2b.rmeta: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

crates/qp-mpi/src/lib.rs:
crates/qp-mpi/src/collectives.rs:
crates/qp-mpi/src/comm.rs:
crates/qp-mpi/src/hierarchical.rs:
crates/qp-mpi/src/p2p.rs:
crates/qp-mpi/src/packed.rs:
crates/qp-mpi/src/shm.rs:
crates/qp-mpi/src/traffic.rs:
