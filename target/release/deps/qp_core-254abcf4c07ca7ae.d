/root/repo/target/release/deps/qp_core-254abcf4c07ca7ae.d: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/release/deps/libqp_core-254abcf4c07ca7ae.rlib: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/release/deps/libqp_core-254abcf4c07ca7ae.rmeta: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/dfpt.rs:
crates/core/src/dist.rs:
crates/core/src/kernels.rs:
crates/core/src/operators.rs:
crates/core/src/parallel.rs:
crates/core/src/properties.rs:
crates/core/src/scf.rs:
crates/core/src/system.rs:
