/root/repo/target/release/deps/ablation_hierarchy_width-e977e96ee045627f.d: crates/bench/src/bin/ablation_hierarchy_width.rs

/root/repo/target/release/deps/ablation_hierarchy_width-e977e96ee045627f: crates/bench/src/bin/ablation_hierarchy_width.rs

crates/bench/src/bin/ablation_hierarchy_width.rs:
