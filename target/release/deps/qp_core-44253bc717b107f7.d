/root/repo/target/release/deps/qp_core-44253bc717b107f7.d: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/release/deps/libqp_core-44253bc717b107f7.rlib: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/release/deps/libqp_core-44253bc717b107f7.rmeta: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/dfpt.rs:
crates/core/src/dist.rs:
crates/core/src/kernels.rs:
crates/core/src/operators.rs:
crates/core/src/parallel.rs:
crates/core/src/properties.rs:
crates/core/src/scf.rs:
crates/core/src/system.rs:
