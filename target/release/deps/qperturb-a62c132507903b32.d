/root/repo/target/release/deps/qperturb-a62c132507903b32.d: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

/root/repo/target/release/deps/qperturb-a62c132507903b32: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

crates/qp-cli/src/main.rs:
crates/qp-cli/src/control.rs:
