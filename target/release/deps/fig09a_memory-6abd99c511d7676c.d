/root/repo/target/release/deps/fig09a_memory-6abd99c511d7676c.d: crates/bench/src/bin/fig09a_memory.rs

/root/repo/target/release/deps/fig09a_memory-6abd99c511d7676c: crates/bench/src/bin/fig09a_memory.rs

crates/bench/src/bin/fig09a_memory.rs:
