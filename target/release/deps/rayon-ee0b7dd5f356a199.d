/root/repo/target/release/deps/rayon-ee0b7dd5f356a199.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-ee0b7dd5f356a199.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-ee0b7dd5f356a199.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
