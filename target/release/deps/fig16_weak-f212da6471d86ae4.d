/root/repo/target/release/deps/fig16_weak-f212da6471d86ae4.d: crates/bench/src/bin/fig16_weak.rs

/root/repo/target/release/deps/fig16_weak-f212da6471d86ae4: crates/bench/src/bin/fig16_weak.rs

crates/bench/src/bin/fig16_weak.rs:
