/root/repo/target/release/deps/ablation_hierarchy_width-0604875d6b3f095b.d: crates/bench/src/bin/ablation_hierarchy_width.rs

/root/repo/target/release/deps/ablation_hierarchy_width-0604875d6b3f095b: crates/bench/src/bin/ablation_hierarchy_width.rs

crates/bench/src/bin/ablation_hierarchy_width.rs:
