/root/repo/target/release/deps/fig11_indirect-4bb46c9968652782.d: crates/bench/src/bin/fig11_indirect.rs

/root/repo/target/release/deps/fig11_indirect-4bb46c9968652782: crates/bench/src/bin/fig11_indirect.rs

crates/bench/src/bin/fig11_indirect.rs:
