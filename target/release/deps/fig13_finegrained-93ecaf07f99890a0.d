/root/repo/target/release/deps/fig13_finegrained-93ecaf07f99890a0.d: crates/bench/src/bin/fig13_finegrained.rs

/root/repo/target/release/deps/fig13_finegrained-93ecaf07f99890a0: crates/bench/src/bin/fig13_finegrained.rs

crates/bench/src/bin/fig13_finegrained.rs:
