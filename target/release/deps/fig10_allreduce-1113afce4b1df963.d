/root/repo/target/release/deps/fig10_allreduce-1113afce4b1df963.d: crates/bench/src/bin/fig10_allreduce.rs

/root/repo/target/release/deps/fig10_allreduce-1113afce4b1df963: crates/bench/src/bin/fig10_allreduce.rs

crates/bench/src/bin/fig10_allreduce.rs:
