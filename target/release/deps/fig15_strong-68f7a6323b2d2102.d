/root/repo/target/release/deps/fig15_strong-68f7a6323b2d2102.d: crates/bench/src/bin/fig15_strong.rs

/root/repo/target/release/deps/fig15_strong-68f7a6323b2d2102: crates/bench/src/bin/fig15_strong.rs

crates/bench/src/bin/fig15_strong.rs:
