/root/repo/target/release/deps/rot_probe-d58a2f0089b83feb.d: crates/bench/src/bin/rot_probe.rs

/root/repo/target/release/deps/rot_probe-d58a2f0089b83feb: crates/bench/src/bin/rot_probe.rs

crates/bench/src/bin/rot_probe.rs:
