/root/repo/target/release/deps/ablation_packing_budget-b0f1367ab76d084e.d: crates/bench/src/bin/ablation_packing_budget.rs

/root/repo/target/release/deps/ablation_packing_budget-b0f1367ab76d084e: crates/bench/src/bin/ablation_packing_budget.rs

crates/bench/src/bin/ablation_packing_budget.rs:
