/root/repo/target/release/deps/print_calibration-4e346b04892cbf8b.d: crates/bench/src/bin/print_calibration.rs

/root/repo/target/release/deps/print_calibration-4e346b04892cbf8b: crates/bench/src/bin/print_calibration.rs

crates/bench/src/bin/print_calibration.rs:
