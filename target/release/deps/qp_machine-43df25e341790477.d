/root/repo/target/release/deps/qp_machine-43df25e341790477.d: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/release/deps/libqp_machine-43df25e341790477.rlib: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/release/deps/libqp_machine-43df25e341790477.rmeta: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

crates/qp-machine/src/lib.rs:
crates/qp-machine/src/calib.rs:
crates/qp-machine/src/cost.rs:
crates/qp-machine/src/kernel_cost.rs:
crates/qp-machine/src/machine.rs:
