/root/repo/target/release/deps/qp_linalg-6018f3eb86011eeb.d: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

/root/repo/target/release/deps/libqp_linalg-6018f3eb86011eeb.rlib: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

/root/repo/target/release/deps/libqp_linalg-6018f3eb86011eeb.rmeta: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

crates/qp-linalg/src/lib.rs:
crates/qp-linalg/src/cholesky.rs:
crates/qp-linalg/src/csr.rs:
crates/qp-linalg/src/dense.rs:
crates/qp-linalg/src/eigen.rs:
crates/qp-linalg/src/vecops.rs:
