/root/repo/target/release/deps/fig09b_density_hamiltonian-e826b9c5a7399785.d: crates/bench/src/bin/fig09b_density_hamiltonian.rs

/root/repo/target/release/deps/fig09b_density_hamiltonian-e826b9c5a7399785: crates/bench/src/bin/fig09b_density_hamiltonian.rs

crates/bench/src/bin/fig09b_density_hamiltonian.rs:
