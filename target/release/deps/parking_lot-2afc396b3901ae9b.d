/root/repo/target/release/deps/parking_lot-2afc396b3901ae9b.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2afc396b3901ae9b.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2afc396b3901ae9b.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
