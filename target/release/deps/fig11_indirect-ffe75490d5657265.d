/root/repo/target/release/deps/fig11_indirect-ffe75490d5657265.d: crates/bench/src/bin/fig11_indirect.rs

/root/repo/target/release/deps/fig11_indirect-ffe75490d5657265: crates/bench/src/bin/fig11_indirect.rs

crates/bench/src/bin/fig11_indirect.rs:
