/root/repo/target/release/deps/ablation_bisection-d34b5240421ec5f4.d: crates/bench/src/bin/ablation_bisection.rs

/root/repo/target/release/deps/ablation_bisection-d34b5240421ec5f4: crates/bench/src/bin/ablation_bisection.rs

crates/bench/src/bin/ablation_bisection.rs:
