/root/repo/target/release/deps/ablation_packing_budget-8cbbae18e3fee079.d: crates/bench/src/bin/ablation_packing_budget.rs

/root/repo/target/release/deps/ablation_packing_budget-8cbbae18e3fee079: crates/bench/src/bin/ablation_packing_budget.rs

crates/bench/src/bin/ablation_packing_budget.rs:
