/root/repo/target/release/deps/fig09b_density_hamiltonian-20ce109520b0c1e9.d: crates/bench/src/bin/fig09b_density_hamiltonian.rs

/root/repo/target/release/deps/fig09b_density_hamiltonian-20ce109520b0c1e9: crates/bench/src/bin/fig09b_density_hamiltonian.rs

crates/bench/src/bin/fig09b_density_hamiltonian.rs:
