/root/repo/target/release/deps/fig09c_splines-a37419442ed52d37.d: crates/bench/src/bin/fig09c_splines.rs

/root/repo/target/release/deps/fig09c_splines-a37419442ed52d37: crates/bench/src/bin/fig09c_splines.rs

crates/bench/src/bin/fig09c_splines.rs:
