/root/repo/target/release/deps/qp_trace-e5f17ca0dc8d8365.d: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

/root/repo/target/release/deps/libqp_trace-e5f17ca0dc8d8365.rlib: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

/root/repo/target/release/deps/libqp_trace-e5f17ca0dc8d8365.rmeta: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

crates/qp-trace/src/lib.rs:
crates/qp-trace/src/export.rs:
crates/qp-trace/src/log.rs:
crates/qp-trace/src/metrics.rs:
crates/qp-trace/src/span.rs:
