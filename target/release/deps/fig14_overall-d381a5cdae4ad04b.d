/root/repo/target/release/deps/fig14_overall-d381a5cdae4ad04b.d: crates/bench/src/bin/fig14_overall.rs

/root/repo/target/release/deps/fig14_overall-d381a5cdae4ad04b: crates/bench/src/bin/fig14_overall.rs

crates/bench/src/bin/fig14_overall.rs:
