/root/repo/target/release/deps/fig12_fusion-855f690161d6e28d.d: crates/bench/src/bin/fig12_fusion.rs

/root/repo/target/release/deps/fig12_fusion-855f690161d6e28d: crates/bench/src/bin/fig12_fusion.rs

crates/bench/src/bin/fig12_fusion.rs:
