/root/repo/target/release/deps/rot_probe-a29b36f71d94e5d7.d: crates/bench/src/bin/rot_probe.rs

/root/repo/target/release/deps/rot_probe-a29b36f71d94e5d7: crates/bench/src/bin/rot_probe.rs

crates/bench/src/bin/rot_probe.rs:
