/root/repo/target/release/deps/proptest-c116fb84fa6f2de2.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c116fb84fa6f2de2.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c116fb84fa6f2de2.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
