/root/repo/target/release/deps/fig15_strong-9df81ccf88cbf5a4.d: crates/bench/src/bin/fig15_strong.rs

/root/repo/target/release/deps/fig15_strong-9df81ccf88cbf5a4: crates/bench/src/bin/fig15_strong.rs

crates/bench/src/bin/fig15_strong.rs:
