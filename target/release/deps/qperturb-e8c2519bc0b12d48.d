/root/repo/target/release/deps/qperturb-e8c2519bc0b12d48.d: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

/root/repo/target/release/deps/qperturb-e8c2519bc0b12d48: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

crates/qp-cli/src/main.rs:
crates/qp-cli/src/control.rs:
