/root/repo/target/release/libproptest.rlib: /root/repo/shims/proptest/src/lib.rs /root/repo/shims/proptest/src/strategy.rs /root/repo/shims/proptest/src/test_runner.rs
