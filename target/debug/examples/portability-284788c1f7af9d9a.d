/root/repo/target/debug/examples/portability-284788c1f7af9d9a.d: crates/core/../../examples/portability.rs

/root/repo/target/debug/examples/portability-284788c1f7af9d9a: crates/core/../../examples/portability.rs

crates/core/../../examples/portability.rs:
