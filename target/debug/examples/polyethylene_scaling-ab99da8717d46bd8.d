/root/repo/target/debug/examples/polyethylene_scaling-ab99da8717d46bd8.d: crates/core/../../examples/polyethylene_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libpolyethylene_scaling-ab99da8717d46bd8.rmeta: crates/core/../../examples/polyethylene_scaling.rs Cargo.toml

crates/core/../../examples/polyethylene_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
