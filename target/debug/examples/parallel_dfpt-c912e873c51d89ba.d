/root/repo/target/debug/examples/parallel_dfpt-c912e873c51d89ba.d: crates/core/../../examples/parallel_dfpt.rs

/root/repo/target/debug/examples/parallel_dfpt-c912e873c51d89ba: crates/core/../../examples/parallel_dfpt.rs

crates/core/../../examples/parallel_dfpt.rs:
