/root/repo/target/debug/examples/quickstart-ef9f92e432e696d1.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ef9f92e432e696d1: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
