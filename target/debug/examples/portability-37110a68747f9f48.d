/root/repo/target/debug/examples/portability-37110a68747f9f48.d: crates/core/../../examples/portability.rs

/root/repo/target/debug/examples/portability-37110a68747f9f48: crates/core/../../examples/portability.rs

crates/core/../../examples/portability.rs:
