/root/repo/target/debug/examples/quickstart-2d00ee287531a04e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2d00ee287531a04e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
