/root/repo/target/debug/examples/ligand_response-a9700c63abea7c38.d: crates/core/../../examples/ligand_response.rs Cargo.toml

/root/repo/target/debug/examples/libligand_response-a9700c63abea7c38.rmeta: crates/core/../../examples/ligand_response.rs Cargo.toml

crates/core/../../examples/ligand_response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
