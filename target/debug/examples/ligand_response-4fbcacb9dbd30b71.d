/root/repo/target/debug/examples/ligand_response-4fbcacb9dbd30b71.d: crates/core/../../examples/ligand_response.rs

/root/repo/target/debug/examples/ligand_response-4fbcacb9dbd30b71: crates/core/../../examples/ligand_response.rs

crates/core/../../examples/ligand_response.rs:
