/root/repo/target/debug/examples/polyethylene_scaling-12f02ddf332530f1.d: crates/core/../../examples/polyethylene_scaling.rs

/root/repo/target/debug/examples/polyethylene_scaling-12f02ddf332530f1: crates/core/../../examples/polyethylene_scaling.rs

crates/core/../../examples/polyethylene_scaling.rs:
