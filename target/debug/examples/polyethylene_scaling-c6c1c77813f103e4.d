/root/repo/target/debug/examples/polyethylene_scaling-c6c1c77813f103e4.d: crates/core/../../examples/polyethylene_scaling.rs

/root/repo/target/debug/examples/polyethylene_scaling-c6c1c77813f103e4: crates/core/../../examples/polyethylene_scaling.rs

crates/core/../../examples/polyethylene_scaling.rs:
