/root/repo/target/debug/examples/raman_water-0d7781847b219255.d: crates/core/../../examples/raman_water.rs

/root/repo/target/debug/examples/raman_water-0d7781847b219255: crates/core/../../examples/raman_water.rs

crates/core/../../examples/raman_water.rs:
