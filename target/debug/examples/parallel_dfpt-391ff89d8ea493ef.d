/root/repo/target/debug/examples/parallel_dfpt-391ff89d8ea493ef.d: crates/core/../../examples/parallel_dfpt.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_dfpt-391ff89d8ea493ef.rmeta: crates/core/../../examples/parallel_dfpt.rs Cargo.toml

crates/core/../../examples/parallel_dfpt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
