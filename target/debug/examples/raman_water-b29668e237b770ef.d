/root/repo/target/debug/examples/raman_water-b29668e237b770ef.d: crates/core/../../examples/raman_water.rs

/root/repo/target/debug/examples/raman_water-b29668e237b770ef: crates/core/../../examples/raman_water.rs

crates/core/../../examples/raman_water.rs:
