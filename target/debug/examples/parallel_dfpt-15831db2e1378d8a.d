/root/repo/target/debug/examples/parallel_dfpt-15831db2e1378d8a.d: crates/core/../../examples/parallel_dfpt.rs

/root/repo/target/debug/examples/parallel_dfpt-15831db2e1378d8a: crates/core/../../examples/parallel_dfpt.rs

crates/core/../../examples/parallel_dfpt.rs:
