/root/repo/target/debug/examples/portability-0a3b49c62d4240ac.d: crates/core/../../examples/portability.rs Cargo.toml

/root/repo/target/debug/examples/libportability-0a3b49c62d4240ac.rmeta: crates/core/../../examples/portability.rs Cargo.toml

crates/core/../../examples/portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
