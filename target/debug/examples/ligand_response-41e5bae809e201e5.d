/root/repo/target/debug/examples/ligand_response-41e5bae809e201e5.d: crates/core/../../examples/ligand_response.rs

/root/repo/target/debug/examples/ligand_response-41e5bae809e201e5: crates/core/../../examples/ligand_response.rs

crates/core/../../examples/ligand_response.rs:
