/root/repo/target/debug/examples/raman_water-19b697a6df0585b6.d: crates/core/../../examples/raman_water.rs Cargo.toml

/root/repo/target/debug/examples/libraman_water-19b697a6df0585b6.rmeta: crates/core/../../examples/raman_water.rs Cargo.toml

crates/core/../../examples/raman_water.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
