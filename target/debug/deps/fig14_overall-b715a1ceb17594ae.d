/root/repo/target/debug/deps/fig14_overall-b715a1ceb17594ae.d: crates/bench/src/bin/fig14_overall.rs

/root/repo/target/debug/deps/fig14_overall-b715a1ceb17594ae: crates/bench/src/bin/fig14_overall.rs

crates/bench/src/bin/fig14_overall.rs:
