/root/repo/target/debug/deps/qp_trace-caa0ced9bd3b6c8a.d: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

/root/repo/target/debug/deps/libqp_trace-caa0ced9bd3b6c8a.rlib: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

/root/repo/target/debug/deps/libqp_trace-caa0ced9bd3b6c8a.rmeta: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

crates/qp-trace/src/lib.rs:
crates/qp-trace/src/export.rs:
crates/qp-trace/src/log.rs:
crates/qp-trace/src/metrics.rs:
crates/qp-trace/src/span.rs:
