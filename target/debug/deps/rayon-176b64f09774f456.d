/root/repo/target/debug/deps/rayon-176b64f09774f456.d: shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-176b64f09774f456.rmeta: shims/rayon/src/lib.rs Cargo.toml

shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
