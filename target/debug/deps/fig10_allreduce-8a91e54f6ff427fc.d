/root/repo/target/debug/deps/fig10_allreduce-8a91e54f6ff427fc.d: crates/bench/src/bin/fig10_allreduce.rs

/root/repo/target/debug/deps/fig10_allreduce-8a91e54f6ff427fc: crates/bench/src/bin/fig10_allreduce.rs

crates/bench/src/bin/fig10_allreduce.rs:
