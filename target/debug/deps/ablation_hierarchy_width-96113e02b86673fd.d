/root/repo/target/debug/deps/ablation_hierarchy_width-96113e02b86673fd.d: crates/bench/src/bin/ablation_hierarchy_width.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hierarchy_width-96113e02b86673fd.rmeta: crates/bench/src/bin/ablation_hierarchy_width.rs Cargo.toml

crates/bench/src/bin/ablation_hierarchy_width.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
