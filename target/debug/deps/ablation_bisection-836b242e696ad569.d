/root/repo/target/debug/deps/ablation_bisection-836b242e696ad569.d: crates/bench/src/bin/ablation_bisection.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bisection-836b242e696ad569.rmeta: crates/bench/src/bin/ablation_bisection.rs Cargo.toml

crates/bench/src/bin/ablation_bisection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
