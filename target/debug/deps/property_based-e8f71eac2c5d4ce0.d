/root/repo/target/debug/deps/property_based-e8f71eac2c5d4ce0.d: crates/core/../../tests/property_based.rs

/root/repo/target/debug/deps/property_based-e8f71eac2c5d4ce0: crates/core/../../tests/property_based.rs

crates/core/../../tests/property_based.rs:
