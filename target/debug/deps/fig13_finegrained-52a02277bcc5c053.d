/root/repo/target/debug/deps/fig13_finegrained-52a02277bcc5c053.d: crates/bench/src/bin/fig13_finegrained.rs

/root/repo/target/debug/deps/fig13_finegrained-52a02277bcc5c053: crates/bench/src/bin/fig13_finegrained.rs

crates/bench/src/bin/fig13_finegrained.rs:
