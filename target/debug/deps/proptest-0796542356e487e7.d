/root/repo/target/debug/deps/proptest-0796542356e487e7.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-0796542356e487e7: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
