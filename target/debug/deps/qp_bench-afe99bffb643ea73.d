/root/repo/target/debug/deps/qp_bench-afe99bffb643ea73.d: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/qp_bench-afe99bffb643ea73: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/phase_model.rs:
crates/bench/src/table.rs:
crates/bench/src/trace_hook.rs:
crates/bench/src/workloads.rs:
