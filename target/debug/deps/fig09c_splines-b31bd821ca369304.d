/root/repo/target/debug/deps/fig09c_splines-b31bd821ca369304.d: crates/bench/src/bin/fig09c_splines.rs

/root/repo/target/debug/deps/fig09c_splines-b31bd821ca369304: crates/bench/src/bin/fig09c_splines.rs

crates/bench/src/bin/fig09c_splines.rs:
