/root/repo/target/debug/deps/rayon-d680071e74cdf067.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-d680071e74cdf067.rlib: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-d680071e74cdf067.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
