/root/repo/target/debug/deps/rayon-78634757a9f32f33.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-78634757a9f32f33: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
