/root/repo/target/debug/deps/qperturb-44412b2f0e290400.d: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

/root/repo/target/debug/deps/qperturb-44412b2f0e290400: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

crates/qp-cli/src/main.rs:
crates/qp-cli/src/control.rs:
