/root/repo/target/debug/deps/fig13_finegrained-9d080523119c92b7.d: crates/bench/src/bin/fig13_finegrained.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_finegrained-9d080523119c92b7.rmeta: crates/bench/src/bin/fig13_finegrained.rs Cargo.toml

crates/bench/src/bin/fig13_finegrained.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
