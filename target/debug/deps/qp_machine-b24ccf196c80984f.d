/root/repo/target/debug/deps/qp_machine-b24ccf196c80984f.d: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/debug/deps/qp_machine-b24ccf196c80984f: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

crates/qp-machine/src/lib.rs:
crates/qp-machine/src/calib.rs:
crates/qp-machine/src/cost.rs:
crates/qp-machine/src/kernel_cost.rs:
crates/qp-machine/src/machine.rs:
