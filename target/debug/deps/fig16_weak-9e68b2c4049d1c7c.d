/root/repo/target/debug/deps/fig16_weak-9e68b2c4049d1c7c.d: crates/bench/src/bin/fig16_weak.rs

/root/repo/target/debug/deps/fig16_weak-9e68b2c4049d1c7c: crates/bench/src/bin/fig16_weak.rs

crates/bench/src/bin/fig16_weak.rs:
