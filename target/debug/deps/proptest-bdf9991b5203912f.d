/root/repo/target/debug/deps/proptest-bdf9991b5203912f.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-bdf9991b5203912f.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-bdf9991b5203912f.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
