/root/repo/target/debug/deps/kernels-cf97eafb6e69250c.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-cf97eafb6e69250c.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
