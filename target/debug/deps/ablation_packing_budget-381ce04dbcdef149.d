/root/repo/target/debug/deps/ablation_packing_budget-381ce04dbcdef149.d: crates/bench/src/bin/ablation_packing_budget.rs

/root/repo/target/debug/deps/ablation_packing_budget-381ce04dbcdef149: crates/bench/src/bin/ablation_packing_budget.rs

crates/bench/src/bin/ablation_packing_budget.rs:
