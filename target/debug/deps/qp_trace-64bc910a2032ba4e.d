/root/repo/target/debug/deps/qp_trace-64bc910a2032ba4e.d: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

/root/repo/target/debug/deps/libqp_trace-64bc910a2032ba4e.rlib: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

/root/repo/target/debug/deps/libqp_trace-64bc910a2032ba4e.rmeta: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

crates/qp-trace/src/lib.rs:
crates/qp-trace/src/export.rs:
crates/qp-trace/src/log.rs:
crates/qp-trace/src/metrics.rs:
crates/qp-trace/src/span.rs:
