/root/repo/target/debug/deps/qp_grid-db9eb5969353ec9a.d: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/debug/deps/qp_grid-db9eb5969353ec9a: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

crates/qp-grid/src/lib.rs:
crates/qp-grid/src/batch.rs:
crates/qp-grid/src/footprint.rs:
crates/qp-grid/src/mapping.rs:
crates/qp-grid/src/octree.rs:
