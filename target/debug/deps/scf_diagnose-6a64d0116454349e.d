/root/repo/target/debug/deps/scf_diagnose-6a64d0116454349e.d: crates/bench/src/bin/scf_diagnose.rs

/root/repo/target/debug/deps/scf_diagnose-6a64d0116454349e: crates/bench/src/bin/scf_diagnose.rs

crates/bench/src/bin/scf_diagnose.rs:
