/root/repo/target/debug/deps/qp_bench-4ecaa3ba8cde6f47.d: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libqp_bench-4ecaa3ba8cde6f47.rmeta: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/phase_model.rs:
crates/bench/src/table.rs:
crates/bench/src/trace_hook.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
