/root/repo/target/debug/deps/fig11_indirect-c2dedd49700fe2d9.d: crates/bench/src/bin/fig11_indirect.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_indirect-c2dedd49700fe2d9.rmeta: crates/bench/src/bin/fig11_indirect.rs Cargo.toml

crates/bench/src/bin/fig11_indirect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
