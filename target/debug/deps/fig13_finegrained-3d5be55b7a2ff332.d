/root/repo/target/debug/deps/fig13_finegrained-3d5be55b7a2ff332.d: crates/bench/src/bin/fig13_finegrained.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_finegrained-3d5be55b7a2ff332.rmeta: crates/bench/src/bin/fig13_finegrained.rs Cargo.toml

crates/bench/src/bin/fig13_finegrained.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
