/root/repo/target/debug/deps/qp_linalg-f520c53c54bddd79.d: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

/root/repo/target/debug/deps/qp_linalg-f520c53c54bddd79: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

crates/qp-linalg/src/lib.rs:
crates/qp-linalg/src/cholesky.rs:
crates/qp-linalg/src/csr.rs:
crates/qp-linalg/src/dense.rs:
crates/qp-linalg/src/eigen.rs:
crates/qp-linalg/src/vecops.rs:
