/root/repo/target/debug/deps/fig14_overall-dd5f0e1d4caa67ad.d: crates/bench/src/bin/fig14_overall.rs

/root/repo/target/debug/deps/fig14_overall-dd5f0e1d4caa67ad: crates/bench/src/bin/fig14_overall.rs

crates/bench/src/bin/fig14_overall.rs:
