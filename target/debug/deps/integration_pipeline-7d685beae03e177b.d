/root/repo/target/debug/deps/integration_pipeline-7d685beae03e177b.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-7d685beae03e177b: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
