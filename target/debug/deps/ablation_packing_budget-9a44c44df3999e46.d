/root/repo/target/debug/deps/ablation_packing_budget-9a44c44df3999e46.d: crates/bench/src/bin/ablation_packing_budget.rs Cargo.toml

/root/repo/target/debug/deps/libablation_packing_budget-9a44c44df3999e46.rmeta: crates/bench/src/bin/ablation_packing_budget.rs Cargo.toml

crates/bench/src/bin/ablation_packing_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
