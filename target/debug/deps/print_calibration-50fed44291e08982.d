/root/repo/target/debug/deps/print_calibration-50fed44291e08982.d: crates/bench/src/bin/print_calibration.rs Cargo.toml

/root/repo/target/debug/deps/libprint_calibration-50fed44291e08982.rmeta: crates/bench/src/bin/print_calibration.rs Cargo.toml

crates/bench/src/bin/print_calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
