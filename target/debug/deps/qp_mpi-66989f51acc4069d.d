/root/repo/target/debug/deps/qp_mpi-66989f51acc4069d.d: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

/root/repo/target/debug/deps/qp_mpi-66989f51acc4069d: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

crates/qp-mpi/src/lib.rs:
crates/qp-mpi/src/collectives.rs:
crates/qp-mpi/src/comm.rs:
crates/qp-mpi/src/hierarchical.rs:
crates/qp-mpi/src/p2p.rs:
crates/qp-mpi/src/packed.rs:
crates/qp-mpi/src/shm.rs:
crates/qp-mpi/src/traffic.rs:
