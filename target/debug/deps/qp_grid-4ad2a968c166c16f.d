/root/repo/target/debug/deps/qp_grid-4ad2a968c166c16f.d: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/debug/deps/qp_grid-4ad2a968c166c16f: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

crates/qp-grid/src/lib.rs:
crates/qp-grid/src/batch.rs:
crates/qp-grid/src/footprint.rs:
crates/qp-grid/src/mapping.rs:
crates/qp-grid/src/octree.rs:
