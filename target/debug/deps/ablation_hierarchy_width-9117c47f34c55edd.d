/root/repo/target/debug/deps/ablation_hierarchy_width-9117c47f34c55edd.d: crates/bench/src/bin/ablation_hierarchy_width.rs

/root/repo/target/debug/deps/ablation_hierarchy_width-9117c47f34c55edd: crates/bench/src/bin/ablation_hierarchy_width.rs

crates/bench/src/bin/ablation_hierarchy_width.rs:
