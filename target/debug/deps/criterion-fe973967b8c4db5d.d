/root/repo/target/debug/deps/criterion-fe973967b8c4db5d.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-fe973967b8c4db5d: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
