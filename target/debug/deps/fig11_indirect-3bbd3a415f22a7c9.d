/root/repo/target/debug/deps/fig11_indirect-3bbd3a415f22a7c9.d: crates/bench/src/bin/fig11_indirect.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_indirect-3bbd3a415f22a7c9.rmeta: crates/bench/src/bin/fig11_indirect.rs Cargo.toml

crates/bench/src/bin/fig11_indirect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
