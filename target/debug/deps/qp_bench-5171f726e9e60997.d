/root/repo/target/debug/deps/qp_bench-5171f726e9e60997.d: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libqp_bench-5171f726e9e60997.rlib: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libqp_bench-5171f726e9e60997.rmeta: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/trace_hook.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/phase_model.rs:
crates/bench/src/table.rs:
crates/bench/src/trace_hook.rs:
crates/bench/src/workloads.rs:
