/root/repo/target/debug/deps/qp_linalg-cbaa7e08a1f900b9.d: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs Cargo.toml

/root/repo/target/debug/deps/libqp_linalg-cbaa7e08a1f900b9.rmeta: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs Cargo.toml

crates/qp-linalg/src/lib.rs:
crates/qp-linalg/src/cholesky.rs:
crates/qp-linalg/src/csr.rs:
crates/qp-linalg/src/dense.rs:
crates/qp-linalg/src/eigen.rs:
crates/qp-linalg/src/vecops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
