/root/repo/target/debug/deps/qp_machine-b775f44b3df5286c.d: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/debug/deps/qp_machine-b775f44b3df5286c: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

crates/qp-machine/src/lib.rs:
crates/qp-machine/src/calib.rs:
crates/qp-machine/src/cost.rs:
crates/qp-machine/src/kernel_cost.rs:
crates/qp-machine/src/machine.rs:
