/root/repo/target/debug/deps/print_calibration-1e94fa6c8ba86077.d: crates/bench/src/bin/print_calibration.rs

/root/repo/target/debug/deps/print_calibration-1e94fa6c8ba86077: crates/bench/src/bin/print_calibration.rs

crates/bench/src/bin/print_calibration.rs:
