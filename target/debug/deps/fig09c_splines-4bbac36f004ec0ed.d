/root/repo/target/debug/deps/fig09c_splines-4bbac36f004ec0ed.d: crates/bench/src/bin/fig09c_splines.rs Cargo.toml

/root/repo/target/debug/deps/libfig09c_splines-4bbac36f004ec0ed.rmeta: crates/bench/src/bin/fig09c_splines.rs Cargo.toml

crates/bench/src/bin/fig09c_splines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
