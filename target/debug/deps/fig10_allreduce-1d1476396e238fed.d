/root/repo/target/debug/deps/fig10_allreduce-1d1476396e238fed.d: crates/bench/src/bin/fig10_allreduce.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_allreduce-1d1476396e238fed.rmeta: crates/bench/src/bin/fig10_allreduce.rs Cargo.toml

crates/bench/src/bin/fig10_allreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
