/root/repo/target/debug/deps/fig15_strong-81a51e832a858672.d: crates/bench/src/bin/fig15_strong.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_strong-81a51e832a858672.rmeta: crates/bench/src/bin/fig15_strong.rs Cargo.toml

crates/bench/src/bin/fig15_strong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
