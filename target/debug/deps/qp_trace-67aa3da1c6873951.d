/root/repo/target/debug/deps/qp_trace-67aa3da1c6873951.d: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libqp_trace-67aa3da1c6873951.rmeta: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs Cargo.toml

crates/qp-trace/src/lib.rs:
crates/qp-trace/src/export.rs:
crates/qp-trace/src/log.rs:
crates/qp-trace/src/metrics.rs:
crates/qp-trace/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
