/root/repo/target/debug/deps/qp_mpi-cbc3cfc4565d0d76.d: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libqp_mpi-cbc3cfc4565d0d76.rmeta: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs Cargo.toml

crates/qp-mpi/src/lib.rs:
crates/qp-mpi/src/collectives.rs:
crates/qp-mpi/src/comm.rs:
crates/qp-mpi/src/hierarchical.rs:
crates/qp-mpi/src/p2p.rs:
crates/qp-mpi/src/packed.rs:
crates/qp-mpi/src/shm.rs:
crates/qp-mpi/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
