/root/repo/target/debug/deps/ablation_hierarchy_width-8e28bfa1f12e26fc.d: crates/bench/src/bin/ablation_hierarchy_width.rs

/root/repo/target/debug/deps/ablation_hierarchy_width-8e28bfa1f12e26fc: crates/bench/src/bin/ablation_hierarchy_width.rs

crates/bench/src/bin/ablation_hierarchy_width.rs:
