/root/repo/target/debug/deps/criterion-b40d90550f61fc2d.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b40d90550f61fc2d.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b40d90550f61fc2d.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
