/root/repo/target/debug/deps/qp_grid-45b10c700e07739c.d: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs Cargo.toml

/root/repo/target/debug/deps/libqp_grid-45b10c700e07739c.rmeta: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs Cargo.toml

crates/qp-grid/src/lib.rs:
crates/qp-grid/src/batch.rs:
crates/qp-grid/src/footprint.rs:
crates/qp-grid/src/mapping.rs:
crates/qp-grid/src/octree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
