/root/repo/target/debug/deps/integration_mapping_memory-3ac576616bb3764d.d: crates/core/../../tests/integration_mapping_memory.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_mapping_memory-3ac576616bb3764d.rmeta: crates/core/../../tests/integration_mapping_memory.rs Cargo.toml

crates/core/../../tests/integration_mapping_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
