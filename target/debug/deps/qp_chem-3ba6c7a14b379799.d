/root/repo/target/debug/deps/qp_chem-3ba6c7a14b379799.d: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs Cargo.toml

/root/repo/target/debug/deps/libqp_chem-3ba6c7a14b379799.rmeta: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs Cargo.toml

crates/qp-chem/src/lib.rs:
crates/qp-chem/src/angular.rs:
crates/qp-chem/src/basis.rs:
crates/qp-chem/src/elements.rs:
crates/qp-chem/src/geometry.rs:
crates/qp-chem/src/grids.rs:
crates/qp-chem/src/harmonics.rs:
crates/qp-chem/src/io.rs:
crates/qp-chem/src/multipole.rs:
crates/qp-chem/src/radial.rs:
crates/qp-chem/src/spline.rs:
crates/qp-chem/src/structures.rs:
crates/qp-chem/src/xc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
