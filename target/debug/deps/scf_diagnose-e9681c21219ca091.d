/root/repo/target/debug/deps/scf_diagnose-e9681c21219ca091.d: crates/bench/src/bin/scf_diagnose.rs Cargo.toml

/root/repo/target/debug/deps/libscf_diagnose-e9681c21219ca091.rmeta: crates/bench/src/bin/scf_diagnose.rs Cargo.toml

crates/bench/src/bin/scf_diagnose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
