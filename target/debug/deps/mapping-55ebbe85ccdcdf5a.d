/root/repo/target/debug/deps/mapping-55ebbe85ccdcdf5a.d: crates/bench/benches/mapping.rs Cargo.toml

/root/repo/target/debug/deps/libmapping-55ebbe85ccdcdf5a.rmeta: crates/bench/benches/mapping.rs Cargo.toml

crates/bench/benches/mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
