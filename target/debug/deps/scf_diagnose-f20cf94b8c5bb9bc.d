/root/repo/target/debug/deps/scf_diagnose-f20cf94b8c5bb9bc.d: crates/bench/src/bin/scf_diagnose.rs Cargo.toml

/root/repo/target/debug/deps/libscf_diagnose-f20cf94b8c5bb9bc.rmeta: crates/bench/src/bin/scf_diagnose.rs Cargo.toml

crates/bench/src/bin/scf_diagnose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
