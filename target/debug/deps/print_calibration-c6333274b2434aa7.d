/root/repo/target/debug/deps/print_calibration-c6333274b2434aa7.d: crates/bench/src/bin/print_calibration.rs Cargo.toml

/root/repo/target/debug/deps/libprint_calibration-c6333274b2434aa7.rmeta: crates/bench/src/bin/print_calibration.rs Cargo.toml

crates/bench/src/bin/print_calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
