/root/repo/target/debug/deps/integration_mapping_memory-3e0a86d076bce328.d: crates/core/../../tests/integration_mapping_memory.rs

/root/repo/target/debug/deps/integration_mapping_memory-3e0a86d076bce328: crates/core/../../tests/integration_mapping_memory.rs

crates/core/../../tests/integration_mapping_memory.rs:
