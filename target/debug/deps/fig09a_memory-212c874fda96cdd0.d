/root/repo/target/debug/deps/fig09a_memory-212c874fda96cdd0.d: crates/bench/src/bin/fig09a_memory.rs Cargo.toml

/root/repo/target/debug/deps/libfig09a_memory-212c874fda96cdd0.rmeta: crates/bench/src/bin/fig09a_memory.rs Cargo.toml

crates/bench/src/bin/fig09a_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
