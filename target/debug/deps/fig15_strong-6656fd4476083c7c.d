/root/repo/target/debug/deps/fig15_strong-6656fd4476083c7c.d: crates/bench/src/bin/fig15_strong.rs

/root/repo/target/debug/deps/fig15_strong-6656fd4476083c7c: crates/bench/src/bin/fig15_strong.rs

crates/bench/src/bin/fig15_strong.rs:
