/root/repo/target/debug/deps/integration_collectives-06bc17330620e1f1.d: crates/core/../../tests/integration_collectives.rs

/root/repo/target/debug/deps/integration_collectives-06bc17330620e1f1: crates/core/../../tests/integration_collectives.rs

crates/core/../../tests/integration_collectives.rs:
