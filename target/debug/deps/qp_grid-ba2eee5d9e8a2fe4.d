/root/repo/target/debug/deps/qp_grid-ba2eee5d9e8a2fe4.d: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/debug/deps/libqp_grid-ba2eee5d9e8a2fe4.rlib: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/debug/deps/libqp_grid-ba2eee5d9e8a2fe4.rmeta: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

crates/qp-grid/src/lib.rs:
crates/qp-grid/src/batch.rs:
crates/qp-grid/src/footprint.rs:
crates/qp-grid/src/mapping.rs:
crates/qp-grid/src/octree.rs:
