/root/repo/target/debug/deps/qp_cl-0725306c26b61d28.d: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

/root/repo/target/debug/deps/qp_cl-0725306c26b61d28: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

crates/qp-cl/src/lib.rs:
crates/qp-cl/src/buffer.rs:
crates/qp-cl/src/collapse.rs:
crates/qp-cl/src/counters.rs:
crates/qp-cl/src/device.rs:
crates/qp-cl/src/fusion.rs:
crates/qp-cl/src/indirect.rs:
crates/qp-cl/src/queue.rs:
