/root/repo/target/debug/deps/qp_bench-9f64f098814ce3b9.d: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libqp_bench-9f64f098814ce3b9.rlib: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libqp_bench-9f64f098814ce3b9.rmeta: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/phase_model.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
