/root/repo/target/debug/deps/ablation_packing_budget-20f59faa4a9a5e25.d: crates/bench/src/bin/ablation_packing_budget.rs Cargo.toml

/root/repo/target/debug/deps/libablation_packing_budget-20f59faa4a9a5e25.rmeta: crates/bench/src/bin/ablation_packing_budget.rs Cargo.toml

crates/bench/src/bin/ablation_packing_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
