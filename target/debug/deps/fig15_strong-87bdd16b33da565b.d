/root/repo/target/debug/deps/fig15_strong-87bdd16b33da565b.d: crates/bench/src/bin/fig15_strong.rs

/root/repo/target/debug/deps/fig15_strong-87bdd16b33da565b: crates/bench/src/bin/fig15_strong.rs

crates/bench/src/bin/fig15_strong.rs:
