/root/repo/target/debug/deps/print_calibration-e83bb032b7b9f4e1.d: crates/bench/src/bin/print_calibration.rs

/root/repo/target/debug/deps/print_calibration-e83bb032b7b9f4e1: crates/bench/src/bin/print_calibration.rs

crates/bench/src/bin/print_calibration.rs:
