/root/repo/target/debug/deps/scf_diagnose-6ef286699b2951be.d: crates/bench/src/bin/scf_diagnose.rs

/root/repo/target/debug/deps/scf_diagnose-6ef286699b2951be: crates/bench/src/bin/scf_diagnose.rs

crates/bench/src/bin/scf_diagnose.rs:
