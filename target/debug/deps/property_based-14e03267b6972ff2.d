/root/repo/target/debug/deps/property_based-14e03267b6972ff2.d: crates/core/../../tests/property_based.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_based-14e03267b6972ff2.rmeta: crates/core/../../tests/property_based.rs Cargo.toml

crates/core/../../tests/property_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
