/root/repo/target/debug/deps/qp_cl-61ae9429797301dc.d: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

/root/repo/target/debug/deps/libqp_cl-61ae9429797301dc.rlib: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

/root/repo/target/debug/deps/libqp_cl-61ae9429797301dc.rmeta: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs

crates/qp-cl/src/lib.rs:
crates/qp-cl/src/buffer.rs:
crates/qp-cl/src/collapse.rs:
crates/qp-cl/src/counters.rs:
crates/qp-cl/src/device.rs:
crates/qp-cl/src/fusion.rs:
crates/qp-cl/src/indirect.rs:
crates/qp-cl/src/queue.rs:
