/root/repo/target/debug/deps/qp_machine-b84161dbbd3df590.d: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libqp_machine-b84161dbbd3df590.rmeta: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs Cargo.toml

crates/qp-machine/src/lib.rs:
crates/qp-machine/src/calib.rs:
crates/qp-machine/src/cost.rs:
crates/qp-machine/src/kernel_cost.rs:
crates/qp-machine/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
