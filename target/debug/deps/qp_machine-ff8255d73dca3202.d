/root/repo/target/debug/deps/qp_machine-ff8255d73dca3202.d: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/debug/deps/libqp_machine-ff8255d73dca3202.rlib: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/debug/deps/libqp_machine-ff8255d73dca3202.rmeta: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

crates/qp-machine/src/lib.rs:
crates/qp-machine/src/calib.rs:
crates/qp-machine/src/cost.rs:
crates/qp-machine/src/kernel_cost.rs:
crates/qp-machine/src/machine.rs:
