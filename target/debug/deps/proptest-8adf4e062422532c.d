/root/repo/target/debug/deps/proptest-8adf4e062422532c.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-8adf4e062422532c.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs Cargo.toml

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
