/root/repo/target/debug/deps/qp_trace-b038889ba4c6d5a3.d: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

/root/repo/target/debug/deps/qp_trace-b038889ba4c6d5a3: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs

crates/qp-trace/src/lib.rs:
crates/qp-trace/src/export.rs:
crates/qp-trace/src/log.rs:
crates/qp-trace/src/metrics.rs:
crates/qp-trace/src/span.rs:
