/root/repo/target/debug/deps/fig09b_density_hamiltonian-7a23eaec3115aad4.d: crates/bench/src/bin/fig09b_density_hamiltonian.rs

/root/repo/target/debug/deps/fig09b_density_hamiltonian-7a23eaec3115aad4: crates/bench/src/bin/fig09b_density_hamiltonian.rs

crates/bench/src/bin/fig09b_density_hamiltonian.rs:
