/root/repo/target/debug/deps/fig09a_memory-b162d67fb7085705.d: crates/bench/src/bin/fig09a_memory.rs

/root/repo/target/debug/deps/fig09a_memory-b162d67fb7085705: crates/bench/src/bin/fig09a_memory.rs

crates/bench/src/bin/fig09a_memory.rs:
