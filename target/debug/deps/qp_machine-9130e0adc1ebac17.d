/root/repo/target/debug/deps/qp_machine-9130e0adc1ebac17.d: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/debug/deps/libqp_machine-9130e0adc1ebac17.rlib: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

/root/repo/target/debug/deps/libqp_machine-9130e0adc1ebac17.rmeta: crates/qp-machine/src/lib.rs crates/qp-machine/src/calib.rs crates/qp-machine/src/cost.rs crates/qp-machine/src/kernel_cost.rs crates/qp-machine/src/machine.rs

crates/qp-machine/src/lib.rs:
crates/qp-machine/src/calib.rs:
crates/qp-machine/src/cost.rs:
crates/qp-machine/src/kernel_cost.rs:
crates/qp-machine/src/machine.rs:
