/root/repo/target/debug/deps/qperturb-994ae565e8482c53.d: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

/root/repo/target/debug/deps/qperturb-994ae565e8482c53: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

crates/qp-cli/src/main.rs:
crates/qp-cli/src/control.rs:
