/root/repo/target/debug/deps/integration_mapping_memory-9ddc11c9abb3cac9.d: crates/core/../../tests/integration_mapping_memory.rs

/root/repo/target/debug/deps/integration_mapping_memory-9ddc11c9abb3cac9: crates/core/../../tests/integration_mapping_memory.rs

crates/core/../../tests/integration_mapping_memory.rs:
