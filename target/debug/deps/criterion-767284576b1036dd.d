/root/repo/target/debug/deps/criterion-767284576b1036dd.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-767284576b1036dd.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
