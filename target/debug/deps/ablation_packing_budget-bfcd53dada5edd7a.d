/root/repo/target/debug/deps/ablation_packing_budget-bfcd53dada5edd7a.d: crates/bench/src/bin/ablation_packing_budget.rs

/root/repo/target/debug/deps/ablation_packing_budget-bfcd53dada5edd7a: crates/bench/src/bin/ablation_packing_budget.rs

crates/bench/src/bin/ablation_packing_budget.rs:
