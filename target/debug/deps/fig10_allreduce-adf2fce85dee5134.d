/root/repo/target/debug/deps/fig10_allreduce-adf2fce85dee5134.d: crates/bench/src/bin/fig10_allreduce.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_allreduce-adf2fce85dee5134.rmeta: crates/bench/src/bin/fig10_allreduce.rs Cargo.toml

crates/bench/src/bin/fig10_allreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
