/root/repo/target/debug/deps/fig11_indirect-9ddc46fd83427639.d: crates/bench/src/bin/fig11_indirect.rs

/root/repo/target/debug/deps/fig11_indirect-9ddc46fd83427639: crates/bench/src/bin/fig11_indirect.rs

crates/bench/src/bin/fig11_indirect.rs:
