/root/repo/target/debug/deps/qp_mpi-edd48c4d0a20f0f9.d: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

/root/repo/target/debug/deps/qp_mpi-edd48c4d0a20f0f9: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

crates/qp-mpi/src/lib.rs:
crates/qp-mpi/src/collectives.rs:
crates/qp-mpi/src/comm.rs:
crates/qp-mpi/src/hierarchical.rs:
crates/qp-mpi/src/p2p.rs:
crates/qp-mpi/src/packed.rs:
crates/qp-mpi/src/shm.rs:
crates/qp-mpi/src/traffic.rs:
