/root/repo/target/debug/deps/qp_core-1aae9de9812e53bd.d: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libqp_core-1aae9de9812e53bd.rlib: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libqp_core-1aae9de9812e53bd.rmeta: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/dfpt.rs:
crates/core/src/dist.rs:
crates/core/src/kernels.rs:
crates/core/src/operators.rs:
crates/core/src/parallel.rs:
crates/core/src/properties.rs:
crates/core/src/scf.rs:
crates/core/src/system.rs:
