/root/repo/target/debug/deps/ablation_bisection-62e451ab432ecd38.d: crates/bench/src/bin/ablation_bisection.rs

/root/repo/target/debug/deps/ablation_bisection-62e451ab432ecd38: crates/bench/src/bin/ablation_bisection.rs

crates/bench/src/bin/ablation_bisection.rs:
