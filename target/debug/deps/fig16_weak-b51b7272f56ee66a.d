/root/repo/target/debug/deps/fig16_weak-b51b7272f56ee66a.d: crates/bench/src/bin/fig16_weak.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_weak-b51b7272f56ee66a.rmeta: crates/bench/src/bin/fig16_weak.rs Cargo.toml

crates/bench/src/bin/fig16_weak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
