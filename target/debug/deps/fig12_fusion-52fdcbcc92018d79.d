/root/repo/target/debug/deps/fig12_fusion-52fdcbcc92018d79.d: crates/bench/src/bin/fig12_fusion.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_fusion-52fdcbcc92018d79.rmeta: crates/bench/src/bin/fig12_fusion.rs Cargo.toml

crates/bench/src/bin/fig12_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
