/root/repo/target/debug/deps/qp_linalg-ba9b58ff06c8e78e.d: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

/root/repo/target/debug/deps/libqp_linalg-ba9b58ff06c8e78e.rlib: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

/root/repo/target/debug/deps/libqp_linalg-ba9b58ff06c8e78e.rmeta: crates/qp-linalg/src/lib.rs crates/qp-linalg/src/cholesky.rs crates/qp-linalg/src/csr.rs crates/qp-linalg/src/dense.rs crates/qp-linalg/src/eigen.rs crates/qp-linalg/src/vecops.rs

crates/qp-linalg/src/lib.rs:
crates/qp-linalg/src/cholesky.rs:
crates/qp-linalg/src/csr.rs:
crates/qp-linalg/src/dense.rs:
crates/qp-linalg/src/eigen.rs:
crates/qp-linalg/src/vecops.rs:
