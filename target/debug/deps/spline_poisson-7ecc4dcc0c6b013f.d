/root/repo/target/debug/deps/spline_poisson-7ecc4dcc0c6b013f.d: crates/bench/benches/spline_poisson.rs Cargo.toml

/root/repo/target/debug/deps/libspline_poisson-7ecc4dcc0c6b013f.rmeta: crates/bench/benches/spline_poisson.rs Cargo.toml

crates/bench/benches/spline_poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
