/root/repo/target/debug/deps/qp_core-a7892b100a21eb1a.d: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libqp_core-a7892b100a21eb1a.rmeta: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/dfpt.rs:
crates/core/src/dist.rs:
crates/core/src/kernels.rs:
crates/core/src/operators.rs:
crates/core/src/parallel.rs:
crates/core/src/properties.rs:
crates/core/src/scf.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
