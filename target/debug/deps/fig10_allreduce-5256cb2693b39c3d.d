/root/repo/target/debug/deps/fig10_allreduce-5256cb2693b39c3d.d: crates/bench/src/bin/fig10_allreduce.rs

/root/repo/target/debug/deps/fig10_allreduce-5256cb2693b39c3d: crates/bench/src/bin/fig10_allreduce.rs

crates/bench/src/bin/fig10_allreduce.rs:
