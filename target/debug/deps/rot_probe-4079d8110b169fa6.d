/root/repo/target/debug/deps/rot_probe-4079d8110b169fa6.d: crates/bench/src/bin/rot_probe.rs Cargo.toml

/root/repo/target/debug/deps/librot_probe-4079d8110b169fa6.rmeta: crates/bench/src/bin/rot_probe.rs Cargo.toml

crates/bench/src/bin/rot_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
