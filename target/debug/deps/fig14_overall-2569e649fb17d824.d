/root/repo/target/debug/deps/fig14_overall-2569e649fb17d824.d: crates/bench/src/bin/fig14_overall.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_overall-2569e649fb17d824.rmeta: crates/bench/src/bin/fig14_overall.rs Cargo.toml

crates/bench/src/bin/fig14_overall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
