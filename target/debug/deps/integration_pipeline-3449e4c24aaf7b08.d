/root/repo/target/debug/deps/integration_pipeline-3449e4c24aaf7b08.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-3449e4c24aaf7b08: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
