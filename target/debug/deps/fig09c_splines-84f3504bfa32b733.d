/root/repo/target/debug/deps/fig09c_splines-84f3504bfa32b733.d: crates/bench/src/bin/fig09c_splines.rs Cargo.toml

/root/repo/target/debug/deps/libfig09c_splines-84f3504bfa32b733.rmeta: crates/bench/src/bin/fig09c_splines.rs Cargo.toml

crates/bench/src/bin/fig09c_splines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
