/root/repo/target/debug/deps/rot_probe-f78c7ae11a85b9d3.d: crates/bench/src/bin/rot_probe.rs

/root/repo/target/debug/deps/rot_probe-f78c7ae11a85b9d3: crates/bench/src/bin/rot_probe.rs

crates/bench/src/bin/rot_probe.rs:
