/root/repo/target/debug/deps/qp_grid-a57c5d462d68813e.d: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/debug/deps/libqp_grid-a57c5d462d68813e.rlib: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

/root/repo/target/debug/deps/libqp_grid-a57c5d462d68813e.rmeta: crates/qp-grid/src/lib.rs crates/qp-grid/src/batch.rs crates/qp-grid/src/footprint.rs crates/qp-grid/src/mapping.rs crates/qp-grid/src/octree.rs

crates/qp-grid/src/lib.rs:
crates/qp-grid/src/batch.rs:
crates/qp-grid/src/footprint.rs:
crates/qp-grid/src/mapping.rs:
crates/qp-grid/src/octree.rs:
