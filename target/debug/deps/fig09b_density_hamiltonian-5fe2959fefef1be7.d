/root/repo/target/debug/deps/fig09b_density_hamiltonian-5fe2959fefef1be7.d: crates/bench/src/bin/fig09b_density_hamiltonian.rs Cargo.toml

/root/repo/target/debug/deps/libfig09b_density_hamiltonian-5fe2959fefef1be7.rmeta: crates/bench/src/bin/fig09b_density_hamiltonian.rs Cargo.toml

crates/bench/src/bin/fig09b_density_hamiltonian.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
