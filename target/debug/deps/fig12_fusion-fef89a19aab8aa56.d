/root/repo/target/debug/deps/fig12_fusion-fef89a19aab8aa56.d: crates/bench/src/bin/fig12_fusion.rs

/root/repo/target/debug/deps/fig12_fusion-fef89a19aab8aa56: crates/bench/src/bin/fig12_fusion.rs

crates/bench/src/bin/fig12_fusion.rs:
