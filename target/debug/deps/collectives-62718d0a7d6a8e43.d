/root/repo/target/debug/deps/collectives-62718d0a7d6a8e43.d: crates/bench/benches/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-62718d0a7d6a8e43.rmeta: crates/bench/benches/collectives.rs Cargo.toml

crates/bench/benches/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
