/root/repo/target/debug/deps/fig16_weak-c5ca1a3faceccb0b.d: crates/bench/src/bin/fig16_weak.rs

/root/repo/target/debug/deps/fig16_weak-c5ca1a3faceccb0b: crates/bench/src/bin/fig16_weak.rs

crates/bench/src/bin/fig16_weak.rs:
