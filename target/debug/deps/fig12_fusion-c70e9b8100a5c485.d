/root/repo/target/debug/deps/fig12_fusion-c70e9b8100a5c485.d: crates/bench/src/bin/fig12_fusion.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_fusion-c70e9b8100a5c485.rmeta: crates/bench/src/bin/fig12_fusion.rs Cargo.toml

crates/bench/src/bin/fig12_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
