/root/repo/target/debug/deps/qp_chem-c02a2321216c6a5f.d: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs

/root/repo/target/debug/deps/libqp_chem-c02a2321216c6a5f.rlib: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs

/root/repo/target/debug/deps/libqp_chem-c02a2321216c6a5f.rmeta: crates/qp-chem/src/lib.rs crates/qp-chem/src/angular.rs crates/qp-chem/src/basis.rs crates/qp-chem/src/elements.rs crates/qp-chem/src/geometry.rs crates/qp-chem/src/grids.rs crates/qp-chem/src/harmonics.rs crates/qp-chem/src/io.rs crates/qp-chem/src/multipole.rs crates/qp-chem/src/radial.rs crates/qp-chem/src/spline.rs crates/qp-chem/src/structures.rs crates/qp-chem/src/xc.rs

crates/qp-chem/src/lib.rs:
crates/qp-chem/src/angular.rs:
crates/qp-chem/src/basis.rs:
crates/qp-chem/src/elements.rs:
crates/qp-chem/src/geometry.rs:
crates/qp-chem/src/grids.rs:
crates/qp-chem/src/harmonics.rs:
crates/qp-chem/src/io.rs:
crates/qp-chem/src/multipole.rs:
crates/qp-chem/src/radial.rs:
crates/qp-chem/src/spline.rs:
crates/qp-chem/src/structures.rs:
crates/qp-chem/src/xc.rs:
