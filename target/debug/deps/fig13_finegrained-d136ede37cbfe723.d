/root/repo/target/debug/deps/fig13_finegrained-d136ede37cbfe723.d: crates/bench/src/bin/fig13_finegrained.rs

/root/repo/target/debug/deps/fig13_finegrained-d136ede37cbfe723: crates/bench/src/bin/fig13_finegrained.rs

crates/bench/src/bin/fig13_finegrained.rs:
