/root/repo/target/debug/deps/fig09a_memory-9407b7341b5d0520.d: crates/bench/src/bin/fig09a_memory.rs

/root/repo/target/debug/deps/fig09a_memory-9407b7341b5d0520: crates/bench/src/bin/fig09a_memory.rs

crates/bench/src/bin/fig09a_memory.rs:
