/root/repo/target/debug/deps/fig09c_splines-cc45efd6892024d2.d: crates/bench/src/bin/fig09c_splines.rs

/root/repo/target/debug/deps/fig09c_splines-cc45efd6892024d2: crates/bench/src/bin/fig09c_splines.rs

crates/bench/src/bin/fig09c_splines.rs:
