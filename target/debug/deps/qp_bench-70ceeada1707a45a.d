/root/repo/target/debug/deps/qp_bench-70ceeada1707a45a.d: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/qp_bench-70ceeada1707a45a: crates/bench/src/lib.rs crates/bench/src/phase_model.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/phase_model.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
