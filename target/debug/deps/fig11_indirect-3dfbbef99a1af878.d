/root/repo/target/debug/deps/fig11_indirect-3dfbbef99a1af878.d: crates/bench/src/bin/fig11_indirect.rs

/root/repo/target/debug/deps/fig11_indirect-3dfbbef99a1af878: crates/bench/src/bin/fig11_indirect.rs

crates/bench/src/bin/fig11_indirect.rs:
