/root/repo/target/debug/deps/qperturb-1a49df555b53f8fe.d: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs Cargo.toml

/root/repo/target/debug/deps/libqperturb-1a49df555b53f8fe.rmeta: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs Cargo.toml

crates/qp-cli/src/main.rs:
crates/qp-cli/src/control.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
