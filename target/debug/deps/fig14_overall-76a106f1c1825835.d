/root/repo/target/debug/deps/fig14_overall-76a106f1c1825835.d: crates/bench/src/bin/fig14_overall.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_overall-76a106f1c1825835.rmeta: crates/bench/src/bin/fig14_overall.rs Cargo.toml

crates/bench/src/bin/fig14_overall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
