/root/repo/target/debug/deps/property_based-94a39c194ae623fe.d: crates/core/../../tests/property_based.rs

/root/repo/target/debug/deps/property_based-94a39c194ae623fe: crates/core/../../tests/property_based.rs

crates/core/../../tests/property_based.rs:
