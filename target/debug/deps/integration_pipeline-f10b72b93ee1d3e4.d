/root/repo/target/debug/deps/integration_pipeline-f10b72b93ee1d3e4.d: crates/core/../../tests/integration_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_pipeline-f10b72b93ee1d3e4.rmeta: crates/core/../../tests/integration_pipeline.rs Cargo.toml

crates/core/../../tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
