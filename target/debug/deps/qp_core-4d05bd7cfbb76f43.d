/root/repo/target/debug/deps/qp_core-4d05bd7cfbb76f43.d: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/debug/deps/qp_core-4d05bd7cfbb76f43: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/dfpt.rs:
crates/core/src/dist.rs:
crates/core/src/kernels.rs:
crates/core/src/operators.rs:
crates/core/src/parallel.rs:
crates/core/src/properties.rs:
crates/core/src/scf.rs:
crates/core/src/system.rs:
