/root/repo/target/debug/deps/fig09b_density_hamiltonian-8d11ce5e845cb937.d: crates/bench/src/bin/fig09b_density_hamiltonian.rs

/root/repo/target/debug/deps/fig09b_density_hamiltonian-8d11ce5e845cb937: crates/bench/src/bin/fig09b_density_hamiltonian.rs

crates/bench/src/bin/fig09b_density_hamiltonian.rs:
