/root/repo/target/debug/deps/fig12_fusion-67a8004ee553bf8d.d: crates/bench/src/bin/fig12_fusion.rs

/root/repo/target/debug/deps/fig12_fusion-67a8004ee553bf8d: crates/bench/src/bin/fig12_fusion.rs

crates/bench/src/bin/fig12_fusion.rs:
