/root/repo/target/debug/deps/rot_probe-8f7a21776fcbf9aa.d: crates/bench/src/bin/rot_probe.rs

/root/repo/target/debug/deps/rot_probe-8f7a21776fcbf9aa: crates/bench/src/bin/rot_probe.rs

crates/bench/src/bin/rot_probe.rs:
