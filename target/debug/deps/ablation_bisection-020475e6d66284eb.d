/root/repo/target/debug/deps/ablation_bisection-020475e6d66284eb.d: crates/bench/src/bin/ablation_bisection.rs

/root/repo/target/debug/deps/ablation_bisection-020475e6d66284eb: crates/bench/src/bin/ablation_bisection.rs

crates/bench/src/bin/ablation_bisection.rs:
