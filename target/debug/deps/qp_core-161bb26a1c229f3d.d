/root/repo/target/debug/deps/qp_core-161bb26a1c229f3d.d: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

/root/repo/target/debug/deps/qp_core-161bb26a1c229f3d: crates/core/src/lib.rs crates/core/src/dfpt.rs crates/core/src/dist.rs crates/core/src/kernels.rs crates/core/src/operators.rs crates/core/src/parallel.rs crates/core/src/properties.rs crates/core/src/scf.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/dfpt.rs:
crates/core/src/dist.rs:
crates/core/src/kernels.rs:
crates/core/src/operators.rs:
crates/core/src/parallel.rs:
crates/core/src/properties.rs:
crates/core/src/scf.rs:
crates/core/src/system.rs:
