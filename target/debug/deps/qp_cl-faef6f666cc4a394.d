/root/repo/target/debug/deps/qp_cl-faef6f666cc4a394.d: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs Cargo.toml

/root/repo/target/debug/deps/libqp_cl-faef6f666cc4a394.rmeta: crates/qp-cl/src/lib.rs crates/qp-cl/src/buffer.rs crates/qp-cl/src/collapse.rs crates/qp-cl/src/counters.rs crates/qp-cl/src/device.rs crates/qp-cl/src/fusion.rs crates/qp-cl/src/indirect.rs crates/qp-cl/src/queue.rs Cargo.toml

crates/qp-cl/src/lib.rs:
crates/qp-cl/src/buffer.rs:
crates/qp-cl/src/collapse.rs:
crates/qp-cl/src/counters.rs:
crates/qp-cl/src/device.rs:
crates/qp-cl/src/fusion.rs:
crates/qp-cl/src/indirect.rs:
crates/qp-cl/src/queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
