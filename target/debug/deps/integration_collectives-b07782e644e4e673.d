/root/repo/target/debug/deps/integration_collectives-b07782e644e4e673.d: crates/core/../../tests/integration_collectives.rs

/root/repo/target/debug/deps/integration_collectives-b07782e644e4e673: crates/core/../../tests/integration_collectives.rs

crates/core/../../tests/integration_collectives.rs:
