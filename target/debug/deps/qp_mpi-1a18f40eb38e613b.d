/root/repo/target/debug/deps/qp_mpi-1a18f40eb38e613b.d: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

/root/repo/target/debug/deps/libqp_mpi-1a18f40eb38e613b.rlib: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

/root/repo/target/debug/deps/libqp_mpi-1a18f40eb38e613b.rmeta: crates/qp-mpi/src/lib.rs crates/qp-mpi/src/collectives.rs crates/qp-mpi/src/comm.rs crates/qp-mpi/src/hierarchical.rs crates/qp-mpi/src/p2p.rs crates/qp-mpi/src/packed.rs crates/qp-mpi/src/shm.rs crates/qp-mpi/src/traffic.rs

crates/qp-mpi/src/lib.rs:
crates/qp-mpi/src/collectives.rs:
crates/qp-mpi/src/comm.rs:
crates/qp-mpi/src/hierarchical.rs:
crates/qp-mpi/src/p2p.rs:
crates/qp-mpi/src/packed.rs:
crates/qp-mpi/src/shm.rs:
crates/qp-mpi/src/traffic.rs:
