/root/repo/target/debug/deps/integration_collectives-872b8baa4543b96a.d: crates/core/../../tests/integration_collectives.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_collectives-872b8baa4543b96a.rmeta: crates/core/../../tests/integration_collectives.rs Cargo.toml

crates/core/../../tests/integration_collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
