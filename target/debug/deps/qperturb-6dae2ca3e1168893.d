/root/repo/target/debug/deps/qperturb-6dae2ca3e1168893.d: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

/root/repo/target/debug/deps/qperturb-6dae2ca3e1168893: crates/qp-cli/src/main.rs crates/qp-cli/src/control.rs

crates/qp-cli/src/main.rs:
crates/qp-cli/src/control.rs:
