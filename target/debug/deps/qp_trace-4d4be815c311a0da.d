/root/repo/target/debug/deps/qp_trace-4d4be815c311a0da.d: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libqp_trace-4d4be815c311a0da.rmeta: crates/qp-trace/src/lib.rs crates/qp-trace/src/export.rs crates/qp-trace/src/log.rs crates/qp-trace/src/metrics.rs crates/qp-trace/src/span.rs Cargo.toml

crates/qp-trace/src/lib.rs:
crates/qp-trace/src/export.rs:
crates/qp-trace/src/log.rs:
crates/qp-trace/src/metrics.rs:
crates/qp-trace/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
