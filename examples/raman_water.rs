//! Raman activity of the water symmetric stretch — the application that
//! motivated this code line (the paper's predecessor, ref [37], accelerated
//! "all-electron ab initio simulation of Raman spectra for biological
//! systems").
//!
//! Raman intensity of a mode is governed by `∂α/∂Q`: we displace both O–H
//! bonds symmetrically by ±δ and differentiate the DFPT polarizability.
//!
//! ```text
//! cargo run --release -p qp-core --example raman_water
//! ```

use qp_chem::elements::Element;
use qp_chem::geometry::{Atom, Structure};
use qp_core::properties::{isotropic_polarizability, polarizability_anisotropy};
use qp_core::{dfpt, scf, DfptOptions, ScfOptions, System};

/// Water with both O-H bonds stretched by `dr` Bohr along the bond
/// directions (the symmetric-stretch normal mode, to leading order).
fn stretched_water(dr: f64) -> Structure {
    let base = qp_chem::structures::water();
    let o = base.atoms[0].position;
    let atoms = base
        .atoms
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if i == 0 {
                *a
            } else {
                let d = [
                    a.position[0] - o[0],
                    a.position[1] - o[1],
                    a.position[2] - o[2],
                ];
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                let s = (r + dr) / r;
                Atom::new(
                    Element::H,
                    [o[0] + d[0] * s, o[1] + d[1] * s, o[2] + d[2] * s],
                )
            }
        })
        .collect();
    Structure::new(atoms)
}

fn polarizability_at(dr: f64) -> (f64, f64) {
    let system = System::light(stretched_water(dr));
    let ground = scf(&system, &ScfOptions::default()).expect("SCF");
    let resp = dfpt(&system, &ground, &DfptOptions::default()).expect("DFPT");
    (
        isotropic_polarizability(&resp.polarizability),
        polarizability_anisotropy(&resp.polarizability),
    )
}

fn main() {
    let delta = 0.02; // Bohr
    println!("water symmetric stretch: central differences at ±{delta} Bohr\n");
    let (iso_p, aniso_p) = polarizability_at(delta);
    let (iso_0, aniso_0) = polarizability_at(0.0);
    let (iso_m, aniso_m) = polarizability_at(-delta);

    let d_iso = (iso_p - iso_m) / (2.0 * delta);
    let d_aniso = (aniso_p - aniso_m) / (2.0 * delta);
    println!("alpha_iso(0)  = {iso_0:.4} Bohr^3, alpha_aniso(0) = {aniso_0:.4} Bohr^3");
    println!("d(alpha_iso)/dQ   = {d_iso:.4} Bohr^2  (isotropic Raman activity term)");
    println!("d(alpha_aniso)/dQ = {d_aniso:.4} Bohr^2 (depolarized term)");
    assert!(
        d_iso > 0.0,
        "stretching O-H must increase the polarizability (looser electrons)"
    );
    println!("\nstretching increases polarizability, as physics demands — the");
    println!("symmetric stretch is Raman-active (the strongest band of liquid water).");
}
