//! The HIV-1 protease ligand (49 atoms, Fig. 8b of the paper): ground-state
//! SCF plus the full electric-field response, with per-phase wall-clock.
//!
//! ```text
//! cargo run --release -p qp-core --example ligand_response
//! ```

use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_core::dfpt::{dfpt_direction, DfptOptions};
use qp_core::{scf, ScfOptions, System};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    // Reduced grid keeps this example to a few minutes on one core.
    let mut gs = GridSettings::light();
    gs.n_radial = 20;
    gs.max_angular = 14;
    let system = System::build(
        qp_chem::structures::ligand49(),
        BasisSettings::Light,
        &gs,
        150,
        2,
    );
    println!(
        "HIV-1 ligand: {} atoms, {} basis functions, {} grid points, {} batches  [{:.1?}]",
        system.structure.len(),
        system.n_basis(),
        system.n_points(),
        system.batches.len(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let ground = scf(
        &system,
        &ScfOptions {
            max_iter: 400,
            tol: 1e-6,
            mixing: 0.12,
            field: None,
            // Fermi-Dirac smearing (the paper's Eq. 3): the ligand's dense
            // frontier-orbital spectrum needs fractional occupations.
            smearing: Some(0.02),
            // Pulay/DIIS over the last 8 density matrices.
            pulay: Some(8),
        },
    )
    .expect("ligand SCF converges");
    println!(
        "SCF: {} iterations, E = {:.4} Ha, gap = {:.4} Ha  [{:.1?}]",
        ground.iterations,
        ground.energy,
        ground.eigenvalues[system.n_occupied()] - ground.eigenvalues[system.n_occupied() - 1],
        t1.elapsed()
    );

    // One response direction is enough to show the machinery at this scale.
    let t2 = Instant::now();
    let resp = dfpt_direction(
        &system,
        &ground,
        2,
        &DfptOptions {
            max_iter: 300,
            tol: 1e-5,
            // The smeared ligand is near-metallic (gap ~ 0.0085 Ha): the
            // self-consistent field feedback is strong, so mix gently.
            mixing: 0.05,
            ..DfptOptions::default()
        },
    )
    .expect("DFPT converges");
    let dip = qp_core::operators::dipole_matrix(&system, 2);
    let alpha_zz = resp.p1.trace_product(&dip).expect("square");
    println!(
        "DFPT(z): {} iterations, alpha_zz = {:.2} Bohr^3  [{:.1?}]",
        resp.iterations,
        alpha_zz,
        t2.elapsed()
    );
    let q1 = system.grid.integrate_values(&resp.n1);
    println!("response-density charge conservation: ∫n1 = {q1:.2e} (should be ~0)");
}
