//! Portability demo (§4.5): the same kernel source runs on all three device
//! profiles; the per-device fusion decisions differ exactly as the paper
//! describes — vertical fusion on SW39010 is gated by the 64 KB RMA window,
//! the GPU keeps any intermediate resident, the host CPU just runs.
//!
//! ```text
//! cargo run --release -p qp-core --example portability
//! ```

use qp_cl::device::{gcn_gpu, host_cpu, sw39010};
use qp_cl::fusion::{vertical, FusionDecision};
use qp_cl::CommandQueue;

fn main() {
    println!("one kernel source, three devices\n");
    for device in [sw39010(), gcn_gpu(), host_cpu()] {
        println!(
            "device: {} — {} CUs x {} lanes, on-chip {} KB, RMA {:?}",
            device.name,
            device.compute_units,
            device.lanes_per_cu,
            device.on_chip_bytes / 1024,
            device.rma_max_bytes.map(|b| format!("{} KB", b / 1024)),
        );
        let queue = CommandQueue::new(device);

        // A plain NDRange launch: 64 groups of a simple grid kernel.
        let report = queue.launch("demo", 64, |ctx| {
            ctx.occupy_items(100);
            ctx.counters.read_offchip(100);
            ctx.counters.flop(500);
        });
        println!(
            "  launch: {} groups, occupancy {:.2}, {} off-chip words",
            64,
            report.occupancy(),
            report.offchip_words()
        );

        // The §4.2 wide-dependence pair at the two paper table sizes.
        for (name, words) in [
            ("rho_multipole_spl", 3_900),
            ("delta_v_hart_part_spl", 62_200),
        ] {
            let out = vertical(
                &queue,
                name,
                8,
                true,
                move |ctx| {
                    ctx.counters.flop(words as u64);
                    vec![0.0; words]
                },
                |_, _| {},
            );
            let verdict = match out.decision {
                FusionDecision::Fused => "fused (intermediate stays on-chip)",
                FusionDecision::ExceedsOnChipVolume { .. } => {
                    "NOT fused (exceeds on-chip exchange volume)"
                }
                FusionDecision::Disabled => "disabled",
            };
            println!(
                "  vertical fusion of {name} ({} KB): {verdict}",
                words * 8 / 1024
            );
        }
        println!();
    }
    println!("functional portability: every device ran the identical kernel closures;");
    println!("performance portability: the fusion decisions adapt per architecture (§4.5)");
}
