//! Distributed DFPT: the full response cycle over in-process MPI ranks,
//! comparing the baseline per-row collectives against the paper's packed and
//! packed+hierarchical schemes — identical physics, fewer collectives.
//!
//! ```text
//! cargo run --release -p qp-core --example parallel_dfpt
//! ```

use qp_core::dfpt::DfptOptions;
use qp_core::parallel::{parallel_dfpt_direction, CollectiveScheme, MappingKind, ParallelConfig};
use qp_core::{scf, ScfOptions, System};
use qp_mpi::CollectiveKind;

fn main() {
    let system = System::light(qp_chem::structures::water());
    let ground = scf(&system, &ScfOptions::default()).expect("SCF");
    println!(
        "water ground state ready ({} iterations); running DFPT(z) on 8 ranks / 2 nodes\n",
        ground.iterations
    );

    let opts = DfptOptions::default();
    let mut reference: Option<qp_linalg::DMatrix> = None;
    for scheme in [
        CollectiveScheme::PerRow,
        CollectiveScheme::Packed,
        CollectiveScheme::PackedHierarchical,
    ] {
        let cfg = ParallelConfig {
            n_ranks: 8,
            ranks_per_node: 4,
            mapping: MappingKind::LocalityEnhancing,
            collectives: scheme,
        };
        let out = parallel_dfpt_direction(&system, &ground, 2, &opts, &cfg)
            .expect("parallel DFPT converges");
        let count = |k: CollectiveKind| out.traffic.iter().filter(|r| r.kind == k).count();
        println!(
            "{scheme:?}: {} iterations, AllReduce {}, Packed {}, LeaderAllReduce {}, LocalBarrier {}",
            out.iterations,
            count(CollectiveKind::AllReduce),
            count(CollectiveKind::PackedAllReduce),
            count(CollectiveKind::LeaderAllReduce),
            count(CollectiveKind::LocalBarrier),
        );
        match &reference {
            None => reference = Some(out.p1),
            Some(r) => {
                let dev = out.p1.max_abs_diff(r);
                println!("  response matrix deviation vs baseline: {dev:.2e}");
                assert!(dev < 1e-8, "schemes must agree");
            }
        }
    }
    println!("\nall three schemes produced the same converged response — only the");
    println!("collective pattern changed (the §3.2 claim, executed for real)");
}
