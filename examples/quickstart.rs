//! Quickstart: the static polarizability of a water molecule, all-electron,
//! via density-functional perturbation theory.
//!
//! ```text
//! cargo run --release -p qp-core --example quickstart
//! ```

use qp_core::{dfpt, scf, DfptOptions, ScfOptions, System};

fn main() {
    // 1. Build the system: experimental H2O geometry, light NAO basis,
    //    atom-centered integration grids, spatial batches.
    let system = System::light(qp_chem::structures::water());
    println!(
        "water: {} basis functions, {} grid points, {} batches",
        system.n_basis(),
        system.n_points(),
        system.batches.len()
    );

    // 2. Ground-state Kohn-Sham SCF (LDA).
    let ground = scf(&system, &ScfOptions::default()).expect("SCF converges");
    println!(
        "SCF converged in {} iterations, E = {:.6} Ha",
        ground.iterations, ground.energy
    );
    println!(
        "HOMO = {:.4} Ha, LUMO = {:.4} Ha",
        ground.eigenvalues[system.n_occupied() - 1],
        ground.eigenvalues[system.n_occupied()]
    );

    // 3. DFPT: the response to a homogeneous electric field in x, y, z.
    let response = dfpt(&system, &ground, &DfptOptions::default()).expect("DFPT converges");
    println!(
        "DFPT converged in {:?} iterations per direction",
        response.iterations
    );

    // 4. The polarizability tensor (Bohr^3).
    println!("\npolarizability tensor (Bohr^3):");
    for i in 0..3 {
        println!(
            "  [ {:8.3} {:8.3} {:8.3} ]",
            response.polarizability[(i, 0)],
            response.polarizability[(i, 1)],
            response.polarizability[(i, 2)]
        );
    }
    let iso = qp_core::properties::isotropic_polarizability(&response.polarizability);
    let aniso = qp_core::properties::polarizability_anisotropy(&response.polarizability);
    let mu = qp_core::properties::dipole_moment(&system, &ground);
    println!(
        "isotropic polarizability: {iso:.3} Bohr^3 (experiment ~9.8; minimal basis underestimates)"
    );
    println!("polarizability anisotropy: {aniso:.3} Bohr^3");
    println!(
        "dipole moment: [{:.3}, {:.3}, {:.3}] a.u.",
        mu[0], mu[1], mu[2]
    );
    // Liquid-water electronic dielectric constant via Clausius-Mossotti at
    // the experimental number density (0.0050 molecules/Bohr^3).
    if let Some(eps) = qp_core::properties::clausius_mossotti(iso, 0.0050) {
        println!("Clausius-Mossotti ε_∞ at liquid density: {eps:.3} (experiment: 1.78)");
    }
}
