//! The scaling workload: H(C₂H₄)ₙH polyethylene chains — batching, the two
//! task mappings, per-rank Hamiltonian footprints and the modelled
//! communication cost, from 602 up to 30 002 atoms.
//!
//! ```text
//! cargo run --release -p qp-core --example polyethylene_scaling
//! ```

use qp_chem::basis::BasisSettings;
use qp_chem::grids::{GridSettings, IntegrationGrid};
use qp_grid::batch::batches_from_grid;
use qp_grid::footprint::{analyze, per_atom_basis, per_atom_cutoff};
use qp_grid::mapping::{LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};
use std::time::Instant;

fn main() {
    let stats = GridSettings {
        n_radial: 4,
        r_min: 0.1,
        r_max: 6.0,
        max_angular: 6,
        min_angular: 6,
        partition_cutoff: 6.0,
    };
    println!("polyethylene scaling sweep (statistics grid, 64 ranks)\n");
    println!(
        "{:>8} {:>9} {:>9} {:>14} {:>14} {:>12}",
        "atoms", "points", "batches", "CSR (global)", "dense (mean)", "build time"
    );
    for n_units in [100usize, 500, 1000, 5000] {
        let t0 = Instant::now();
        let structure = qp_chem::structures::polyethylene(n_units);
        let atoms = structure.len();
        let grid = IntegrationGrid::build(&structure, &stats);
        let batches = batches_from_grid(&grid, 100);
        let basis = per_atom_basis(&structure, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&structure);
        let n_procs = 64;
        let prop = LocalityEnhancingMapping.assign(&batches, n_procs);
        let report = analyze(&structure, &batches, &prop, n_procs, &basis, &cutoffs, 8.0);
        println!(
            "{:>8} {:>9} {:>9} {:>11.1} MB {:>11.1} KB {:>11.1?}",
            atoms,
            grid.len(),
            batches.len(),
            report.global_csr_bytes as f64 / (1 << 20) as f64,
            report.mean_dense_bytes() / 1024.0,
            t0.elapsed()
        );
    }

    // Atom scatter: the Fig. 3 contrast at one size.
    let structure = qp_chem::structures::polyethylene(1000);
    let grid = IntegrationGrid::build(&structure, &stats);
    let batches = batches_from_grid(&grid, 100);
    let base = LoadBalancingMapping.assign(&batches, 64);
    let prop = LocalityEnhancingMapping.assign(&batches, 64);
    let scatter = |a: &[usize]| -> f64 {
        let atoms: Vec<u32> = (0..40).map(|i| i * 150).collect();
        atoms
            .iter()
            .map(|&at| qp_grid::mapping::ranks_holding_atom(&batches, a, at) as f64)
            .sum::<f64>()
            / atoms.len() as f64
    };
    println!("\natom scatter at 6 002 atoms / 64 ranks (ranks holding one atom's points):");
    println!(
        "  existing load-balancing : {:.1} ranks/atom",
        scatter(&base)
    );
    println!(
        "  locality-enhancing      : {:.1} ranks/atom",
        scatter(&prop)
    );
}
