//! Ablation: the dimension-selection rule of Algorithm 1.
//!
//! Line 7 of Algorithm 1 picks, at every bisection level, the dimension on
//! which the batch projections spread the largest range. This ablation
//! compares that rule against always cutting the same fixed axis, measuring
//! per-rank dense-Hamiltonian footprints and spline-atom counts on both a
//! quasi-1D polymer and the 3-D RBD blob.

use qp_bench::table;
use qp_bench::workloads;
use qp_chem::basis::BasisSettings;
use qp_grid::batch::Batch;
use qp_grid::footprint::{analyze, per_atom_basis, per_atom_cutoff};
use qp_grid::mapping::{LocalityEnhancingMapping, MortonMapping, TaskMapping};

/// Recursive bisection that always cuts a fixed dimension (the ablated
/// variant of Algorithm 1).
struct FixedAxisMapping(usize);

impl TaskMapping for FixedAxisMapping {
    fn assign(&self, batches: &[Batch], n_procs: usize) -> Vec<usize> {
        let mut assignment = vec![usize::MAX; batches.len()];
        let mut idx: Vec<usize> = (0..batches.len()).collect();
        self.recurse(batches, &mut idx, 0, n_procs, &mut assignment);
        assignment
    }

    fn name(&self) -> &'static str {
        "fixed-axis-bisection"
    }
}

impl FixedAxisMapping {
    fn recurse(
        &self,
        batches: &[Batch],
        idx: &mut [usize],
        base: usize,
        n: usize,
        out: &mut [usize],
    ) {
        if n == 1 {
            for &i in idx.iter() {
                out[i] = base;
            }
            return;
        }
        let dim = self.0;
        idx.sort_by(|&a, &b| {
            batches[a].center[dim]
                .partial_cmp(&batches[b].center[dim])
                .expect("finite")
        });
        let n_left = n.div_ceil(2);
        let total: usize = idx.iter().map(|&i| batches[i].len()).sum();
        let pivot = (total as f64 * n_left as f64 / n as f64) as usize;
        let mut acc = 0;
        let mut split = 0;
        for (pos, &i) in idx.iter().enumerate() {
            if acc + batches[i].len() > pivot {
                split = pos;
                break;
            }
            acc += batches[i].len();
            split = pos + 1;
        }
        split = split.clamp(1, idx.len() - 1);
        let (l, r) = idx.split_at_mut(split);
        self.recurse(batches, l, base, n_left, out);
        self.recurse(batches, r, base + n_left, n - n_left, out);
    }
}

fn main() {
    qp_bench::trace_hook::init();
    println!("Ablation: Algorithm 1's largest-spread dimension rule vs fixed axes\n");
    let n_procs = 64;
    let widths = [26, 22, 16, 14];
    table::header(
        &["workload", "strategy", "dense mean", "spline mean"],
        &widths,
    );
    for (wname, structure) in [
        ("polymer 3002 atoms", workloads::polymer(3_002).structure),
        ("helix 3000 atoms", qp_chem::structures::helix(500)),
        ("RBD blob 3006 atoms", workloads::rbd().structure),
    ] {
        let (_grid, batches) = workloads::stats_batches(&structure, 100);
        let basis = per_atom_basis(&structure, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&structure);
        let strategies: Vec<(String, Vec<usize>)> = vec![
            (
                "largest-spread (Alg.1)".into(),
                LocalityEnhancingMapping.assign(&batches, n_procs),
            ),
            (
                "fixed x".into(),
                FixedAxisMapping(0).assign(&batches, n_procs),
            ),
            (
                "fixed y".into(),
                FixedAxisMapping(1).assign(&batches, n_procs),
            ),
            (
                "fixed z".into(),
                FixedAxisMapping(2).assign(&batches, n_procs),
            ),
            (
                "morton curve".into(),
                MortonMapping.assign(&batches, n_procs),
            ),
        ];
        for (sname, assignment) in strategies {
            let r = analyze(
                &structure,
                &batches,
                &assignment,
                n_procs,
                &basis,
                &cutoffs,
                8.0,
            );
            table::row(
                &[
                    wname.to_string(),
                    sname,
                    table::fmt_bytes(r.mean_dense_bytes() as usize),
                    format!("{:.0}", r.mean_spline_atoms()),
                ],
                &widths,
            );
        }
    }
    println!("\nexpected: for the x-extended polymer, fixed-y/z cuts destroy locality;");
    println!("Algorithm 1 matches the best fixed axis without knowing the geometry");
    qp_bench::trace_hook::finish();
}
