//! Debug probe: polarizability of rotated water.
use qp_chem::basis::BasisSettings;
use qp_chem::geometry::{Atom, Structure};
use qp_chem::grids::GridSettings;
use qp_core::{dfpt, scf, DfptOptions, ScfOptions, System};

fn main() {
    let theta = 35.0f64.to_radians();
    let (c, s) = (theta.cos(), theta.sin());
    let rotate = |p: [f64; 3]| [c * p[0] - s * p[1], s * p[0] + c * p[1], p[2]];
    let base = qp_chem::structures::water();
    let rotated = Structure::new(
        base.atoms
            .iter()
            .map(|a| Atom::new(a.element, rotate(a.position)))
            .collect(),
    );
    for (setting, min_ang, max_ang, nrad) in
        [("coarse-ang", 6, 26, 24), ("full-50-ang", 50, 50, 40)]
    {
        println!("== {setting} ==");
        let mut gs = GridSettings::light();
        gs.n_radial = nrad;
        gs.min_angular = min_ang;
        gs.max_angular = max_ang;
        for (name, st) in [("base", base.clone()), ("rotated", rotated.clone())] {
            let sys = System::build(st, BasisSettings::Light, &gs, 150, 2);
            let ground = scf(&sys, &ScfOptions::default()).unwrap();
            let r = dfpt(&sys, &ground, &DfptOptions::default()).unwrap();
            println!("{name}: E = {:.6}", ground.energy);
            for i in 0..3 {
                println!(
                    "  [{:9.4} {:9.4} {:9.4}]",
                    r.polarizability[(i, 0)],
                    r.polarizability[(i, 1)],
                    r.polarizability[(i, 2)]
                );
            }
        }
    }
}
