//! Fig. 10: AllReduce time for synthesizing `rho_multipole` after the
//! response-density phase — baseline (one AllReduce per row) vs packed
//! (512 rows per call, §3.2.1) vs packed hierarchical (§3.2.2, HPC #2 only).
//!
//! Semantic equivalence of the three paths is established by the real
//! executions in `qp-mpi`/`qp-core` tests (bitwise for packed, ≤1 ulp-scale
//! for hierarchical); this harness charges the per-path call/byte counts to
//! the machine models at the paper's scales.
//!
//! Paper: packed 8.2–34.9× (HPC#1), 9.2–269.6× (HPC#2); packed+hierarchical
//! 12.4–567.2× (HPC#2); not applicable on HPC#1.

use qp_bench::table;
use qp_bench::workloads::rho_multipole_row_bytes;
use qp_machine::cost::{allreduce_time, hierarchical_allreduce_time};
use qp_machine::{hpc1, hpc2, MachineModel};

/// Rows fused per packed call (the paper packs 512 invocations into one).
const PACK_ROWS: usize = 512;

fn baseline(m: &MachineModel, atoms: usize, ranks: usize) -> f64 {
    atoms as f64 * allreduce_time(m, ranks, rho_multipole_row_bytes())
}

fn packed(m: &MachineModel, atoms: usize, ranks: usize) -> f64 {
    let calls = atoms.div_ceil(PACK_ROWS);
    let bytes = PACK_ROWS * rho_multipole_row_bytes();
    calls as f64 * allreduce_time(m, ranks, bytes)
}

fn packed_hier(m: &MachineModel, atoms: usize, ranks: usize) -> Option<f64> {
    let calls = atoms.div_ceil(PACK_ROWS);
    let bytes = PACK_ROWS * rho_multipole_row_bytes();
    hierarchical_allreduce_time(m, ranks, bytes).map(|t| calls as f64 * t)
}

fn main() {
    qp_bench::trace_hook::init();
    let row_kb = rho_multipole_row_bytes() as f64 / 1024.0;
    println!("Fig 10: rho_multipole AllReduce time (row = {row_kb:.1} KB, {PACK_ROWS} rows/packed call)\n");

    for (hname, m) in [("HPC#1", hpc1()), ("HPC#2", hpc2())] {
        println!("== {hname} ({}) ==", m.name);
        let widths = [10, 8, 12, 12, 10, 14, 12];
        table::header(
            &[
                "atoms",
                "procs",
                "baseline",
                "packed",
                "speedup",
                "packed+hier",
                "speedup",
            ],
            &widths,
        );
        for &atoms in &[30_002usize, 60_002] {
            let proc_lists: &[usize] = if atoms == 30_002 {
                &[256, 512, 1024, 2048, 4096]
            } else {
                &[512, 1024, 2048, 4096, 8192]
            };
            for &p in proc_lists {
                let tb = baseline(&m, atoms, p);
                let tp = packed(&m, atoms, p);
                let th = packed_hier(&m, atoms, p);
                table::row(
                    &[
                        atoms.to_string(),
                        p.to_string(),
                        table::fmt_secs(tb),
                        table::fmt_secs(tp),
                        format!("{:.1}x", tb / tp),
                        th.map(table::fmt_secs).unwrap_or_else(|| "n/a".into()),
                        th.map(|t| format!("{:.1}x", tb / t))
                            .unwrap_or_else(|| "n/a".into()),
                    ],
                    &widths,
                );
            }
        }
        println!();
    }
    println!("paper: HPC#1 packed 8.2-34.9x (hierarchical n/a: core-group memories disjoint)");
    println!("       HPC#2 packed 9.2-269.6x, packed+hierarchical 12.4-567.2x");
    qp_bench::trace_hook::finish();
}
