//! Fig. 13: fine-grained parallelism (§4.4) — speedup of the
//! response-potential phase from collapsing the dependent `(p, m)`
//! Adams–Moulton loop, H(C₂H₄)ₙH on HPC#2.
//!
//! Paper: 1.01× at 128 procs up to 1.34× at 65 536 procs — the speedup
//! *grows with rank count* because per-rank interpolation work shrinks while
//! the per-atom integrator loop (with its halo floor) does not, so the
//! badly-occupied loop's share of the phase grows.
//!
//! The two loop forms execute for real (`qp-cl::collapse`; identical results
//! asserted in qp-core tests); their measured occupancies feed the cost
//! model.

use qp_bench::phase_model::calibration;
use qp_bench::table;
use qp_machine::hpc2;
use qp_machine::kernel_cost::{kernel_time, KernelWork};

/// Response-potential phase time with the chosen integrator-loop form.
fn v1_time(atoms: usize, ranks: usize, collapsed: bool) -> f64 {
    let cal = calibration();
    let m = hpc2();
    let n = atoms as f64;
    let p = ranks as f64;
    // Interpolation part: scales with the rank's grid points, fully occupied.
    let interp = KernelWork {
        launches: 1,
        offchip_words: (cal.rho_words * n / p) as u64,
        flops: (cal.rho_flops * n / p) as u64,
        occupancy: 1.0,
        ..Default::default()
    };
    // Integrator part: per (local atom + halo) x (l,m) channel; occupancy
    // is the measured lane occupancy of the loop form.
    let halo = 120.0;
    let local_atoms = n / p + halo;
    let integ_flops = local_atoms * cal.splines_per_atom * 4_000.0;
    let integ = KernelWork {
        launches: 1,
        offchip_words: (integ_flops / 8.0) as u64,
        flops: integ_flops as u64,
        occupancy: if collapsed {
            cal.occ_collapsed
        } else {
            cal.occ_nested
        },
        ..Default::default()
    };
    kernel_time(&m, &interp) + kernel_time(&m, &integ)
}

fn main() {
    qp_bench::trace_hook::init();
    println!("Fig 13: fine-grained-parallelism speedup of v1_es,tot on HPC#2\n");
    let cal = calibration();
    println!(
        "measured integrator occupancy: nested {:.3}, collapsed {:.3}\n",
        cal.occ_nested, cal.occ_collapsed
    );
    let widths = [10, 8, 12];
    table::header(&["atoms", "procs", "speedup"], &widths);
    let cases: &[(usize, &[usize])] = &[
        (15_002, &[128, 256, 512, 1024, 2048]),
        (30_002, &[256, 512, 1024, 2048, 4096]),
        (60_002, &[1024, 2048, 4096, 8192]),
        (117_602, &[4096, 8192, 16384, 32768, 65536]),
        (200_002, &[16384, 32768]),
    ];
    for &(atoms, procs) in cases {
        for &p in procs {
            let s = v1_time(atoms, p, false) / v1_time(atoms, p, true);
            table::row(
                &[atoms.to_string(), p.to_string(), format!("{s:.2}x")],
                &widths,
            );
        }
    }
    println!("\npaper: 1.01x (15002@128) ... 1.34x (117602@65536); grows with procs");
    qp_bench::trace_hook::finish();
}
