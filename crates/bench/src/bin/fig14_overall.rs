//! Fig. 14: overall per-phase impact of all innovations across typical
//! cases, before vs after optimization.
//!
//! Paper highlights: 36.5× for DM (RBD @ 64 tasks, HPC#1), 6.47× for
//! v¹_es,tot (Poly-30 002 @ 2 048, HPC#2), communication −90.7 %
//! (Poly @ 2 048, HPC#2), overall up to 11.1×.
//!
//! Phase times come from the calibrated phase model (per-atom constants
//! measured from the real instrumented ligand run; optimization factors are
//! the *measured* CSR/dense ratios, fusion outcomes and loop occupancies).

use qp_bench::phase_model::{calibration, cycle_time, PhaseTimes};
use qp_bench::{table, trace_hook};
use qp_machine::{hpc1, hpc2, MachineModel};

struct Case {
    name: &'static str,
    atoms: usize,
    ranks: usize,
    machine: MachineModel,
}

/// Returns the simulated-timeline offset for the next case.
fn print_case(c: &Case, trace_offset_s: f64) -> f64 {
    let cal = calibration();
    let before = cycle_time(cal, &c.machine, c.atoms, c.ranks, false);
    let after = cycle_time(cal, &c.machine, c.atoms, c.ranks, true);
    let next_offset =
        trace_hook::emit_case_timeline(&c.machine, c.name, &after, c.ranks, trace_offset_s);
    println!(
        "case: {} — {} atoms, {} tasks, {}",
        c.name, c.atoms, c.ranks, c.machine.name
    );
    let widths = [10, 12, 12, 10];
    table::header(&["phase", "before", "after", "speedup"], &widths);
    type PhaseGetter = fn(&PhaseTimes) -> f64;
    let rows: [(&str, PhaseGetter); 5] = [
        ("DM", |t| t.dm),
        ("Sumup", |t| t.sumup),
        ("Rho(v1)", |t| t.rho),
        ("H1", |t| t.h),
        ("Comm", |t| t.comm),
    ];
    for (name, get) in rows {
        let b = get(&before);
        let a = get(&after);
        table::row(
            &[
                name.to_string(),
                table::fmt_secs(b),
                table::fmt_secs(a),
                format!("{:.2}x", b / a),
            ],
            &widths,
        );
    }
    let comm_cut = (1.0 - after.comm / before.comm) * 100.0;
    table::row(
        &[
            "TOTAL".to_string(),
            table::fmt_secs(before.total()),
            table::fmt_secs(after.total()),
            format!("{:.2}x", before.total() / after.total()),
        ],
        &widths,
    );
    println!("communication reduced by {comm_cut:.1}%\n");
    next_offset
}

fn main() {
    trace_hook::init();
    println!("Fig 14: per-phase execution time before/after all optimizations\n");
    let cases = [
        Case {
            name: "RBD",
            atoms: 3_006,
            ranks: 64,
            machine: hpc1(),
        },
        Case {
            name: "RBD",
            atoms: 3_006,
            ranks: 512,
            machine: hpc2(),
        },
        Case {
            name: "Poly (H(C2H4)5000H)",
            atoms: 30_002,
            ranks: 4_096,
            machine: hpc1(),
        },
        Case {
            name: "Poly (H(C2H4)5000H)",
            atoms: 30_002,
            ranks: 2_048,
            machine: hpc2(),
        },
        Case {
            name: "HIV-1 ligand",
            atoms: 49,
            ranks: 8,
            machine: hpc2(),
        },
    ];
    let mut offset = 0.0;
    for c in &cases {
        offset = print_case(c, offset);
    }
    trace_hook::emit_host_collectives();
    println!("paper: DM up to 36.5x (RBD@64, HPC#1), v1 6.47x (Poly@2048, HPC#2),");
    println!("       comm -90.7% (Poly@2048, HPC#2), overall up to 11.1x");
    trace_hook::finish();
}
