//! Debug utility: print the measured per-atom calibration constants.
use qp_bench::phase_model::calibration;

fn main() {
    println!("{:#?}", calibration());
}
