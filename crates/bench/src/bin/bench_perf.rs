//! `bench_perf`: the workspace's end-to-end performance tracker.
//!
//! Runs fixed mini-workloads through the *real* pipeline — ligand-49
//! SCF + DFPT and a polyethylene SCF + DFPT case — plus a GEMM throughput
//! probe, and emits `BENCH_perf.json` so successive PRs accumulate a
//! comparable perf trajectory.
//!
//! ```text
//! cargo run --release -p qp-bench --bin bench_perf [--quick] [--guard] [--out PATH]
//! ```
//!
//! `--quick` shrinks every workload (water instead of the ligand, a
//! 2-monomer polymer, GEMM at n = 256) for CI smoke runs. Each case runs
//! two legs: a 1-thread serial reference and a parallel leg pinned to
//! `QP_THREADS` (default: available parallelism, clamped to ≥ 2 so the
//! fan-out is actually exercised even on single-core hosts); the run
//! aborts if the parallel leg would end up single-threaded. The JSON
//! carries both rows plus the end-to-end speedup.
//!
//! `--guard` adds four regression checks:
//!
//! 1. the phase check: one ligand-49 DFPT direction, failing the process
//!    if the Sternheimer phase takes more than a generous multiple of
//!    Sumup — the signature of the O(n⁴) pair-loop accidentally replacing
//!    the GEMM-form response build (exit 3) — or if the Rho phase exceeds
//!    its own multiple of Sumup — region coarsening / fused super-batch
//!    regression (exit 6);
//! 2. the end-to-end check: any case whose parallel leg is slower than
//!    `serial × (1 + slack)` fails (exit 4). The slack comes from
//!    `QP_BENCH_E2E_SLACK`, defaulting to 0.0 on hosts with ≥ 2 physical
//!    cores — a parallel leg slower than serial is a hard regression
//!    there — and 0.25 only on single-core hosts (a 2-thread leg on a
//!    1-core host *cannot* beat serial; the guard then only catches
//!    pathological slowdowns);
//! 3. the scheduling check: any case whose attributed
//!    `scheduling_overhead_fraction` exceeds `QP_BENCH_SCHED_MAX`
//!    (default 0.40) fails (exit 5) — the pool is burning more wall clock
//!    on setup/queue/drain than the threshold allows;
//! 4. the weak-scaling checks over the polymer sweep (below): the fitted
//!    log–log exponent of the screened per-cycle assembly cost must stay
//!    under `QP_BENCH_SCALING_MAX` (default 1.75; exit 7), screened
//!    assembly must not lose to dense on the compact ligand-49 by more
//!    than `QP_BENCH_SCREEN_SLACK` (default 0.25; exit 8), and — on the
//!    full sweep — the fitted tree-mode `rho` exponent must stay under
//!    `QP_BENCH_RHO_MAX` (default 1.4; exit 9) and the blocks-path `dm`
//!    exponent under `QP_BENCH_DM_MAX` (default 1.4; exit 10). Wherever
//!    the direct-path Rho oracle runs alongside the tree, the two
//!    potentials must agree within `QP_FARFIELD_TOL` (exit 11).
//!
//! The polymer weak-scaling sweep runs H(C₂H₄)ₙH at n = 4…1024 (quick:
//! 4…16) through one cycle's worth of assembly phases — system build +
//! tabulation, Sumup (density on grid), H (potential matrix), and the
//! density-matrix build (routed to the block-sparse path with localized
//! pseudo-orbitals when `dm_blocks_preferred` holds, dense otherwise) —
//! with cutoff-sphere screening on and the hierarchical far-field tree
//! on, plus a dense reference leg and a direct-path Rho oracle at small
//! n. Each phase gets a fitted log–log exponent; `e2e_full_s` is the
//! per-cycle assembly sum *including* tree-mode Rho.

use std::fmt::Write as _;
use std::time::Instant;

use qp_bench::workloads;
use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_chem::multipole::{solve_poisson, MultipoleMoments};
use qp_core::basis_cache::cache_counters;
use qp_core::dfpt::{dfpt_direction, DfptOptions};
use qp_core::operators;
use qp_core::profile::{attribute, Attribution};
use qp_core::scf::{scf, ScfOptions};
use qp_core::system::System;
use qp_core::{FarFieldMode, ScreeningMode};
use qp_grid::{farfield_tol, FarField};
use qp_linalg::DMatrix;
use qp_par::telemetry;
use qp_trace::span::{set_enabled, take_events, Phase};

struct CaseSpec {
    name: &'static str,
    build: fn() -> System,
    scf: ScfOptions,
    /// Field directions to converge (`1` = y); fewer keep quick mode cheap.
    dfpt_dirs: &'static [usize],
    dfpt: DfptOptions,
}

struct PhaseSeconds {
    sumup: f64,
    rho: f64,
    h: f64,
    sternheimer: f64,
    /// DFPT wall time not covered by the four phase spans (mixing,
    /// residual norms, span gaps) — explicit so the buckets sum to the
    /// DFPT total instead of silently under-reporting.
    other: f64,
}

struct CaseResult {
    name: &'static str,
    atoms: usize,
    basis: usize,
    points: usize,
    scf_s: f64,
    scf_iterations: usize,
    dfpt_s: f64,
    dfpt_dirs: usize,
    alpha_diag: Vec<f64>,
    phases: PhaseSeconds,
    serial_total_s: f64,
    parallel_total_s: f64,
    parallel_threads: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    attribution: Attribution,
}

/// Thread count for the parallel leg: `QP_THREADS` if set, else available
/// parallelism — clamped to ≥ 2 so the leg genuinely fans out (on a
/// single-core host that means oversubscription, which still exercises the
/// parallel code paths and the determinism contract).
fn parallel_leg_threads() -> usize {
    let requested = std::env::var("QP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    if requested < 2 {
        eprintln!("bench_perf: clamping parallel leg from {requested} to 2 threads");
    }
    requested.max(2)
}

/// The statistics-grade ligand grid shared with `tests/determinism_threads.rs`.
fn ligand_system() -> System {
    workloads::bench_ligand_system()
}

fn polymer_system() -> System {
    // H(C2H4)4H: 26 atoms — big enough to spread over many grid batches.
    workloads::bench_polymer_system(26)
}

fn water_system() -> System {
    workloads::bench_water_system()
}

fn ligand_scf() -> ScfOptions {
    workloads::bench_scf_options()
}

fn cases(quick: bool) -> Vec<CaseSpec> {
    if quick {
        vec![
            CaseSpec {
                name: "water",
                build: water_system,
                scf: ScfOptions::default(),
                dfpt_dirs: &[1],
                dfpt: DfptOptions::default(),
            },
            CaseSpec {
                name: "polyethylene-n2",
                build: || {
                    let mut gs = GridSettings::coarse();
                    gs.n_radial = 8;
                    gs.max_angular = 6;
                    gs.min_angular = 6;
                    System::build(
                        workloads::polymer(14).structure,
                        BasisSettings::Light,
                        &gs,
                        150,
                        2,
                    )
                },
                scf: ligand_scf(),
                dfpt_dirs: &[1],
                dfpt: DfptOptions {
                    max_iter: 80,
                    tol: 1e-5,
                    mixing: 0.15,
                    ..DfptOptions::default()
                },
            },
        ]
    } else {
        vec![
            CaseSpec {
                name: "ligand49",
                build: ligand_system,
                scf: ligand_scf(),
                dfpt_dirs: &[0, 1, 2],
                dfpt: DfptOptions {
                    max_iter: 80,
                    tol: 1e-5,
                    mixing: 0.15,
                    ..DfptOptions::default()
                },
            },
            CaseSpec {
                name: "polyethylene-n4",
                build: polymer_system,
                scf: ligand_scf(),
                dfpt_dirs: &[1],
                dfpt: DfptOptions {
                    max_iter: 80,
                    tol: 1e-5,
                    mixing: 0.15,
                    ..DfptOptions::default()
                },
            },
        ]
    }
}

/// SCF + DFPT once; returns (scf_s, scf_iters, dfpt_s, α_dd per converged dir).
fn run_once(spec: &CaseSpec, sys: &System) -> (f64, usize, f64, Vec<f64>) {
    let t0 = Instant::now();
    let ground = scf(sys, &spec.scf).expect("SCF must converge for the bench workload");
    let scf_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut alpha = Vec::new();
    for &dir in spec.dfpt_dirs {
        match dfpt_direction(sys, &ground, dir, &spec.dfpt) {
            Ok(resp) => {
                let dip = qp_core::operators::dipole_matrix(sys, dir);
                alpha.push(resp.p1.trace_product(&dip).expect("square"));
            }
            Err(e) => {
                eprintln!("  warning: {} direction {dir}: {e}", spec.name);
                alpha.push(f64::NAN);
            }
        }
    }
    let dfpt_s = t1.elapsed().as_secs_f64();
    (scf_s, ground.iterations, dfpt_s, alpha)
}

fn run_case(spec: &CaseSpec) -> CaseResult {
    println!("case {} ...", spec.name);
    let sys = (spec.build)();
    let parallel_threads = parallel_leg_threads();

    // Serial reference for the end-to-end speedup.
    let serial_total_s = {
        let _lease = qp_par::ThreadLease::exactly(1);
        let sys = (spec.build)(); // fresh basis cache: cold start, like a real run
        let t = Instant::now();
        let _ = run_once(spec, &sys);
        t.elapsed().as_secs_f64()
    };

    // Instrumented parallel run: per-phase spans + cache counters, pinned
    // to the requested thread count.
    let _lease = qp_par::ThreadLease::exactly(parallel_threads);
    let active = qp_par::active_threads();
    if active < 2 {
        eprintln!(
            "bench_perf: parallel leg for {} is running single-threaded \
             ({active} active thread(s)); the speedup row would be a lie",
            spec.name
        );
        std::process::exit(2);
    }
    let (h0, m0, e0) = cache_counters();
    set_enabled(true);
    let _ = take_events();
    telemetry::set_enabled(true);
    let _ = telemetry::take_records();
    let t = Instant::now();
    let (scf_s, scf_iterations, dfpt_s, alpha_diag) = run_once(spec, &sys);
    let parallel_total_s = t.elapsed().as_secs_f64();
    set_enabled(false);
    telemetry::set_enabled(false);
    let events = take_events();
    let records = telemetry::take_records();
    let (h1, m1, e1) = cache_counters();

    let attribution = attribute(&records, parallel_total_s, parallel_threads);
    let phase_sum = |p: Phase| -> f64 {
        events
            .iter()
            .filter(|ev| ev.phase == p)
            .map(|ev| ev.dur_us / 1e6)
            .sum()
    };
    let covered = phase_sum(Phase::Sumup)
        + phase_sum(Phase::Rho)
        + phase_sum(Phase::H)
        + phase_sum(Phase::Sternheimer);
    CaseResult {
        name: spec.name,
        atoms: sys.structure.len(),
        basis: sys.n_basis(),
        points: sys.n_points(),
        scf_s,
        scf_iterations,
        dfpt_s,
        dfpt_dirs: spec.dfpt_dirs.len(),
        alpha_diag,
        phases: PhaseSeconds {
            sumup: phase_sum(Phase::Sumup),
            rho: phase_sum(Phase::Rho),
            h: phase_sum(Phase::H),
            sternheimer: phase_sum(Phase::Sternheimer),
            other: (dfpt_s - covered).max(0.0),
        },
        serial_total_s,
        parallel_total_s,
        parallel_threads,
        cache_hits: h1 - h0,
        cache_misses: m1 - m0,
        cache_evictions: e1 - e0,
        attribution,
    }
}

/// Slack factor for the end-to-end guard: `parallel_total_s` may exceed
/// `serial_total_s × (1 + slack)` before the guard trips. On a host with
/// at least two cores there is no excuse for a parallel leg slower than
/// serial — the slack is zero and any `e2e_speedup < 1.0` hard-fails
/// (exit 4). Only genuinely oversubscribed single-core hosts (the 1-core
/// CI runner, where every extra thread is pure overhead) keep a loose
/// 25% allowance. Override with `QP_BENCH_E2E_SLACK`.
fn e2e_slack(_parallel_threads: usize) -> f64 {
    if let Some(s) = std::env::var("QP_BENCH_E2E_SLACK")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        return s;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        0.0
    } else {
        0.25
    }
}

/// The `--guard` efficiency checks over the finished cases: the parallel
/// leg must not be meaningfully slower than serial (exit 4), and the
/// attributed scheduling overhead must stay under `QP_BENCH_SCHED_MAX`
/// (default 0.40, exit 5). Cases whose serial reference is shorter than
/// this floor skip the e2e check — at tens of milliseconds, timer noise
/// exceeds any slack the guard could reasonably allow. The
/// ratio-based scheduling-overhead check still applies to them.
const E2E_MIN_SERIAL_S: f64 = 0.1;

fn run_efficiency_guard(results: &[CaseResult]) {
    let sched_max = std::env::var("QP_BENCH_SCHED_MAX")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.40);
    for c in results {
        let slack = e2e_slack(c.parallel_threads);
        let limit = c.serial_total_s * (1.0 + slack);
        println!(
            "efficiency guard {}: parallel {:.3}s vs serial {:.3}s (limit {:.3}s), \
             sched overhead {:.1}% (max {:.0}%), dominant {}",
            c.name,
            c.parallel_total_s,
            c.serial_total_s,
            limit,
            100.0 * c.attribution.scheduling_overhead_fraction,
            100.0 * sched_max,
            c.attribution.dominant_cause,
        );
        if c.serial_total_s < E2E_MIN_SERIAL_S {
            println!(
                "efficiency guard {}: e2e check skipped (serial {:.3}s below \
                 {:.1}s noise floor)",
                c.name, c.serial_total_s, E2E_MIN_SERIAL_S,
            );
        } else if c.parallel_total_s > limit {
            eprintln!(
                "bench_perf: end-to-end regression on {} — the {}-thread leg took \
                 {:.3}s against a {:.3}s serial reference (slack {:.0}%); attribution: \
                 {:.1}% serial, {:.1}% scheduling overhead, {:.1}% imbalance, \
                 {:.1}% useful",
                c.name,
                c.parallel_threads,
                c.parallel_total_s,
                c.serial_total_s,
                100.0 * slack,
                100.0 * c.attribution.serial_fraction,
                100.0 * c.attribution.scheduling_overhead_fraction,
                100.0 * c.attribution.imbalance_fraction,
                100.0 * c.attribution.useful_parallel_fraction,
            );
            std::process::exit(4);
        }
        if c.attribution.scheduling_overhead_fraction > sched_max {
            eprintln!(
                "bench_perf: scheduling-overhead regression on {} — {:.1}% of the \
                 parallel wall clock went to region setup/queue/drain (max {:.0}%); \
                 setup {:.1}ms, queue-wait {:.1}ms over {} regions",
                c.name,
                100.0 * c.attribution.scheduling_overhead_fraction,
                100.0 * sched_max,
                c.attribution.setup_s * 1e3,
                c.attribution.queue_wait_s * 1e3,
                c.attribution.regions,
            );
            std::process::exit(5);
        }
    }
}

/// The `--guard` phase-regression check: one ligand-49 DFPT direction
/// with per-phase spans, failing if Sternheimer wall-time exceeds a
/// generous multiple of the Sumup phase. The GEMM-form response build is
/// two Level-3 products — far cheaper than Sumup's grid contraction — so
/// tripping this bound means the O(n⁴) pair-loop (or something equally
/// catastrophic) is back on the hot path.
fn run_phase_guard() {
    const FACTOR: f64 = 5.0;
    const FLOOR_S: f64 = 0.05;
    println!("phase guard: ligand49, 1 DFPT direction ...");
    let sys = ligand_system();
    let ground = scf(&sys, &ligand_scf()).expect("guard SCF converges");
    set_enabled(true);
    let _ = take_events();
    let dfpt_opts = DfptOptions {
        max_iter: 80,
        tol: 1e-5,
        mixing: 0.15,
        ..DfptOptions::default()
    };
    dfpt_direction(&sys, &ground, 1, &dfpt_opts).expect("guard DFPT converges");
    set_enabled(false);
    let events = take_events();
    let phase_sum = |p: Phase| -> f64 {
        events
            .iter()
            .filter(|ev| ev.phase == p)
            .map(|ev| ev.dur_us / 1e6)
            .sum()
    };
    let sumup = phase_sum(Phase::Sumup);
    let sternheimer = phase_sum(Phase::Sternheimer);
    let limit = FACTOR * sumup.max(FLOOR_S);
    println!("phase guard: sumup {sumup:.3}s, sternheimer {sternheimer:.3}s (limit {limit:.3}s)");
    if sternheimer > limit {
        eprintln!(
            "bench_perf: Sternheimer phase regression — {sternheimer:.3}s exceeds \
             {FACTOR}x max(sumup = {sumup:.3}s, {FLOOR_S}s); the O(n4) pair-loop \
             is likely back on the hot path"
        );
        std::process::exit(3);
    }
    // Rho leg: the multipole Poisson solve sits between Sumup and H on the
    // same grid data. Healthy profiles put it at a small multiple of Sumup
    // (~2.8x on the reference host); the pre-coarsening regression ran it
    // at ~14x. Guard with generous slack so only a structural regression
    // (per-point region dispatch, lost fusion) trips it.
    const RHO_FACTOR: f64 = 6.0;
    let rho = phase_sum(Phase::Rho);
    let rho_limit = RHO_FACTOR * sumup.max(FLOOR_S);
    println!("phase guard: rho {rho:.3}s (limit {rho_limit:.3}s)");
    if rho > rho_limit {
        eprintln!(
            "bench_perf: Rho phase regression — {rho:.3}s exceeds {RHO_FACTOR}x \
             max(sumup = {sumup:.3}s, {FLOOR_S}s); region coarsening or the fused \
             Rho super-batches have likely regressed"
        );
        std::process::exit(6);
    }
}

/// One cycle's worth of assembly phases for a system: build + tabulation,
/// Sumup, H and the density-matrix build. Everything the screening pass
/// is supposed to make O(n); `rho` is tracked separately.
struct AssemblyLeg {
    build_s: f64,
    sumup_s: f64,
    h_s: f64,
    dm_s: f64,
    /// Whether the DM probe took the block-sparse (linear-scaling) path.
    dm_blocks: bool,
}

impl AssemblyLeg {
    fn e2e_s(&self) -> f64 {
        self.build_s + self.sumup_s + self.h_s + self.dm_s
    }
}

struct SweepRow {
    monomers: usize,
    atoms: usize,
    basis: usize,
    points: usize,
    /// Surviving fraction of the atom-pair matrix under screening.
    pair_fill: f64,
    screened: AssemblyLeg,
    /// Multipole far-field potential rebuild (the DFPT Rho phase) on the
    /// hierarchical cluster tree — O(n log n), measured at every size.
    rho_tree_s: f64,
    /// Direct-path Rho oracle at small n (O(n²) by construction).
    rho_direct_s: Option<f64>,
    /// Max relative deviation of the tree potential from the direct
    /// oracle over all grid points, where the oracle ran.
    farfield_dev: Option<f64>,
    /// Dense reference at small n (the O(n²)+ path gets infeasible fast).
    dense: Option<AssemblyLeg>,
}

impl SweepRow {
    /// Full per-cycle assembly cost including the tree-mode Rho rebuild.
    fn e2e_full_s(&self) -> f64 {
        self.screened.e2e_s() + self.rho_tree_s
    }
}

struct WeakScaling {
    sizes: Vec<usize>,
    rows: Vec<SweepRow>,
    /// Fitted log–log exponents keyed by phase name.
    exponents: Vec<(&'static str, f64)>,
    /// Screened-vs-dense assembly wall time on the compact ligand-49.
    ligand_screened_s: f64,
    ligand_dense_s: f64,
}

/// Deterministic pseudo-orbital fill for the density-matrix probes.
fn pseudo(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 7 + 13) % 101) as f64 / 101.0 - 0.5
}

/// Run one cycle's assembly phases on a freshly built system and time
/// each. The Sumup/H/DM inputs are synthetic — their cost depends only on
/// the screening structure, not the values.
fn assembly_leg(build: impl Fn() -> System) -> (System, AssemblyLeg) {
    let t = Instant::now();
    let sys = build();
    sys.warm_tables();
    let build_s = t.elapsed().as_secs_f64();

    let nb = sys.n_basis();
    let p = DMatrix::from_fn(nb, nb, |i, j| if i == j { 1.0 } else { 0.0 });
    let t = Instant::now();
    let n1 = sys.density_on_grid(&p);
    let sumup_s = t.elapsed().as_secs_f64();
    std::hint::black_box(&n1);

    let v = vec![0.3; sys.n_points()];
    let t = Instant::now();
    let h = operators::potential_matrix(&sys, &v);
    let h_s = t.elapsed().as_secs_f64();
    std::hint::black_box(&h);

    let mut occ = vec![0.0; nb];
    let nocc = sys.n_occupied().min(nb);
    occ[..nocc].fill(2.0);
    // DM routing mirrors what `--screening auto` callers get: the
    // block-sparse build only when the plan is large and sparse enough to
    // win (`dm_blocks_preferred`), dense GEMM otherwise — the small-n
    // screened-DM regression stays off the scorecard. The blocks probe
    // uses *localized* pseudo-orbitals (column `a` supported on the
    // neighbourhood of its home atom) through the a-priori-support entry
    // point, so activity comes from the plan and the probe measures the
    // `O(surviving blocks)` regime the linear-scaling build targets.
    let (dm_s, dm_blocks) = match sys
        .screen()
        .filter(|plan| operators::dm_blocks_preferred(plan))
    {
        Some(plan) => {
            let fa = &plan.fn_atom;
            // Filled by contiguous neighbour-block runs per row (not a
            // per-element `contains`, whose binary searches dominate the
            // untimed setup at large n).
            let mut c = DMatrix::zeros(nb, nb);
            for mu in 0..nb {
                for &j in plan.neighbours.neighbours(fa[mu] as usize) {
                    let (o, s) = (
                        plan.partition.offset(j as usize),
                        plan.partition.size(j as usize),
                    );
                    for a in o..o + s {
                        c[(mu, a)] = pseudo(mu, a);
                    }
                }
            }
            let t = Instant::now();
            std::hint::black_box(operators::density_matrix_occ_blocks_local(
                plan, &c, &occ, fa, true,
            ));
            (t.elapsed().as_secs_f64(), true)
        }
        None => {
            let c = DMatrix::from_fn(nb, nb, pseudo);
            let t = Instant::now();
            std::hint::black_box(operators::density_matrix_occ(&c, &occ));
            (t.elapsed().as_secs_f64(), false)
        }
    };

    (
        sys,
        AssemblyLeg {
            build_s,
            sumup_s,
            h_s,
            dm_s,
            dm_blocks,
        },
    )
}

/// The DFPT Rho phase in isolation: multipole moments, radial Poisson
/// solve, far-field potential on every grid point. Mirrors the phase body
/// in `qp_core::dfpt` exactly: the hierarchical cluster tree serves the
/// far field when `use_tree` (the system must carry a tree), the direct
/// per-atom sum otherwise. Returns the wall time and the potential so the
/// sweep can hold the tree to the direct oracle.
fn rho_potential(sys: &System, n1: &[f64], use_tree: bool) -> (f64, Vec<f64>) {
    let t = Instant::now();
    let plan = sys.hartree_plan();
    let moments = match plan.as_deref() {
        Some(pl) => MultipoleMoments::compute_planned(&sys.structure, &sys.grid, n1, pl),
        None => MultipoleMoments::compute(&sys.structure, &sys.grid, n1, sys.lmax),
    };
    let hartree = solve_poisson(&sys.structure, &sys.grid, &moments);
    let natoms = sys.structure.len();
    let mut v1 = vec![0.0; sys.grid.len()];
    let est = (natoms * hartree.n_lm * 8).max(1) as u64;
    if use_tree {
        let tree = sys
            .farfield_tree()
            .expect("tree-mode rho probe needs a cluster tree");
        let far = FarField::aggregate(tree, &hartree, farfield_tol());
        qp_par::fill_slice_hinted(&mut v1, est, |gi| {
            far.eval(tree, &hartree, sys.grid.points[gi].position)
        });
    } else {
        match plan.as_deref() {
            Some(pl) => qp_par::fill_slice_hinted(&mut v1, est, |gi| hartree.eval_planned(pl, gi)),
            None => qp_par::fill_slice_hinted(&mut v1, est, |gi| {
                let p = &sys.grid.points[gi];
                hartree.eval_atoms(p.position, 0..natoms)
            }),
        }
    }
    std::hint::black_box(&v1);
    (t.elapsed().as_secs_f64(), v1)
}

/// Polymer system at `monomers` chain length on the sweep's coarse grid
/// (the quick-case settings — the sweep measures scaling, not accuracy).
fn sweep_system(monomers: usize, mode: ScreeningMode, farfield: FarFieldMode) -> System {
    let mut gs = GridSettings::coarse();
    gs.n_radial = 8;
    gs.max_angular = 6;
    gs.min_angular = 6;
    System::build_with_modes(
        workloads::polymer(6 * monomers + 2).structure,
        BasisSettings::Light,
        &gs,
        150,
        2,
        mode,
        farfield,
    )
}

/// Least-squares slope of ln(t) vs ln(n) — the weak-scaling exponent.
fn loglog_exponent(points: &[(usize, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, t)| t > 0.0)
        .map(|&(n, t)| ((n as f64).ln(), t.ln()))
        .collect();
    if pts.len() < 2 {
        return f64::NAN;
    }
    let m = pts.len() as f64;
    let (xm, ym) = (
        pts.iter().map(|p| p.0).sum::<f64>() / m,
        pts.iter().map(|p| p.1).sum::<f64>() / m,
    );
    let num: f64 = pts.iter().map(|p| (p.0 - xm) * (p.1 - ym)).sum();
    let den: f64 = pts.iter().map(|p| (p.0 - xm) * (p.0 - xm)).sum();
    num / den
}

fn run_weak_scaling(quick: bool) -> WeakScaling {
    let (sizes, dense_max, rho_max): (Vec<usize>, usize, usize) = if quick {
        (vec![4, 8, 16], 8, 16)
    } else {
        (vec![4, 8, 16, 32, 64, 128, 256, 512, 1024], 32, 64)
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        let (sys, screened) =
            assembly_leg(|| sweep_system(n, ScreeningMode::On, FarFieldMode::Tree));
        let n1 = vec![1e-3; sys.n_points()];
        let (rho_tree_s, v_tree) = rho_potential(&sys, &n1, true);
        let (rho_direct_s, farfield_dev) = if n <= rho_max {
            let (direct_s, v_direct) = rho_potential(&sys, &n1, false);
            let dev = v_tree
                .iter()
                .zip(&v_direct)
                .map(|(&vt, &vd)| (vt - vd).abs() / vd.abs().max(1.0))
                .fold(0.0_f64, f64::max);
            (Some(direct_s), Some(dev))
        } else {
            (None, None)
        };
        let pair_fill = sys.screen().map(|p| p.fill_ratio()).unwrap_or(1.0);
        let dense = (n <= dense_max)
            .then(|| assembly_leg(|| sweep_system(n, ScreeningMode::Off, FarFieldMode::Direct)).1);
        println!(
            "weak-scaling n={n}: {} atoms, {} basis, fill {:.2}, screened e2e {:.3}s, \
             rho(tree) {rho_tree_s:.3}s, dm path {}{}{}",
            sys.structure.len(),
            sys.n_basis(),
            pair_fill,
            screened.e2e_s(),
            if screened.dm_blocks {
                "blocks"
            } else {
                "dense"
            },
            rho_direct_s
                .map(|r| {
                    format!(
                        ", rho(direct) {r:.3}s (dev {:.2e})",
                        farfield_dev.unwrap_or(f64::NAN)
                    )
                })
                .unwrap_or_default(),
            dense
                .as_ref()
                .map(|d| format!(", dense e2e {:.3}s", d.e2e_s()))
                .unwrap_or_default(),
        );
        rows.push(SweepRow {
            monomers: n,
            atoms: sys.structure.len(),
            basis: sys.n_basis(),
            points: sys.n_points(),
            pair_fill,
            screened,
            rho_tree_s,
            rho_direct_s,
            farfield_dev,
            dense,
        });
    }

    let phase_points = |f: &dyn Fn(&SweepRow) -> Option<f64>| -> Vec<(usize, f64)> {
        rows.iter().filter_map(|r| Some((r.atoms, f(r)?))).collect()
    };
    // The dm exponent is fitted over the rows that actually ran the
    // block-sparse path (the asymptotic regime the guard is about); when
    // the sweep is too small to reach it — quick mode — fall back to the
    // routed series so the fit stays defined.
    let dm_points = {
        let blocks = phase_points(&|r| r.screened.dm_blocks.then_some(r.screened.dm_s));
        if blocks.len() >= 2 {
            blocks
        } else {
            phase_points(&|r| Some(r.screened.dm_s))
        }
    };
    let exponents = vec![
        (
            "build",
            loglog_exponent(&phase_points(&|r| Some(r.screened.build_s))),
        ),
        (
            "sumup",
            loglog_exponent(&phase_points(&|r| Some(r.screened.sumup_s))),
        ),
        (
            "rho",
            loglog_exponent(&phase_points(&|r| Some(r.rho_tree_s))),
        ),
        (
            "rho_direct",
            loglog_exponent(&phase_points(&|r| r.rho_direct_s)),
        ),
        (
            "h",
            loglog_exponent(&phase_points(&|r| Some(r.screened.h_s))),
        ),
        ("dm", loglog_exponent(&dm_points)),
        (
            "e2e",
            loglog_exponent(&phase_points(&|r| Some(r.screened.e2e_s()))),
        ),
        (
            "e2e_full",
            loglog_exponent(&phase_points(&|r| Some(r.e2e_full_s()))),
        ),
        (
            "dense_e2e",
            loglog_exponent(&phase_points(&|r| r.dense.as_ref().map(AssemblyLeg::e2e_s))),
        ),
    ];
    for (name, e) in &exponents {
        println!("weak-scaling exponent {name}: {e:.2}");
    }

    // Compact-molecule sanity leg: ligand-49 is the worst case for
    // screening (every sphere overlaps most others), so the screened
    // per-cycle phases must stay within overhead-noise of dense there.
    // Best-of-3 over warm tables — the one-time build is not the contract
    // here, the per-iteration cost is.
    println!("weak-scaling: ligand-49 screened-vs-dense leg ...");
    let build_ligand = |mode: ScreeningMode| {
        let sys = System::build_with_screening(
            workloads::ligand().structure,
            BasisSettings::Light,
            &GridSettings::light(),
            200,
            4,
            mode,
        );
        sys.warm_tables();
        sys
    };
    let lig_on = build_ligand(ScreeningMode::On);
    let lig_off = build_ligand(ScreeningMode::Off);
    let nb = lig_on.n_basis();
    let p = DMatrix::from_fn(nb, nb, |i, j| if i == j { 1.0 } else { 0.0 });
    let v = vec![0.3; lig_on.n_points()];
    let c = DMatrix::from_fn(nb, nb, pseudo);
    let mut occ = vec![0.0; nb];
    occ[..lig_on.n_occupied().min(nb)].fill(2.0);
    let cycle = |sys: &System| {
        std::hint::black_box(sys.density_on_grid(&p));
        std::hint::black_box(operators::potential_matrix(sys, &v));
        // Same `--screening auto` DM routing as the sweep: the compact
        // ligand never prefers the block-sparse build, so both legs take
        // the dense GEMM here.
        match sys
            .screen()
            .filter(|plan| operators::dm_blocks_preferred(plan))
        {
            Some(plan) => {
                std::hint::black_box(operators::density_matrix_occ_blocks(plan, &c, &occ, true));
            }
            None => {
                std::hint::black_box(operators::density_matrix_occ(&c, &occ));
            }
        }
    };
    // Interleave the reps so clock drift and cache state hit both legs
    // equally; best-of-5 per leg.
    let (mut ligand_screened_s, mut ligand_dense_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let t = Instant::now();
        cycle(&lig_on);
        ligand_screened_s = ligand_screened_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        cycle(&lig_off);
        ligand_dense_s = ligand_dense_s.min(t.elapsed().as_secs_f64());
    }
    println!(
        "weak-scaling ligand-49 per-cycle assembly: screened {ligand_screened_s:.3}s vs dense {ligand_dense_s:.3}s ({:.2}x)",
        ligand_screened_s / ligand_dense_s
    );

    WeakScaling {
        sizes,
        rows,
        exponents,
        ligand_screened_s,
        ligand_dense_s,
    }
}

/// The `--guard` weak-scaling checks: the screened per-cycle assembly
/// cost must scale like O(n^x) with `x ≤ QP_BENCH_SCALING_MAX` (default
/// 1.75 — past that the pair list or per-batch subsets have stopped
/// pruning; exit 7), and screened assembly must not lose to dense on the
/// compact ligand-49 beyond `QP_BENCH_SCREEN_SLACK` overhead (default
/// 0.25; exit 8). On the full sweep the quadratic-wall guards also run:
/// tree-mode `rho` exponent ≤ `QP_BENCH_RHO_MAX` (default 1.4; exit 9)
/// and blocks-path `dm` exponent ≤ `QP_BENCH_DM_MAX` (default 1.4; exit
/// 10). Wherever the direct Rho oracle ran, the tree potential must
/// agree within `QP_FARFIELD_TOL` (exit 11) — quick mode included.
fn run_scaling_guard(ws: &WeakScaling, quick: bool) {
    let max_exp = std::env::var("QP_BENCH_SCALING_MAX")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.75);
    let e2e = ws
        .exponents
        .iter()
        .find(|(n, _)| *n == "e2e")
        .map(|&(_, e)| e)
        .unwrap_or(f64::NAN);
    println!("scaling guard: screened e2e exponent {e2e:.2} (max {max_exp:.2})");
    if !e2e.is_finite() || e2e > max_exp {
        eprintln!(
            "bench_perf: weak-scaling regression — the screened assembly sweep fits \
             t = O(n^{e2e:.2}), above the {max_exp:.2} ceiling; cutoff screening has \
             stopped delivering near-linear per-cycle cost"
        );
        std::process::exit(7);
    }
    let slack = std::env::var("QP_BENCH_SCREEN_SLACK")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.25);
    let limit = ws.ligand_dense_s * (1.0 + slack);
    println!(
        "scaling guard: ligand-49 screened {:.3}s vs dense limit {:.3}s",
        ws.ligand_screened_s, limit
    );
    if ws.ligand_screened_s > limit {
        eprintln!(
            "bench_perf: screening overhead regression — screened assembly on the \
             compact ligand-49 took {:.3}s against a {:.3}s dense reference \
             (slack {:.0}%); the screening pass is costing more than it prunes",
            ws.ligand_screened_s,
            ws.ligand_dense_s,
            100.0 * slack,
        );
        std::process::exit(8);
    }

    // Far-field accuracy: everywhere the direct oracle ran, the tree
    // potential must sit inside the hard QP_FARFIELD_TOL budget. Cheap
    // and deterministic, so it runs in quick mode too.
    let tol = farfield_tol();
    let max_dev = ws
        .rows
        .iter()
        .filter_map(|r| r.farfield_dev)
        .fold(0.0_f64, f64::max);
    println!("scaling guard: far-field max deviation {max_dev:.2e} (tol {tol:.1e})");
    if max_dev > tol {
        eprintln!(
            "bench_perf: far-field accuracy regression — the tree-served Rho \
             potential deviates from the direct oracle by {max_dev:.2e}, above \
             the QP_FARFIELD_TOL = {tol:.1e} budget; the multipole translation \
             or the acceptance criterion has lost precision"
        );
        std::process::exit(11);
    }

    if quick {
        println!("scaling guard: rho/dm exponent checks skipped (quick sweep is too small)");
        return;
    }
    let exponent = |name: &str| {
        ws.exponents
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, e)| e)
            .unwrap_or(f64::NAN)
    };
    let rho_max = std::env::var("QP_BENCH_RHO_MAX")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.4);
    let rho = exponent("rho");
    println!("scaling guard: tree-mode rho exponent {rho:.2} (max {rho_max:.2})");
    if !rho.is_finite() || rho > rho_max {
        eprintln!(
            "bench_perf: Rho weak-scaling regression — the tree-mode multipole \
             far field fits t = O(n^{rho:.2}), above the {rho_max:.2} ceiling; \
             the hierarchical cluster tree has stopped delivering near-linear \
             potential evaluation"
        );
        std::process::exit(9);
    }
    let dm_max = std::env::var("QP_BENCH_DM_MAX")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.4);
    let dm = exponent("dm");
    println!("scaling guard: blocks-path dm exponent {dm:.2} (max {dm_max:.2})");
    if !dm.is_finite() || dm > dm_max {
        eprintln!(
            "bench_perf: DM weak-scaling regression — the block-sparse \
             density-matrix build fits t = O(n^{dm:.2}), above the {dm_max:.2} \
             ceiling; the k-segment truncation on the screened pair support \
             has stopped delivering near-linear cost"
        );
        std::process::exit(10);
    }
}

struct GemmNumbers {
    n: usize,
    unblocked_gflops: f64,
    blocked_gflops: f64,
    parallel_gflops: f64,
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn gemm_numbers(n: usize) -> GemmNumbers {
    let a = DMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 97) as f64 / 97.0 - 0.5);
    let b = DMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 17) % 89) as f64 / 89.0 - 0.5);
    let flops = 2.0 * (n as f64).powi(3);
    let reps = 3;
    let unblocked = time_best(reps, || {
        std::hint::black_box(a.matmul_unblocked(&b).unwrap());
    });
    let blocked = time_best(reps, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    });
    let parallel = time_best(reps, || {
        std::hint::black_box(a.par_matmul(&b).unwrap());
    });
    GemmNumbers {
        n,
        unblocked_gflops: flops / unblocked / 1e9,
        blocked_gflops: flops / blocked / 1e9,
        parallel_gflops: flops / parallel / 1e9,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn emit_assembly_leg(s: &mut String, indent: &str, leg: &AssemblyLeg) {
    let _ = writeln!(
        s,
        "{indent}\"build_s\": {}, \"sumup_s\": {}, \"h_s\": {}, \"dm_s\": {}, \"e2e_s\": {}",
        json_f(leg.build_s),
        json_f(leg.sumup_s),
        json_f(leg.h_s),
        json_f(leg.dm_s),
        json_f(leg.e2e_s())
    );
}

fn emit_weak_scaling(s: &mut String, ws: &WeakScaling) {
    let _ = writeln!(s, "  \"weak_scaling\": {{");
    let _ = writeln!(
        s,
        "    \"workload\": \"H(C2H4)_nH, coarse grid (n_radial=8, angular=6), light basis, screening on, farfield tree\","
    );
    let sizes: Vec<String> = ws.sizes.iter().map(|n| n.to_string()).collect();
    let _ = writeln!(s, "    \"monomers\": [{}],", sizes.join(", "));
    let _ = writeln!(
        s,
        "    \"e2e_definition\": \"e2e_s = build + sumup + h + dm per cycle; e2e_full_s additionally includes the tree-mode rho (hierarchical multipole far field); rho_direct_s is the O(n^2) direct-path oracle at small n\","
    );
    let _ = writeln!(s, "    \"rows\": [");
    for (i, r) in ws.rows.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(
            s,
            "        \"monomers\": {}, \"atoms\": {}, \"basis\": {}, \"grid_points\": {},",
            r.monomers, r.atoms, r.basis, r.points
        );
        let _ = writeln!(s, "        \"pair_fill\": {},", json_f(r.pair_fill));
        let _ = writeln!(s, "        \"screened\": {{");
        emit_assembly_leg(s, "          ", &r.screened);
        let _ = writeln!(s, "        }},");
        let _ = writeln!(
            s,
            "        \"dm_path\": \"{}\",",
            if r.screened.dm_blocks {
                "blocks"
            } else {
                "dense"
            }
        );
        let _ = writeln!(s, "        \"rho_tree_s\": {},", json_f(r.rho_tree_s));
        let _ = writeln!(
            s,
            "        \"rho_direct_s\": {},",
            r.rho_direct_s.map(json_f).unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            s,
            "        \"farfield_dev\": {},",
            // Deviations live at ~1e-9: scientific notation, not the
            // fixed 6-decimal seconds format that would floor them to 0.
            r.farfield_dev
                .map(|d| {
                    if d.is_finite() {
                        format!("{d:e}")
                    } else {
                        "null".into()
                    }
                })
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(s, "        \"e2e_full_s\": {},", json_f(r.e2e_full_s()));
        match &r.dense {
            Some(d) => {
                let _ = writeln!(s, "        \"dense\": {{");
                emit_assembly_leg(s, "          ", d);
                let _ = writeln!(s, "        }}");
            }
            None => {
                let _ = writeln!(s, "        \"dense\": null");
            }
        }
        let _ = writeln!(
            s,
            "      }}{}",
            if i + 1 < ws.rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(s, "    \"fitted_exponents\": {{");
    for (i, (name, e)) in ws.exponents.iter().enumerate() {
        let _ = writeln!(
            s,
            "      \"{name}\": {}{}",
            json_f(*e),
            if i + 1 < ws.exponents.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    }},");
    let _ = writeln!(s, "    \"ligand49_assembly\": {{");
    let _ = writeln!(
        s,
        "      \"screened_s\": {}, \"dense_s\": {}, \"ratio\": {}",
        json_f(ws.ligand_screened_s),
        json_f(ws.ligand_dense_s),
        json_f(ws.ligand_screened_s / ws.ligand_dense_s)
    );
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
}

fn emit_json(path: &str, quick: bool, gemm: &GemmNumbers, cases: &[CaseResult], ws: &WeakScaling) {
    let mut s = String::new();
    let threads = cases
        .iter()
        .map(|c| c.parallel_threads)
        .max()
        .unwrap_or_else(parallel_leg_threads);
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"qp-bench-perf/v5\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"pool_threads\": {threads},");
    emit_weak_scaling(&mut s, ws);
    let _ = writeln!(s, "  \"gemm\": {{");
    let _ = writeln!(s, "    \"n\": {},", gemm.n);
    let _ = writeln!(
        s,
        "    \"microkernel\": \"{}\",",
        qp_linalg::gemm::active_microkernel()
    );
    let _ = writeln!(
        s,
        "    \"unblocked_gflops\": {},",
        json_f(gemm.unblocked_gflops)
    );
    let _ = writeln!(
        s,
        "    \"blocked_gflops\": {},",
        json_f(gemm.blocked_gflops)
    );
    let _ = writeln!(
        s,
        "    \"parallel_gflops\": {},",
        json_f(gemm.parallel_gflops)
    );
    let _ = writeln!(
        s,
        "    \"blocked_vs_unblocked\": {},",
        json_f(gemm.blocked_gflops / gemm.unblocked_gflops)
    );
    let _ = writeln!(
        s,
        "    \"parallel_vs_unblocked\": {}",
        json_f(gemm.parallel_gflops / gemm.unblocked_gflops)
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let total_lookups = c.cache_hits + c.cache_misses;
        let hit_rate = if total_lookups > 0 {
            c.cache_hits as f64 / total_lookups as f64
        } else {
            0.0
        };
        let alpha: Vec<String> = c.alpha_diag.iter().map(|&v| json_f(v)).collect();
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(
            s,
            "      \"atoms\": {}, \"basis\": {}, \"grid_points\": {},",
            c.atoms, c.basis, c.points
        );
        let _ = writeln!(
            s,
            "      \"scf_s\": {}, \"scf_iterations\": {},",
            json_f(c.scf_s),
            c.scf_iterations
        );
        let _ = writeln!(
            s,
            "      \"dfpt_s\": {}, \"dfpt_directions\": {},",
            json_f(c.dfpt_s),
            c.dfpt_dirs
        );
        let _ = writeln!(s, "      \"alpha_diag\": [{}],", alpha.join(", "));
        let _ = writeln!(s, "      \"phases_s\": {{");
        let _ = writeln!(s, "        \"sumup\": {},", json_f(c.phases.sumup));
        let _ = writeln!(s, "        \"rho\": {},", json_f(c.phases.rho));
        let _ = writeln!(s, "        \"h\": {},", json_f(c.phases.h));
        let _ = writeln!(
            s,
            "        \"sternheimer\": {},",
            json_f(c.phases.sternheimer)
        );
        let _ = writeln!(s, "        \"other\": {}", json_f(c.phases.other));
        let _ = writeln!(s, "      }},");
        let a = &c.attribution;
        let _ = writeln!(s, "      \"attribution\": {{");
        let _ = writeln!(
            s,
            "        \"serial_fraction\": {},",
            json_f(a.serial_fraction)
        );
        let _ = writeln!(
            s,
            "        \"scheduling_overhead_fraction\": {},",
            json_f(a.scheduling_overhead_fraction)
        );
        let _ = writeln!(
            s,
            "        \"imbalance_fraction\": {},",
            json_f(a.imbalance_fraction)
        );
        let _ = writeln!(
            s,
            "        \"useful_parallel_fraction\": {},",
            json_f(a.useful_parallel_fraction)
        );
        let _ = writeln!(s, "        \"dominant_cause\": \"{}\",", a.dominant_cause);
        let _ = writeln!(
            s,
            "        \"regions\": {}, \"inline_regions\": {}, \"nested_regions\": {},",
            a.regions, a.inline_regions, a.nested_regions
        );
        let _ = writeln!(
            s,
            "        \"setup_s\": {}, \"queue_wait_s\": {}",
            json_f(a.setup_s),
            json_f(a.queue_wait_s)
        );
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"legs\": [");
        let _ = writeln!(
            s,
            "        {{ \"threads\": 1, \"total_s\": {} }},",
            json_f(c.serial_total_s)
        );
        let _ = writeln!(
            s,
            "        {{ \"threads\": {}, \"total_s\": {} }}",
            c.parallel_threads,
            json_f(c.parallel_total_s)
        );
        let _ = writeln!(s, "      ],");
        let _ = writeln!(
            s,
            "      \"serial_total_s\": {}, \"parallel_total_s\": {}, \"e2e_speedup\": {},",
            json_f(c.serial_total_s),
            json_f(c.parallel_total_s),
            json_f(c.serial_total_s / c.parallel_total_s)
        );
        let _ = writeln!(s, "      \"basis_cache\": {{");
        let _ = writeln!(
            s,
            "        \"hits\": {}, \"misses\": {}, \"evictions\": {},",
            c.cache_hits, c.cache_misses, c.cache_evictions
        );
        let _ = writeln!(s, "        \"hit_rate\": {}", json_f(hit_rate));
        let _ = writeln!(s, "      }}");
        let _ = writeln!(s, "    }}{}", if i + 1 < cases.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    std::fs::write(path, &s).expect("write BENCH_perf.json");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let guard = args.iter().any(|a| a == "--guard");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());

    let threads = parallel_leg_threads();
    println!(
        "bench_perf: {} mode, parallel leg on {} pool thread(s)",
        if quick { "quick" } else { "full" },
        threads
    );

    if guard {
        run_phase_guard();
    }

    let gemm = gemm_numbers(if quick { 256 } else { 512 });
    println!(
        "GEMM n={} ({} microkernel): unblocked {:.2} GF/s, blocked {:.2} GF/s ({:.2}x), parallel {:.2} GF/s ({:.2}x)",
        gemm.n,
        qp_linalg::gemm::active_microkernel(),
        gemm.unblocked_gflops,
        gemm.blocked_gflops,
        gemm.blocked_gflops / gemm.unblocked_gflops,
        gemm.parallel_gflops,
        gemm.parallel_gflops / gemm.unblocked_gflops,
    );

    let ws = {
        // The sweep measures the parallel assembly path at the leg's
        // thread count, same as the cases.
        let _lease = qp_par::ThreadLease::exactly(threads);
        run_weak_scaling(quick)
    };
    if guard {
        run_scaling_guard(&ws, quick);
    }

    let results: Vec<CaseResult> = cases(quick).iter().map(run_case).collect();
    if guard {
        run_efficiency_guard(&results);
    }
    for c in &results {
        let lookups = c.cache_hits + c.cache_misses;
        println!(
            "{}: scf {:.2}s/{} iters, dfpt {:.2}s/{} dirs, e2e {:.2}s on {} threads (serial {:.2}s, {:.2}x), cache {:.1}% of {} lookups",
            c.name,
            c.scf_s,
            c.scf_iterations,
            c.dfpt_s,
            c.dfpt_dirs,
            c.parallel_total_s,
            c.parallel_threads,
            c.serial_total_s,
            c.serial_total_s / c.parallel_total_s,
            if lookups > 0 {
                100.0 * c.cache_hits as f64 / lookups as f64
            } else {
                0.0
            },
            lookups,
        );
    }
    emit_json(&out, quick, &gemm, &results, &ws);
}
