//! `bench_serve` — serving-layer benchmark: replay synthetic mixed
//! ligand/polyethylene multi-tenant traffic against an in-process
//! `qp-serve` instance and emit `BENCH_serve.json`.
//!
//! Reported numbers:
//!
//! * **anchor cold vs cache-hit latency** — one cold run of the anchor
//!   molecule (ligand-49 in full mode, water in `--quick`), then the same
//!   request again as a cache hit. The hit must be at least
//!   [`FULL_MIN_SPEEDUP`]× faster cold (quick mode: [`QUICK_MIN_SPEEDUP`]×)
//!   or the bench exits 2 — the content-addressed cache is a headline
//!   feature, not best-effort.
//! * **large-job cold vs hit** — the polymer-bulk tenant's chain sweeps
//!   (n = 32/64 monomers in full mode, 4/8 in `--quick`) submitted cold
//!   and again as cache hits, so the latency profile of the screened
//!   large-polymer scenario is on record next to the small-molecule
//!   anchor.
//! * **mixed traffic** — N requests drawn from a deterministic LCG over
//!   (tenant × molecule) templates with repeats, replayed from several
//!   concurrent client connections: req/s, p50/p99 latency, cache hit rate.
//!   The large templates are pre-warmed by the previous phase, so the mix
//!   exercises their cache-hit path under concurrency.
//!
//! Usage: `bench_serve [--quick] [--out BENCH_serve.json]`

use qp_serve::json::{parse, Json};
use qp_serve::{Client, ServerConfig};
use std::time::{Duration, Instant};

const FULL_MIN_SPEEDUP: f64 = 100.0;
const QUICK_MIN_SPEEDUP: f64 = 20.0;
/// Concurrent client connections replaying the mixed phase.
const CLIENTS: usize = 4;

struct Template {
    tenant: &'static str,
    request: String,
    /// Large-polymer jobs get their own cold-vs-hit phase before the mix.
    large: bool,
}

/// The bench-grade solver settings the statistics workloads converge with
/// (`workloads::bench_scf_options`): trimmed coarse grid, damped mixing,
/// smearing, Pulay(6).
fn bench_grade(tenant: &str, builtin: &str) -> String {
    format!(
        concat!(
            r#"{{"tenant":"{}","molecule":{{"builtin":"{}"}},"#,
            r#""grid":{{"preset":"coarse","n_radial":8,"max_angular":6,"min_angular":6}},"#,
            r#""scf":{{"max_iter":80,"tol":1e-6,"mixing":0.1,"smearing":0.02,"pulay":6}},"#,
            r#""dfpt":{{"max_iter":80,"tol":1e-5,"mixing":0.15}}}}"#
        ),
        tenant, builtin
    )
}

/// The synthetic tenant mix: a ligand-screening tenant hammering one
/// structure (cache-friendly), a polymer tenant sweeping chain lengths,
/// a polymer-bulk tenant running the screened large-chain scenario, and a
/// QA tenant poking small molecules. Template 0 is the anchor.
fn templates(quick: bool) -> Vec<Template> {
    let t = |tenant: &'static str, request: String| Template {
        tenant,
        request,
        large: false,
    };
    let big = |tenant: &'static str, request: String| Template {
        tenant,
        request,
        large: true,
    };
    if quick {
        vec![
            t(
                "ligand-team",
                r#"{"tenant":"ligand-team","molecule":{"builtin":"water"}}"#.to_string(),
            ),
            t("polymer-team", bench_grade("polymer-team", "polymer:1")),
            t("polymer-team", bench_grade("polymer-team", "polymer:2")),
            t(
                "qa",
                r#"{"tenant":"qa","molecule":{"builtin":"water"},"scf":{"tol":1e-7}}"#.to_string(),
            ),
            big("polymer-bulk", bench_grade("polymer-bulk", "polymer:4")),
            big("polymer-bulk", bench_grade("polymer-bulk", "polymer:8")),
        ]
    } else {
        vec![
            t("ligand-team", bench_grade("ligand-team", "ligand")),
            t("polymer-team", bench_grade("polymer-team", "polymer:2")),
            t("polymer-team", bench_grade("polymer-team", "polymer:4")),
            t(
                "qa",
                r#"{"tenant":"qa","molecule":{"builtin":"water"}}"#.to_string(),
            ),
            t(
                "qa",
                r#"{"tenant":"qa","molecule":{"builtin":"water"},"scf":{"tol":1e-7}}"#.to_string(),
            ),
            big("polymer-bulk", bench_grade("polymer-bulk", "polymer:32")),
            big("polymer-bulk", bench_grade("polymer-bulk", "polymer:64")),
        ]
    }
}

/// Deterministic request schedule: an LCG (no RNG dependency, repeatable
/// across runs) picks templates with heavy repetition so the mixed phase
/// exercises both cold misses and cache hits.
fn schedule(n: usize, templates: usize) -> Vec<usize> {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % templates
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let min_speedup = if quick {
        QUICK_MIN_SPEEDUP
    } else {
        FULL_MIN_SPEEDUP
    };
    let anchor = if quick { "water" } else { "ligand" };
    let n_requests = if quick { 32 } else { 64 };

    println!(
        "bench_serve: {} mode, anchor '{}', {} mixed requests over {} connections",
        if quick { "quick" } else { "full" },
        anchor,
        n_requests,
        CLIENTS
    );

    let handle = qp_serve::server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir: None,
        workers: 2,
        slice: Duration::from_millis(250),
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    // --- Anchor: cold vs cache-hit -------------------------------------
    let tpl = templates(quick);
    let anchor_req = tpl[0].request.clone();
    let mut client = Client::connect(&addr).expect("connect");
    let t0 = Instant::now();
    let cold = client
        .submit(parse(&anchor_req).unwrap(), true, false, |_| {})
        .expect("cold anchor");
    let cold_s = t0.elapsed().as_secs_f64();
    assert!(!cold.cached, "first anchor submit must be a miss");
    let t0 = Instant::now();
    let warm = client
        .submit(parse(&anchor_req).unwrap(), true, false, |_| {})
        .expect("warm anchor");
    let warm_s = t0.elapsed().as_secs_f64();
    assert!(warm.cached, "second anchor submit must hit the cache");
    let speedup = cold_s / warm_s.max(1e-9);
    println!(
        "anchor {anchor}: cold {:.3}s, cache hit {:.6}s ({speedup:.0}x)",
        cold_s, warm_s
    );
    // Bit-identity between the two paths is free to assert here.
    let cold_bytes = cold.result.expect("result").to_json().to_string();
    let warm_bytes = warm.result.expect("result").to_json().to_string();
    assert_eq!(cold_bytes, warm_bytes, "cache served different bits");

    // --- Large polymer jobs: cold vs cache hit -------------------------
    // The screened large-chain scenario the polymer-bulk tenant runs;
    // submitting them here also pre-warms the cache for the mixed phase.
    struct LargeJob {
        molecule: String,
        cold_s: f64,
        hit_s: f64,
    }
    let mut large_jobs: Vec<LargeJob> = Vec::new();
    for t in tpl.iter().filter(|t| t.large) {
        let req = parse(&t.request).unwrap();
        let molecule = req
            .get("molecule")
            .and_then(|m| m.get("builtin"))
            .and_then(|b| b.as_str())
            .unwrap_or("?")
            .to_string();
        println!("large job {molecule}: cold solve ...");
        let t0 = Instant::now();
        let cold = client
            .submit(parse(&t.request).unwrap(), true, false, |_| {})
            .expect("large cold");
        let cold_s = t0.elapsed().as_secs_f64();
        assert!(!cold.cached, "first {molecule} submit must be a miss");
        let t0 = Instant::now();
        let warm = client
            .submit(parse(&t.request).unwrap(), true, false, |_| {})
            .expect("large warm");
        let hit_s = t0.elapsed().as_secs_f64();
        assert!(warm.cached, "second {molecule} submit must hit the cache");
        let cold_bytes = cold.result.expect("result").to_json().to_string();
        let warm_bytes = warm.result.expect("result").to_json().to_string();
        assert_eq!(
            cold_bytes, warm_bytes,
            "large-job cache served different bits"
        );
        println!(
            "large job {molecule}: cold {cold_s:.2}s, cache hit {hit_s:.4}s ({:.0}x)",
            cold_s / hit_s.max(1e-9)
        );
        large_jobs.push(LargeJob {
            molecule,
            cold_s,
            hit_s,
        });
    }

    // --- Mixed multi-tenant traffic ------------------------------------
    let order = schedule(n_requests, tpl.len());
    let chunks: Vec<Vec<usize>> = (0..CLIENTS)
        .map(|c| {
            order
                .iter()
                .enumerate()
                .filter(|(i, _)| i % CLIENTS == c)
                .map(|(_, &t)| t)
                .collect()
        })
        .collect();
    let wall = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let addr = addr.clone();
                let tpl = &tpl;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let mut lat = Vec::with_capacity(chunk.len());
                    for &t in chunk {
                        let req = parse(&tpl[t].request).unwrap();
                        let t0 = Instant::now();
                        client.submit(req, true, false, |_| {}).expect("submit");
                        lat.push(t0.elapsed().as_secs_f64());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let req_per_s = n_requests as f64 / wall_s;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    let stats = client.stats().expect("stats");
    let get_num = |path: &[&str]| -> f64 {
        let mut v: &Json = &stats;
        for k in path {
            v = v.get(k).unwrap_or(&Json::Null);
        }
        v.as_f64().unwrap_or(0.0)
    };
    let hits = get_num(&["cache", "hits"]);
    let misses = get_num(&["cache", "misses"]);
    let hit_rate = hits / (hits + misses).max(1.0);
    let tenants: Vec<String> = {
        let mut t: Vec<&str> = tpl.iter().map(|t| t.tenant).collect();
        t.sort();
        t.dedup();
        t.iter().map(|s| s.to_string()).collect()
    };
    let usage_lines: Vec<String> = tenants
        .iter()
        .map(|t| format!("    \"{t}\": {}", json_f(get_num(&["usage", t.as_str()]))))
        .collect();
    println!(
        "mixed: {n_requests} requests in {wall_s:.2}s = {req_per_s:.1} req/s, p50 {p50:.3}s, p99 {p99:.3}s, cache hit rate {:.1}%",
        hit_rate * 100.0
    );

    client.shutdown().expect("shutdown");
    handle.join();

    let mut s = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"serve\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(s, "  \"anchor\": {{");
    let _ = writeln!(s, "    \"molecule\": \"{anchor}\",");
    let _ = writeln!(s, "    \"cold_s\": {},", json_f(cold_s));
    let _ = writeln!(s, "    \"cache_hit_s\": {},", json_f(warm_s));
    let _ = writeln!(s, "    \"speedup\": {},", json_f(speedup));
    let _ = writeln!(s, "    \"min_speedup\": {},", json_f(min_speedup));
    let _ = writeln!(s, "    \"bit_identical\": true");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"large_jobs\": [");
    for (i, j) in large_jobs.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"molecule\": \"{}\", \"cold_s\": {}, \"cache_hit_s\": {}, \"speedup\": {} }}{}",
            j.molecule,
            json_f(j.cold_s),
            json_f(j.hit_s),
            json_f(j.cold_s / j.hit_s.max(1e-9)),
            if i + 1 < large_jobs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"mixed\": {{");
    let _ = writeln!(s, "    \"requests\": {n_requests},");
    let _ = writeln!(s, "    \"connections\": {CLIENTS},");
    let _ = writeln!(s, "    \"wall_s\": {},", json_f(wall_s));
    let _ = writeln!(s, "    \"req_per_s\": {},", json_f(req_per_s));
    let _ = writeln!(s, "    \"latency_p50_s\": {},", json_f(p50));
    let _ = writeln!(s, "    \"latency_p99_s\": {},", json_f(p99));
    let _ = writeln!(s, "    \"cache_hits\": {},", hits as u64);
    let _ = writeln!(s, "    \"cache_misses\": {},", misses as u64);
    let _ = writeln!(s, "    \"cache_hit_rate\": {}", json_f(hit_rate));
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"usage_cpu_s\": {{");
    let _ = writeln!(s, "{}", usage_lines.join(",\n"));
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    std::fs::write(&out, &s).expect("write BENCH_serve.json");
    println!("wrote {out}");

    if speedup < min_speedup {
        eprintln!(
            "bench_serve: cache-hit speedup {speedup:.1}x is below the {min_speedup:.0}x floor — \
             the content-addressed cache path has regressed (serialization, lookup, or the \
             request canonicalization is no longer O(1) relative to a cold solve)"
        );
        std::process::exit(2);
    }
}
