//! Fig. 12: fusing the widely-dependent response-potential kernels (§4.2).
//!
//! (a) The two inter-kernel spline tables: `rho_multipole_spl` (~28 KB)
//!     fits the SW39010 RMA window (64 KB) so vertical fusion is legal;
//!     `delta_v_hart_part_spl` (~498 KB) exceeds it, so vertical fusion is
//!     refused — the *real* `qp-cl` legality check makes that decision here.
//! (b) Horizontal fusion on HPC#2: the 8 MPI processes sharing a GPU
//!     deduplicate the identical producer and keep the tables resident in
//!     device memory; speedups up to 2.4× (paper), growing with system
//!     size and rank count.

use qp_bench::phase_model::{calibration, PRODUCTION_RESOLUTION_FACTOR};
use qp_bench::table;
use qp_bench::workloads::{delta_v_hart_spl_bytes, rho_multipole_row_bytes};
use qp_cl::device::sw39010;
use qp_cl::fusion::{vertical, FusionDecision};
use qp_cl::CommandQueue;
use qp_machine::hpc2;
use qp_machine::kernel_cost::{kernel_time, KernelWork};

fn part_a() {
    println!("Fig 12(a): inter-kernel shared data vs the 64 KB RMA window (HPC#1)\n");
    let rho = rho_multipole_row_bytes();
    let vhart = delta_v_hart_spl_bytes();
    let widths = [26, 12, 16, 26];
    table::header(
        &["table", "bytes", "fits RMA 64KB?", "vertical fusion"],
        &widths,
    );
    for (name, bytes) in [("rho_multipole_spl", rho), ("delta_v_hart_part_spl", vhart)] {
        // Drive the real fusion machinery with a producer of that size.
        let q = CommandQueue::new(sw39010());
        let words = bytes / 8;
        let out = vertical(
            &q,
            name,
            4,
            true,
            move |ctx| {
                ctx.counters.flop(words as u64);
                vec![0.0; words]
            },
            |_, _| {},
        );
        let decision = match out.decision {
            FusionDecision::Fused => "FUSED (1 launch, on-chip)".to_string(),
            FusionDecision::ExceedsOnChipVolume { required, limit } => {
                format!(
                    "refused ({} > {})",
                    table::fmt_bytes(required),
                    table::fmt_bytes(limit)
                )
            }
            FusionDecision::Disabled => "disabled".to_string(),
        };
        table::row(
            &[
                name.to_string(),
                table::fmt_bytes(bytes),
                (bytes <= 64 * 1024).to_string(),
                decision,
            ],
            &widths,
        );
    }
    println!("\npaper: 28 KB fits, 498 KB exceeds RMA -> no vertical-fusion speedup on HPC#1\n");
}

/// Response-potential phase time on HPC#2 with/without horizontal fusion.
fn v1_time(atoms: usize, ranks: usize, fused: bool) -> f64 {
    let cal = calibration();
    let m = hpc2();
    let n = atoms as f64;
    let p = ranks as f64;
    // Producer: spline tables for the rank's atoms + halo. Without
    // horizontal fusion all 8 processes sharing the GPU run it and
    // round-trip the tables through the host.
    let halo = 120.0; // atoms within multipole range of a rank's batches
    let local_atoms = n / p + halo;
    let producer_words =
        local_atoms * (rho_multipole_row_bytes() + delta_v_hart_spl_bytes()) as f64 / 8.0;
    let shared = 8.0; // procs per GPU on HPC#2
    let (prod_mult, host_words) = if fused {
        (1.0, 0.0)
    } else {
        (shared, 2.0 * producer_words)
    };
    // Consumer: interpolation over the rank's grid points.
    let consumer_flops = cal.rho_flops * n / p;
    let w = KernelWork {
        launches: if fused { 2 } else { 2 * shared as u64 },
        offchip_words: (producer_words * prod_mult + consumer_flops / 4.0) as u64,
        onchip_words: 0,
        flops: (producer_words * prod_mult * 2.0 + consumer_flops) as u64,
        occupancy: cal.occ_collapsed,
        host_words: host_words as u64,
    };
    let _ = PRODUCTION_RESOLUTION_FACTOR;
    kernel_time(&m, &w)
}

fn part_b() {
    println!("Fig 12(b): horizontal-fusion speedup of v1_es,tot on HPC#2\n");
    let widths = [10, 8, 12];
    table::header(&["atoms", "procs", "speedup"], &widths);
    let cases: &[(usize, &[usize])] = &[
        (30_002, &[256, 512, 1024, 2048, 4096]),
        (60_002, &[1024, 2048, 4096, 8192]),
        (117_602, &[4096, 8192, 16384]),
    ];
    for &(atoms, procs) in cases {
        for &p in procs {
            let s = v1_time(atoms, p, false) / v1_time(atoms, p, true);
            table::row(
                &[atoms.to_string(), p.to_string(), format!("{s:.1}x")],
                &widths,
            );
        }
    }
    println!("\npaper: 1.1x -> 2.4x, growing with procs and system size");
}

fn main() {
    qp_bench::trace_hook::init();
    let part = std::env::args().nth(1).unwrap_or_default();
    match part.as_str() {
        "a" => part_a(),
        "b" => part_b(),
        _ => {
            part_a();
            part_b();
        }
    }
    qp_bench::trace_hook::finish();
}
