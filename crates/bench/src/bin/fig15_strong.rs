//! Fig. 15: strong scaling.
//!
//! (a) Speedups for the 60 002-atom H(C₂H₄)₁₀₀₀₀H system:
//!     HPC#1 5 000→40 000 procs (paper: 1.85×/2.81×/4.88× vs 5 000,
//!     92.6 % efficiency at 10 000); HPC#2 CPU-only 1 024→8 192
//!     (1.86×/3.10×/6.08×) and GPU-accelerated (slightly less, DM-phase
//!     communication share growing 22.5 % → 39.1 %).
//! (b) Time to solution per DFPT cycle per phase on HPC#2 (GPU) for all
//!     five polymer systems — 200 002 atoms within one minute per cycle.

use qp_bench::phase_model::{calibration, cycle_time};
use qp_bench::table;
use qp_machine::machine::{hpc1, hpc2, hpc2_cpu_only, MachineModel};

fn scaling_series(name: &str, m: &MachineModel, atoms: usize, procs: &[usize]) {
    let cal = calibration();
    println!("-- {name}: {atoms} atoms --");
    let widths = [8, 12, 10, 12, 12];
    table::header(
        &["procs", "t/cycle", "speedup", "ideal", "efficiency"],
        &widths,
    );
    let t0 = cycle_time(cal, m, atoms, procs[0], true).total();
    for &p in procs {
        let t = cycle_time(cal, m, atoms, p, true).total();
        let speedup = t0 / t;
        let ideal = p as f64 / procs[0] as f64;
        table::row(
            &[
                p.to_string(),
                table::fmt_secs(t),
                format!("{speedup:.2}x"),
                format!("{ideal:.0}x"),
                format!("{:.1}%", speedup / ideal * 100.0),
            ],
            &widths,
        );
    }
    println!();
}

fn dm_comm_share(m: &MachineModel, atoms: usize, procs: &[usize]) {
    let cal = calibration();
    println!("-- DM-phase (+comm) share on {} --", m.name);
    for &p in procs {
        let t = cycle_time(cal, m, atoms, p, true);
        let share = (t.dm + t.comm) / t.total() * 100.0;
        println!("  {p:>6} procs: {share:.1}% (paper: 22.5/28.6/38.9/39.1%)");
    }
    println!();
}

fn tts() {
    let cal = calibration();
    let m = hpc2();
    println!("Fig 15(b): time to solution per DFPT cycle on HPC#2 (GPU)\n");
    let widths = [10, 8, 10, 10, 10, 10, 10, 12];
    table::header(
        &[
            "atoms", "procs", "DM", "Sumup", "Rho", "H1", "Comm", "total",
        ],
        &widths,
    );
    for &(atoms, procs) in &[
        (15_002usize, 1_024usize),
        (30_002, 2_048),
        (60_002, 4_096),
        (117_602, 8_192),
        (200_002, 16_384),
    ] {
        let t = cycle_time(cal, &m, atoms, procs, true);
        table::row(
            &[
                atoms.to_string(),
                procs.to_string(),
                table::fmt_secs(t.dm),
                table::fmt_secs(t.sumup),
                table::fmt_secs(t.rho),
                table::fmt_secs(t.h),
                table::fmt_secs(t.comm),
                table::fmt_secs(t.total()),
            ],
            &widths,
        );
    }
    println!("\npaper: 200 002 atoms complete one DFPT cycle within 1 minute");
}

fn main() {
    qp_bench::trace_hook::init();
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg == "--tts" {
        tts();
        return;
    }
    println!("Fig 15(a): strong scaling, 60 002 atoms\n");
    scaling_series("HPC#1", &hpc1(), 60_002, &[5_000, 10_000, 20_000, 40_000]);
    scaling_series(
        "HPC#2 (CPU only)",
        &hpc2_cpu_only(),
        60_002,
        &[1_024, 2_048, 4_096, 8_192],
    );
    scaling_series(
        "HPC#2 (with GPUs)",
        &hpc2(),
        60_002,
        &[1_024, 2_048, 4_096, 8_192],
    );
    dm_comm_share(&hpc2(), 60_002, &[1_024, 2_048, 4_096, 8_192]);
    println!("paper: HPC#1 1.85/2.81/4.88x (92.6% at 10k), HPC#2-CPU 1.86/3.10/6.08x,");
    println!("       HPC#2-GPU slightly lower from DM communication share");
    println!();
    tts();
    qp_bench::trace_hook::finish();
}
