//! Fig. 16: weak scaling, 30 002 → 200 012 atoms with fixed atoms/rank.
//!
//! Paper: parallel efficiencies 76.7 % (HPC#1), 75.3 % (HPC#2 CPU-only),
//! 74.1 % (HPC#2 GPU) at 200 012 atoms; efficiency falls because the
//! response-potential work grows O(N^1.7) while the rest stays O(N^1.2)/O(N).

use qp_bench::phase_model::{calibration, cycle_time};
use qp_bench::table;
use qp_machine::machine::{hpc1, hpc2, hpc2_cpu_only, MachineModel};

fn series(name: &str, m: &MachineModel, points: &[(usize, usize)]) {
    let cal = calibration();
    println!("-- {name} --");
    let widths = [10, 8, 12, 12, 12];
    table::header(
        &["atoms", "procs", "t/cycle", "efficiency", "rho share"],
        &widths,
    );
    let t0 = cycle_time(cal, m, points[0].0, points[0].1, true).total();
    for &(atoms, procs) in points {
        let t = cycle_time(cal, m, atoms, procs, true);
        let eff = t0 / t.total() * 100.0;
        table::row(
            &[
                atoms.to_string(),
                procs.to_string(),
                table::fmt_secs(t.total()),
                format!("{eff:.1}%"),
                format!("{:.1}%", t.rho / t.total() * 100.0),
            ],
            &widths,
        );
    }
    println!();
}

fn main() {
    qp_bench::trace_hook::init();
    println!("Fig 16: weak scaling H(C2H4)nH, fixed atoms/rank\n");
    series(
        "HPC#1",
        &hpc1(),
        &[
            (30_002, 2_500),
            (60_002, 5_000),
            (117_602, 10_000),
            (200_012, 20_480),
        ],
    );
    series(
        "HPC#2 (CPU only)",
        &hpc2_cpu_only(),
        &[
            (30_002, 2_048),
            (60_002, 4_096),
            (117_602, 8_192),
            (200_012, 16_384),
        ],
    );
    series(
        "HPC#2 (with GPUs)",
        &hpc2(),
        &[
            (30_002, 2_048),
            (60_002, 4_096),
            (117_602, 8_192),
            (200_012, 16_384),
        ],
    );
    println!("paper: 76.7% / 75.3% / 74.1% efficiency at 200 012 atoms;");
    println!("       response-potential share grows with N (O(N^1.2) -> O(N^1.7))");
    qp_bench::trace_hook::finish();
}
