//! `profile_report`: the parallel-efficiency attribution report.
//!
//! Runs SCF + DFPT for one bench case twice — a 1-thread serial reference
//! and an instrumented parallel leg — and explains where the parallel wall
//! clock went: useful parallel work, scheduling overhead, load imbalance,
//! and serial remainder (the four fractions sum to 1), plus per-phase span
//! self-times with achieved GFLOP/s and arithmetic intensity.
//!
//! ```text
//! cargo run --release -p qp-bench --bin profile_report -- \
//!     [--case water|ligand49|polyethylene-n4] [--dirs N] [--out BASE]
//! cargo run --release -p qp-bench --bin profile_report -- --validate FILE
//! ```
//!
//! `--out BASE` writes `BASE.json` (the `qp-profile/v1` document) and
//! `BASE.folded` (flamegraph-compatible collapsed stacks). `--validate`
//! checks an existing report instead of running anything: well-formed JSON,
//! all four fractions in `[0, 1]`, summing to 1 ± 0.02 — the CI smoke leg.

use qp_bench::workloads;
use qp_core::profile::{profile_case, validate_profile_json, ProfileOptions};
use qp_core::system::System;

fn usage() -> ! {
    eprintln!(
        "usage: profile_report [--case water|ligand49|polyethylene-n4] \
         [--dirs N] [--threads N] [--out BASE]\n       profile_report --validate FILE"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()))
    };

    if let Some(path) = value("--validate") {
        let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("profile_report: {path}: {e}");
            std::process::exit(2)
        });
        match validate_profile_json(&body) {
            Ok(()) => {
                println!("{path}: valid qp-profile/v1 report");
                return;
            }
            Err(e) => {
                eprintln!("profile_report: {path}: {e}");
                std::process::exit(1)
            }
        }
    }

    let case = value("--case").unwrap_or_else(|| "ligand49".to_string());
    let build: Box<dyn Fn() -> System> = match case.as_str() {
        "water" => Box::new(workloads::bench_water_system),
        "ligand49" => Box::new(workloads::bench_ligand_system),
        "polyethylene-n4" => Box::new(|| workloads::bench_polymer_system(26)),
        other => {
            eprintln!("profile_report: unknown case '{other}'");
            usage()
        }
    };

    let n_dirs = value("--dirs")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if case == "water" { 1 } else { 3 })
        .clamp(1, 3);
    let mut opts = ProfileOptions {
        dirs: (0..n_dirs).collect(),
        scf: if case == "water" {
            qp_core::ScfOptions::default()
        } else {
            workloads::bench_scf_options()
        },
        dfpt: workloads::bench_dfpt_options(),
        ..ProfileOptions::new()
    };
    if let Some(t) = value("--threads").and_then(|s| s.parse::<usize>().ok()) {
        opts.threads = t.max(2);
    }

    println!(
        "profile_report: case {case}, {} direction(s), serial + {}-thread legs",
        n_dirs, opts.threads
    );
    let report = profile_case(&case, build.as_ref(), &opts);
    print!("{}", report.render_text());

    if let Some(base) = value("--out") {
        let json_path = format!("{base}.json");
        let folded_path = format!("{base}.folded");
        std::fs::write(&json_path, report.to_json()).expect("write profile JSON");
        std::fs::write(&folded_path, &report.folded).expect("write collapsed stacks");
        println!("wrote {json_path} and {folded_path}");
    }
}
