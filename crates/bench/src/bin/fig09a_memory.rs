//! Fig. 9(a): per-process memory for the Hamiltonian matrix of the RBD
//! system (paper: 9 210 basis functions), existing load-balancing vs the
//! proposed locality-enhancing mapping, at 64–512 MPI processes.
//!
//! Paper result: 21 373 KB flat for the existing strategy (global sparse
//! CSR) vs 58–455 KB average (small dense blocks) — two orders of magnitude.

use qp_bench::table;
use qp_bench::workloads;
use qp_chem::basis::BasisSettings;
use qp_grid::footprint::{analyze, per_atom_basis, per_atom_cutoff};
use qp_grid::mapping::{LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};

fn main() {
    qp_bench::trace_hook::init();
    let w = workloads::rbd();
    let nb = workloads::total_basis(&w.structure, BasisSettings::Light);
    println!("Fig 9(a): Hamiltonian memory per process — {}", w.name);
    println!("basis functions: {nb} (paper: 9210)\n");

    // The coarse (not stats) grid: ~120 points/atom so that 512 ranks get
    // several batches each, as in the paper's production runs.
    let grid = qp_chem::grids::IntegrationGrid::build(
        &w.structure,
        &qp_chem::grids::GridSettings::coarse(),
    );
    let batches = qp_grid::batch::batches_from_grid(&grid, 100);
    let basis = per_atom_basis(&w.structure, BasisSettings::Light);
    let cutoffs = per_atom_cutoff(&w.structure);

    let widths = [8, 18, 18, 18, 10];
    table::header(
        &[
            "procs",
            "existing (CSR)",
            "proposed mean",
            "proposed max",
            "ratio",
        ],
        &widths,
    );
    for n_procs in [64usize, 128, 256, 512] {
        let base = LoadBalancingMapping.assign(&batches, n_procs);
        let prop = LocalityEnhancingMapping.assign(&batches, n_procs);
        // Existing: every rank must keep the global sparse Hamiltonian.
        let rb = analyze(
            &w.structure,
            &batches,
            &base,
            n_procs,
            &basis,
            &cutoffs,
            8.0,
        );
        let rp = analyze(
            &w.structure,
            &batches,
            &prop,
            n_procs,
            &basis,
            &cutoffs,
            8.0,
        );
        let ratio = rb.global_csr_bytes as f64 / rp.mean_dense_bytes().max(1.0);
        table::row(
            &[
                n_procs.to_string(),
                table::fmt_bytes(rb.global_csr_bytes),
                table::fmt_bytes(rp.mean_dense_bytes() as usize),
                table::fmt_bytes(rp.max_dense_bytes()),
                format!("{ratio:.0}x"),
            ],
            &widths,
        );
    }
    println!("\npaper: existing 21373 KB (flat), proposed 58-455 KB mean -> ~2 orders of magnitude saved");
    qp_bench::trace_hook::finish();
}
