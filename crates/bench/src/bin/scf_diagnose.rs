//! Diagnostic: overlap-matrix conditioning and SCF residual trajectory for
//! a chosen workload. Useful when a new system refuses to converge.
//!
//! ```text
//! cargo run --release -p qp-bench --bin scf_diagnose [water|ligand|polymer]
//! ```

use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_core::operators;
use qp_core::system::System;
use qp_linalg::symmetric_eigen;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ligand".into());
    let structure = match which.as_str() {
        "water" => qp_chem::structures::water(),
        "polymer" => qp_chem::structures::polyethylene(8),
        _ => qp_chem::structures::ligand49(),
    };
    let mut gs = GridSettings::light();
    gs.n_radial = 20;
    gs.max_angular = 14;
    let system = System::build(structure, BasisSettings::Light, &gs, 150, 2);
    println!(
        "{} atoms, {} basis, {} points",
        system.structure.len(),
        system.n_basis(),
        system.n_points()
    );

    let s = operators::overlap(&system);
    let dec = symmetric_eigen(&s).expect("S spectrum");
    let min = dec.eigenvalues.first().unwrap();
    let max = dec.eigenvalues.last().unwrap();
    println!(
        "overlap spectrum: min {min:.3e}, max {max:.3e}, condition {:.3e}",
        max / min
    );
    let near_singular = dec.eigenvalues.iter().filter(|&&e| e < 1e-4).count();
    println!("eigenvalues < 1e-4: {near_singular}");

    // Watch the SCF residual for a few different mixings.
    for (mixing, smearing) in [(0.3, None), (0.1, Some(0.02)), (0.05, Some(0.05))] {
        let opts = qp_core::ScfOptions {
            max_iter: 60,
            tol: 1e-7,
            mixing,
            field: None,
            smearing,
            pulay: Some(6),
        };
        match qp_core::scf(&system, &opts) {
            Ok(r) => println!(
                "mixing {mixing}, smearing {smearing:?}: converged in {} iters, E = {:.4}",
                r.iterations, r.energy
            ),
            Err(e) => println!("mixing {mixing}, smearing {smearing:?}: {e}"),
        }
    }
}
