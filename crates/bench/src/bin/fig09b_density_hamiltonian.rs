//! Fig. 9(b): performance improvement of the response-density (`n¹`) and
//! response-Hamiltonian (`H¹`) phases from dense-local vs sparse-global
//! matrix access, HIV-1 ligand at two basis settings, both machines.
//!
//! Paper: n¹ +7.5 % … +19.9 %, H¹ +7.6 % … +26.4 %; larger basis → larger
//! improvement; both machines benefit.
//!
//! Here the two phases run **for real** through the instrumented kernels
//! (identical numerics, different access counting — asserted equal in the
//! qp-core tests) and the counters are charged to each machine model.

use qp_bench::table;
use qp_bench::workloads;
use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_core::kernels::{h_phase, sumup_phase, MatrixAccess};
use qp_core::system::System;
use qp_linalg::DMatrix;
use qp_machine::kernel_cost::{kernel_time, KernelWork};
use qp_machine::{hpc1, hpc2, MachineModel};

fn work_of(r: &qp_cl::LaunchReport) -> KernelWork {
    KernelWork {
        launches: r.launches,
        offchip_words: r.offchip_words(),
        onchip_words: r.onchip_words,
        flops: r.flops,
        occupancy: r.occupancy(),
        host_words: 0,
    }
}

fn improvement(m: &MachineModel, sparse: &qp_cl::LaunchReport, dense: &qp_cl::LaunchReport) -> f64 {
    (kernel_time(m, &work_of(sparse)) / kernel_time(m, &work_of(dense)) - 1.0) * 100.0
}

fn main() {
    qp_bench::trace_hook::init();
    println!("Fig 9(b): n1 / H1 speedup from small-dense vs large-sparse access\n");
    let widths = [22, 10, 12, 12];
    table::header(&["case", "machine", "n1 improv.", "H1 improv."], &widths);

    for settings in [BasisSettings::Light, BasisSettings::Tier2] {
        let w = workloads::ligand();
        let mut gs = GridSettings::light();
        gs.n_radial = 24;
        gs.max_angular = 26;
        let sys = System::build(w.structure, settings, &gs, 150, 3);
        let nb = sys.n_basis();

        let queue = qp_cl::CommandQueue::new(qp_cl::device::gcn_gpu());
        let mut p = DMatrix::from_fn(nb, nb, |i, j| 0.05 * ((i + 2 * j) as f64 * 0.13).sin());
        p.symmetrize();
        let (n1_dense_vals, n1_dense) = sumup_phase(&queue, &sys, &p, MatrixAccess::DenseLocal);
        let (n1_sparse_vals, n1_sparse) = sumup_phase(&queue, &sys, &p, MatrixAccess::SparseGlobal);
        // Physics identical between the two paths:
        let max_dev = n1_dense_vals
            .iter()
            .zip(n1_sparse_vals.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-12, "access mode changed the physics!");

        let v1: Vec<f64> = (0..sys.n_points())
            .map(|i| (i as f64 * 0.001).sin())
            .collect();
        let (_, h_dense) = h_phase(&queue, &sys, &v1, MatrixAccess::DenseLocal);
        let (_, h_sparse) = h_phase(&queue, &sys, &v1, MatrixAccess::SparseGlobal);

        for m in [hpc1(), hpc2()] {
            table::row(
                &[
                    format!("{nb} basis ({settings:?})"),
                    if m.name.contains('1') {
                        "HPC#1"
                    } else {
                        "HPC#2"
                    }
                    .to_string(),
                    format!("+{:.1}%", improvement(&m, &n1_sparse, &n1_dense)),
                    format!("+{:.1}%", improvement(&m, &h_sparse, &h_dense)),
                ],
                &widths,
            );
        }
    }
    println!("\npaper: 1359 basis  n1 +7.5/+8.9%  H1 +7.6/+17.9%   (HPC#1/HPC#2)");
    println!("       2143 basis  n1 +17.6/+10.4%  H1 +19.9/+26.4%");
    println!("note: our counters charge every CSR probe as an off-chip access (no cache");
    println!("model), so these are upper bounds; hardware caches of row pointers explain");
    println!("the paper's smaller percentages. Direction and ordering (H1 > n1 on the");
    println!("larger basis, both machines benefit) are the reproduced claims.");
    qp_bench::trace_hook::finish();
}
