//! Ablation: recovery overhead vs checkpoint interval (qp-resil).
//!
//! A polyethylene-chain DFPT direction runs under the supervised driver
//! with one seeded rank crash (`crash:rank=1,iter=6`). Sweeping the
//! checkpoint interval exposes the classic tradeoff:
//!
//! * frequent checkpoints pay steady modeled write time (`qp-machine`
//!   parallel-filesystem model) but restart from a near cut — few
//!   iterations are replayed;
//! * sparse checkpoints are nearly free to write but replay a long tail;
//! * no checkpoints at all ("none") recover by full recomputation.
//!
//! Every swept run must land on the fault-free response bit-exactly — the
//! ablation varies only *where the time goes*, never the physics.
//!
//! ```text
//! cargo run --release -p qp-bench --bin ablation_recovery
//! ```

use qp_bench::table;
use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_core::parallel::{parallel_dfpt_direction, CollectiveScheme, MappingKind, ParallelConfig};
use qp_core::resil::{parallel_dfpt_direction_resilient, ResilienceConfig};
use qp_core::{scf, DfptOptions, ScfOptions, System};
use qp_machine::hpc2;
use qp_resil::FaultPlan;
use std::sync::Arc;

/// The planned crash fires right before iteration `CRASH_ITER` starts, so
/// the last completed iteration at that point is `CRASH_ITER - 1`.
const CRASH_ITER: usize = 6;

fn main() {
    qp_bench::trace_hook::init();
    println!("Ablation: checkpoint interval vs recovery overhead (one crash at iteration {CRASH_ITER})\n");

    let mut gs = GridSettings::light();
    gs.n_radial = 24;
    gs.max_angular = 26;
    let system = System::build(
        qp_chem::structures::polyethylene(2),
        BasisSettings::Light,
        &gs,
        150,
        4,
    );
    let ground = scf(&system, &ScfOptions::default()).expect("SCF");
    let opts = DfptOptions::default();
    let cfg = ParallelConfig {
        n_ranks: 4,
        ranks_per_node: 2,
        mapping: MappingKind::LocalityEnhancing,
        collectives: CollectiveScheme::Packed,
    };
    let dir = 2;
    let fault_free = parallel_dfpt_direction(&system, &ground, dir, &opts, &cfg)
        .expect("fault-free parallel DFPT");
    println!(
        "polyethylene(2): {} basis functions, {} batches; fault-free DFPT({dir}) converges in {} iterations\n",
        system.n_basis(),
        system.batches.len(),
        fault_free.iterations
    );

    let machine = hpc2();
    let spec = format!("seed=1;crash:rank=1,iter={CRASH_ITER},point=dfpt.iter");
    let widths = [8, 11, 11, 9, 11, 13, 13, 10];
    table::header(
        &[
            "interval",
            "ckpts",
            "ckpt bytes",
            "replayed",
            "sim write",
            "sim recovery",
            "sim overhead",
            "P1 dev",
        ],
        &widths,
    );

    let mut json = Vec::new();
    for interval in [0usize, 1, 2, 4, 8] {
        let plan = Arc::new(FaultPlan::parse(&spec).expect("fault spec"));
        let rcfg = ResilienceConfig {
            checkpoint_interval: interval,
            max_restarts: 3,
            fault: Some(plan.clone()),
            machine: Some(machine),
            ..ResilienceConfig::default()
        };
        let out = parallel_dfpt_direction_resilient(&system, &ground, dir, &opts, &cfg, &rcfg)
            .expect("supervised DFPT");
        let s = &out.stats;
        assert_eq!(s.restarts, 1, "the planned crash fires exactly once");
        let dev = out.direction.p1.max_abs_diff(&fault_free.p1);
        assert_eq!(dev, 0.0, "recovery must land on the fault-free response");

        // Iterations lost to the crash: the restarted attempt re-enters at
        // the last checkpoint ≤ the last completed iteration.
        let done = CRASH_ITER - 1;
        let last_ck = done.checked_div(interval).map_or(0, |q| q * interval);
        let replayed = done - last_ck;

        table::row(
            &[
                if interval == 0 {
                    "none".into()
                } else {
                    format!("{interval}")
                },
                format!("{}", s.checkpoints_written),
                table::fmt_bytes(s.checkpoint_bytes),
                format!("{replayed}"),
                table::fmt_secs(s.sim_checkpoint_s),
                table::fmt_secs(s.sim_recovery_s),
                table::fmt_secs(s.sim_overhead_s()),
                format!("{dev:.1e}"),
            ],
            &widths,
        );
        json.push(format!(
            concat!(
                "{{\"experiment\":\"ablation_recovery\",\"machine\":\"{}\",\"ranks\":{},",
                "\"crash_iter\":{},\"interval\":{},\"restarts\":{},\"checkpoints\":{},",
                "\"checkpoint_bytes\":{},\"replayed_iters\":{},\"sim_checkpoint_s\":{:.6},",
                "\"sim_recovery_s\":{:.6},\"sim_overhead_s\":{:.6},\"iterations\":{},",
                "\"p1_max_abs_dev\":{:.1e}}}"
            ),
            machine.name,
            cfg.n_ranks,
            CRASH_ITER,
            interval,
            s.restarts,
            s.checkpoints_written,
            s.checkpoint_bytes,
            replayed,
            s.sim_checkpoint_s,
            s.sim_recovery_s,
            s.sim_overhead_s(),
            out.direction.iterations,
            dev,
        ));
    }

    println!("\nshort intervals buy short replays with steady write cost; 'none' writes");
    println!("nothing and recomputes the whole prefix — the knee is where the modeled");
    println!("write time stops being cheaper than the replayed work\n");
    println!("results (JSON):");
    for line in &json {
        println!("{line}");
    }
    qp_bench::trace_hook::finish();
}
