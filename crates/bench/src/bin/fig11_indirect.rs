//! Fig. 11: init-phase (3-D grid partitioning) speedup from eliminating the
//! indirect access `coord_center[atom_list[i_center]]` (§4.3), for
//! H(C₂H₄)ₙH at 30 002–117 602 atoms across rank counts, both machines.
//!
//! Paper: up to 6.2× on HPC#1, up to 3.9× on HPC#2, decreasing with rank
//! count (a per-rank fixed part — scanning the global atom list — does not
//! shrink with P).
//!
//! The access patterns run **for real** on a scaled-down chain with exact
//! counters; counts are then scaled linearly in atoms (the chain is linear)
//! and charged to the machine models.

use qp_bench::table;
use qp_cl::counters::KernelCounters;
use qp_cl::indirect::{read_direct, read_indirect, IndirectMap};
use qp_machine::kernel_cost::{kernel_time, KernelWork};
use qp_machine::{hpc1, hpc2, MachineModel};
use std::sync::atomic::Ordering;

/// Grid points per atom in the init phase (light settings scale).
const POINTS_PER_ATOM: usize = 600;
/// coord_center lookups per grid point while partitioning.
const LOOKUPS_PER_POINT: usize = 8;

/// Measured per-atom word counts for the two access patterns.
struct InitCounts {
    /// Off-chip words per atom, indirect pattern.
    indirect_words: f64,
    /// Off-chip words per atom, direct (rearranged) pattern.
    direct_words: f64,
    /// One-time map-build words per atom.
    build_words: f64,
}

fn measure() -> InitCounts {
    // A real (scaled-down) chain: 100 units = 602 atoms.
    let w = qp_bench::workloads::polymer(602);
    let n = w.structure.len();
    let coord_center: Vec<f64> = w
        .structure
        .atoms
        .iter()
        .flat_map(|a| a.position.into_iter())
        .collect();
    // atom_list: global ID -> batch-local ID permutation produced by the
    // batching pass (deterministic shuffle).
    let atom_list: Vec<usize> = (0..n).map(|i| (i * 193) % n).collect();
    // Per grid point, LOOKUPS_PER_POINT centers are fetched.
    let accesses: Vec<usize> = (0..n * POINTS_PER_ATOM / 100)
        .flat_map(|p| (0..LOOKUPS_PER_POINT).map(move |k| (p * 31 + k * 7) % n))
        .collect();

    let ci = KernelCounters::new();
    for &a in &accesses {
        read_indirect(&coord_center, &atom_list[a..a + 1], 3, &ci);
    }
    let cb = KernelCounters::new();
    let map = IndirectMap::build(&atom_list, &cb);
    let rearranged = map.apply(&coord_center, 3, &cb);
    let cd = KernelCounters::new();
    for &a in &accesses {
        read_direct(&rearranged[a * 3..], 1, 3, &cd);
    }
    let na = n as f64;
    InitCounts {
        indirect_words: ci.offchip_reads.load(Ordering::Relaxed) as f64 / na * 100.0,
        direct_words: cd.offchip_reads.load(Ordering::Relaxed) as f64 / na * 100.0,
        build_words: (cb.offchip_reads.load(Ordering::Relaxed)
            + cb.offchip_writes.load(Ordering::Relaxed)) as f64
            / na,
    }
}

/// Init-phase time: fixed per-rank global-list scan + variable per-point
/// part. The indirect pattern additionally suffers the machine's off-chip
/// latency on the dependent load (weak spatial locality on `A`).
fn init_time(m: &MachineModel, c: &InitCounts, atoms: usize, ranks: usize, direct: bool) -> f64 {
    let n = atoms as f64;
    let fixed = KernelWork {
        offchip_words: (3.0 * n) as u64, // whole coord table scanned per rank
        flops: (10.0 * n) as u64,
        occupancy: 1.0,
        ..Default::default()
    };
    let variable_words = if direct {
        c.direct_words + c.build_words // build amortizes over one simulation
    } else {
        // Dependent loads miss: charge the latency ratio as extra words.
        c.indirect_words * m.offchip_latency_ratio()
    };
    let variable = KernelWork {
        offchip_words: (variable_words * n / ranks as f64) as u64,
        flops: (40.0 * n / ranks as f64) as u64,
        occupancy: 1.0,
        ..Default::default()
    };
    kernel_time(m, &fixed) + kernel_time(m, &variable)
}

/// Off-chip latency penalty of dependent (pointer-chasing) loads.
trait LatencyRatio {
    fn offchip_latency_ratio(&self) -> f64;
}
impl LatencyRatio for MachineModel {
    fn offchip_latency_ratio(&self) -> f64 {
        // HPC#1's DDR per core group has much longer latency than HBM2.
        if self.name.contains('1') {
            3.4
        } else {
            2.0
        }
    }
}

fn main() {
    qp_bench::trace_hook::init();
    println!("Fig 11: init-phase speedup from eliminating indirect accesses\n");
    let c = measure();
    println!(
        "measured words/atom: indirect {:.0}, direct {:.0}, map build {:.1}\n",
        c.indirect_words, c.direct_words, c.build_words
    );
    let widths = [10, 8, 10, 10];
    table::header(&["atoms", "procs", "HPC#1", "HPC#2"], &widths);
    let cases: &[(usize, &[usize])] = &[
        (30_002, &[256, 512, 1024, 2048, 4096]),
        (60_002, &[1024, 2048, 4096, 8192]),
        (117_602, &[4096, 8192, 16384]),
    ];
    for &(atoms, procs) in cases {
        for &p in procs {
            let s1 =
                init_time(&hpc1(), &c, atoms, p, false) / init_time(&hpc1(), &c, atoms, p, true);
            let s2 =
                init_time(&hpc2(), &c, atoms, p, false) / init_time(&hpc2(), &c, atoms, p, true);
            table::row(
                &[
                    atoms.to_string(),
                    p.to_string(),
                    format!("{s1:.1}x"),
                    format!("{s2:.1}x"),
                ],
                &widths,
            );
        }
    }
    println!("\npaper: HPC#1 6.2x -> 1.1x, HPC#2 3.9x -> 1.4x, decreasing with procs");
    qp_bench::trace_hook::finish();
}
