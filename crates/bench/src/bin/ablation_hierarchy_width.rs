//! Ablation: hierarchy width `m` of the §3.2.2 scheme.
//!
//! The paper uses m = 32 on HPC#2 ("letting every 32 MPI process keep one
//! data copy"). This sweep varies the shared-copy width and reports the
//! modelled AllReduce time and the memory saving (copies drop from N to
//! N/m), showing m = node width is the sweet spot: smaller m narrows the
//! inter-node stage less; larger m does not exist physically (one node).
//!
//! The correctness of every width is asserted by a real `qp-mpi` execution.

use qp_bench::table;
use qp_bench::workloads::rho_multipole_row_bytes;
use qp_machine::cost::{allreduce_time_with_contention, local_barrier_time};
use qp_machine::hpc2;
use qp_mpi::hierarchical::hierarchical_allreduce;
use qp_mpi::{run_spmd, ReduceOp};

fn main() {
    qp_bench::trace_hook::init();
    println!(
        "Ablation: hierarchical-collective width m (HPC#2, 8 192 ranks, packed 16 MB calls)\n"
    );
    let m = hpc2();
    let ranks = 8192usize;
    let bytes = 512 * rho_multipole_row_bytes();

    // Semantic check: all widths produce identical sums in a real run.
    let reference: Vec<f64> = run_spmd(8, 8, |c| {
        hierarchical_allreduce(c, "ref", ReduceOp::Sum, &[1.5, -2.0, 0.25])
    })
    .expect("run")
    .pop()
    .expect("rank results");
    for width in [1usize, 2, 4, 8] {
        let out: Vec<f64> = run_spmd(8, width, |c| {
            hierarchical_allreduce(c, "w", ReduceOp::Sum, &[1.5, -2.0, 0.25])
        })
        .expect("run")
        .pop()
        .expect("rank results");
        assert_eq!(out, reference, "width {width} changed the result");
    }
    println!("real 8-rank runs: every width produces identical sums ✓\n");

    let widths_cols = [8, 14, 16, 14];
    table::header(&["m", "time/call", "copies (vs N)", "saving"], &widths_cols);
    for width in [1usize, 2, 4, 8, 16, 32] {
        let leaders = ranks / width;
        let local = if width > 1 {
            bytes as f64 / m.shm_bandwidth
                + width as f64 * local_barrier_time(&m, width)
                + bytes as f64 / m.shm_bandwidth
        } else {
            0.0
        };
        let inter = allreduce_time_with_contention(
            &m,
            leaders,
            bytes,
            if width > 1 { 1.0 } else { m.nic_contention },
        );
        let t = local + inter;
        table::row(
            &[
                width.to_string(),
                table::fmt_secs(t),
                format!("{leaders}"),
                format!("{width}x"),
            ],
            &widths_cols,
        );
    }
    println!("\nm = 32 (full node) minimizes time and memory on HPC#2 — the paper's choice");
    qp_bench::trace_hook::finish();
}
