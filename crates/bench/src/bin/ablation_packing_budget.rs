//! Ablation: the packing-budget heuristic (§3.2.1).
//!
//! The paper packs until the fused payload reaches 30 MB, arguing this stays
//! within last-level cache so "negligible costs may be introduced". This
//! ablation sweeps the budget from 256 KB to 480 MB and shows the modelled
//! AllReduce time flattening once per-call latency is amortized, while the
//! memory overhead keeps growing — 30 MB sits at the knee.
//!
//! The packing algorithm runs for real (`qp-mpi::PackedAllReduce`) on a
//! 16-rank world to report exact call counts per budget.

use qp_bench::table;
use qp_bench::workloads::rho_multipole_row_bytes;
use qp_machine::cost::allreduce_time;
use qp_machine::hpc2;
use qp_mpi::packed::PackedAllReduce;
use qp_mpi::{run_spmd, ReduceOp};

fn main() {
    qp_bench::trace_hook::init();
    println!("Ablation: packing budget sweep (rho_multipole sync, 30 002 atoms, 4 096 ranks)\n");
    let atoms = 30_002usize;
    let ranks = 4096;
    let row = rho_multipole_row_bytes();
    let m = hpc2();

    let widths = [12, 12, 14, 16];
    table::header(
        &["budget", "calls", "AllReduce time", "extra memory"],
        &widths,
    );
    for budget_mb in [0.25f64, 1.0, 4.0, 8.0, 16.0, 30.0, 60.0, 120.0, 480.0] {
        let budget = (budget_mb * 1024.0 * 1024.0) as usize;
        // Real packing pass on a small world: how many calls does this
        // budget produce for the full row stream?
        let rows_per_call = (budget / row).max(1);
        let calls_exact = run_spmd(16, 8, |c| {
            let mut packer = PackedAllReduce::with_budget(c, ReduceOp::Sum, budget);
            // Stream scaled-down rows with identical count so the call
            // pattern is exact: row bytes scaled by 1/64 to keep the test
            // world fast, budget scaled identically.
            let scale = 64;
            let mut packer_small = PackedAllReduce::with_budget(c, ReduceOp::Sum, budget / scale);
            for i in 0..atoms.min(2048) {
                packer_small.push(&format!("r{i}"), vec![0.0; row / 8 / scale])?;
            }
            packer_small.flush()?;
            let _ = &mut packer;
            Ok(packer_small.flushes())
        })
        .expect("packing run");
        let calls_small = calls_exact[0];
        // Scale the observed call count to the full atom stream.
        let calls = (calls_small as f64 * atoms as f64 / atoms.min(2048) as f64).ceil();
        let _ = rows_per_call;
        // The stream totals atoms x row bytes regardless of budget.
        let bytes_per_call = (atoms * row) / calls as usize;
        let t = calls * allreduce_time(&m, ranks, bytes_per_call);
        table::row(
            &[
                table::fmt_bytes(budget),
                format!("{calls:.0}"),
                table::fmt_secs(t),
                table::fmt_bytes((budget / row).max(1) * row),
            ],
            &widths,
        );
    }
    println!("\nthe knee sits near the paper's 30 MB heuristic: bigger budgets stop helping");
    qp_bench::trace_hook::finish();
}
