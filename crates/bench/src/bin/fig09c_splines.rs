//! Fig. 9(c): number of cubic splines performed per MPI process for the RBD
//! system when calculating the response potential, existing vs proposed
//! mapping (512 processes in the paper's plot).
//!
//! A rank constructs one spline table per (atom within multipole range of
//! its grid points, (l,m) channel); the locality-enhancing mapping shrinks
//! the atom set per rank by an order of magnitude.

use qp_bench::table;
use qp_bench::workloads;
use qp_chem::basis::BasisSettings;
use qp_grid::footprint::{analyze, per_atom_basis, per_atom_cutoff};
use qp_grid::mapping::{LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    qp_bench::trace_hook::init();
    let w = workloads::rbd();
    let n_procs = 512;
    println!(
        "Fig 9(c): cubic splines per MPI process — {} at {n_procs} procs\n",
        w.name
    );
    // The coarse (not stats) grid: ~120 points/atom so that 512 ranks get
    // several batches each, as in the paper's production runs.
    let grid = qp_chem::grids::IntegrationGrid::build(
        &w.structure,
        &qp_chem::grids::GridSettings::coarse(),
    );
    let batches = qp_grid::batch::batches_from_grid(&grid, 100);
    let basis = per_atom_basis(&w.structure, BasisSettings::Light);
    let cutoffs = per_atom_cutoff(&w.structure);
    let n_lm = (workloads::PROD_LMAX + 1) * (workloads::PROD_LMAX + 1);

    let widths = [24, 12, 12, 12, 12];
    table::header(&["strategy", "min", "median", "mean", "max"], &widths);
    for (name, assignment) in [
        ("existing", LoadBalancingMapping.assign(&batches, n_procs)),
        (
            "proposed",
            LocalityEnhancingMapping.assign(&batches, n_procs),
        ),
    ] {
        let report = analyze(
            &w.structure,
            &batches,
            &assignment,
            n_procs,
            &basis,
            &cutoffs,
            8.0,
        );
        let mut splines: Vec<u64> = report
            .per_rank
            .iter()
            .map(|r| (r.spline_atoms * n_lm) as u64)
            .collect();
        splines.sort_unstable();
        let mean: f64 = splines.iter().map(|&s| s as f64).sum::<f64>() / splines.len() as f64;
        table::row(
            &[
                name.to_string(),
                splines[0].to_string(),
                percentile(&splines, 0.5).to_string(),
                format!("{mean:.0}"),
                splines[splines.len() - 1].to_string(),
            ],
            &widths,
        );
    }
    println!("\npaper: existing ~32768 splines/proc (flat), proposed 1-4096 (locality-dependent),");
    println!("       9.5% response-potential speedup on HPC#1");
    qp_bench::trace_hook::finish();
}
