//! The calibrated phase-time model behind Figs. 14–16.
//!
//! Per-atom work constants are *measured at runtime* from a real
//! instrumented DFPT mini-run (the 49-atom ligand, light basis) through the
//! same `qp-core::kernels` code the physics uses; scaling exponents come
//! from the paper's own §5.3.2 ("for small systems the response density
//! matrix computation (O(N^1.2)) dominates …, for large systems the
//! computation of the response potential … O(N^1.7)"). The counters are then
//! charged to the `qp-machine` cost models.
//!
//! Baseline ("before optimization") phase times are derived from the same
//! measurements with the §3–§4 optimizations disabled: CSR matrix access
//! instead of dense (measured ratio), per-row AllReduce instead of packed,
//! redundant producers + host round trips instead of horizontal fusion,
//! nested instead of collapsed integrator loop (measured occupancies).

use crate::workloads;
use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_core::kernels::{dm_phase, h_phase, rho_phase, sumup_phase, MatrixAccess};
use qp_core::system::System;
use qp_linalg::DMatrix;
use qp_machine::kernel_cost::{kernel_time, KernelWork};
use qp_machine::{cost, MachineModel};
use std::sync::OnceLock;

/// Ligand atom count (the calibration reference `N₀`).
pub const N0: f64 = 49.0;

/// Paper §5.3.2 scaling exponents.
pub const DM_EXPONENT: f64 = 1.2;
pub const RHO_EXPONENT: f64 = 1.7;

/// Production-resolution factor: the calibration mini-run uses ~500 grid
/// points/atom and ~180 basis-pair partners, while FHI-aims light settings
/// run ~5 000–10 000 points/atom (×10–20) and ~1 500+ partners (×20–30 in
/// pair work). The factor was fixed once by a joint fit of three paper
/// anchors (HPC#1 strong-scaling efficiency at 40 000 procs, HPC#2-GPU
/// DM-phase share at 8 192 procs, HPC#2-GPU weak-scaling efficiency at
/// 200 012 atoms) and is never re-tuned per figure.
pub const PRODUCTION_RESOLUTION_FACTOR: f64 = 280.0;

/// Spline-channel factor: production `pmax = 9` has `(9+1)² = 100` `(l,m)`
/// channels vs. the calibration run's `(3+1)² = 16`.
pub const SPLINE_CHANNEL_FACTOR: f64 = 100.0 / 16.0;

/// Fraction of the response-potential work that is *long-range* (multipole
/// far-field sums, scaling O(N^1.7)) **at the reference size
/// [`RHO_FARFIELD_NREF`]**; the rest is local interpolation, scaling O(N).
/// §5.3.2: "for small systems the response density matrix computation
/// dominates …, for large systems the computation of the response potential
/// determines the value" — the far-field share must still be minor at
/// 30 002 atoms and grow towards dominance at 200 012.
pub const RHO_FARFIELD_FRACTION: f64 = 0.15;
/// Reference size at which the far-field share equals
/// [`RHO_FARFIELD_FRACTION`].
pub const RHO_FARFIELD_NREF: f64 = 30_002.0;

/// DM-phase communication: the distributed (block-cyclic) response-density
/// matrix build exchanges row/column panels SUMMA-style — aggregate volume
/// O(nb²/√P) words, with nb² sparse ∝ N, giving a per-rank volume of
/// `DM_COMM_BYTES · N / √P`. This one anchored constant reproduces the
/// paper's growing DM-communication share (22.5 % → 39.1 % from
/// 1 024 → 8 192 ranks at 60 002 atoms); it is global, never re-tuned.
pub const DM_COMM_BYTES: f64 = 1.0e5;

/// Slowdown of the *baseline* DM phase: the pre-optimization implementation
/// (ref [38] of the paper) ran the response-density-matrix contraction
/// without the §4 kernel restructuring, effectively at host/management-core
/// rates on the accelerated machines — the origin of the paper's reported
/// 36.5× DM speedup (RBD @ 64 tasks, HPC#1).
pub const DM_BASELINE_HOST_PENALTY: f64 = 30.0;

/// Atoms within multipole range of a rank's batches beyond its own share
/// (the halo): bounds the *localized* rho_multipole rows a rank needs under
/// the §3.1 locality mapping. Measured from qp-grid footprint analyses of
/// the polymer chains.
pub const HALO_ATOMS: f64 = 120.0;

/// Measured per-atom counters from the instrumented ligand run.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Sumup flops per atom.
    pub sumup_flops: f64,
    /// Sumup off-chip words per atom (dense access).
    pub sumup_words_dense: f64,
    /// Ratio of CSR to dense off-chip reads in Sumup (the Fig. 9b effect).
    pub csr_read_ratio: f64,
    /// H¹ flops per atom.
    pub h_flops: f64,
    /// H¹ off-chip words per atom (dense writes).
    pub h_words_dense: f64,
    /// Ratio of sparse to dense matrix-update writes in H¹.
    pub sparse_write_ratio: f64,
    /// DM flops per atom (at N₀; scaled by `(N/N₀)^1.2`).
    pub dm_flops: f64,
    /// Rho interpolation flops per atom (at N₀; scaled by `(N/N₀)^1.7`).
    pub rho_flops: f64,
    /// Rho off-chip words per atom (at N₀, same exponent).
    pub rho_words: f64,
    /// Spline constructions per atom per cycle.
    pub splines_per_atom: f64,
    /// Integrator lane occupancy, nested form.
    pub occ_nested: f64,
    /// Integrator lane occupancy, collapsed form.
    pub occ_collapsed: f64,
    /// Kernel launches per atom per cycle (unfused path).
    pub launches_per_atom: f64,
}

static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

/// Measure (once per process) the per-atom constants from a real ligand run.
pub fn calibration() -> &'static Calibration {
    CALIBRATION.get_or_init(|| {
        let mut gs = GridSettings::light();
        gs.n_radial = 24;
        gs.max_angular = 26;
        let sys = System::build(
            workloads::ligand().structure,
            BasisSettings::Light,
            &gs,
            150,
            3,
        );
        let queue = qp_cl::CommandQueue::new(qp_cl::device::gcn_gpu());
        let nb = sys.n_basis();
        // A representative symmetric response-like matrix.
        let mut p = DMatrix::from_fn(nb, nb, |i, j| 0.05 * ((i + 2 * j) as f64 * 0.13).sin());
        p.symmetrize();

        let (_, sd) = sumup_phase(&queue, &sys, &p, MatrixAccess::DenseLocal);
        let (_, ss) = sumup_phase(&queue, &sys, &p, MatrixAccess::SparseGlobal);
        let v1: Vec<f64> = (0..sys.n_points())
            .map(|i| (i as f64 * 0.001).sin())
            .collect();
        let (_, hd) = h_phase(&queue, &sys, &v1, MatrixAccess::DenseLocal);
        let (_, hs) = h_phase(&queue, &sys, &v1, MatrixAccess::SparseGlobal);
        let c = DMatrix::identity(nb);
        let c1 = DMatrix::from_fn(nb, sys.n_occupied(), |i, j| 1e-3 * (i + j) as f64);
        let (_, dm) = dm_phase(&queue, &c, &c1, sys.n_occupied());
        let n1: Vec<f64> = sys
            .grid
            .points
            .iter()
            .map(|p| p.position[0] * 1e-3)
            .collect();
        let rn = rho_phase(&queue, &sys, &n1, false);
        let rc = rho_phase(&queue, &sys, &n1, true);

        let na = sys.structure.len() as f64;
        let rf = PRODUCTION_RESOLUTION_FACTOR;
        Calibration {
            sumup_flops: rf * sd.flops as f64 / na,
            sumup_words_dense: rf * sd.offchip_words() as f64 / na,
            csr_read_ratio: ss.offchip_reads as f64 / sd.offchip_reads as f64,
            h_flops: rf * hd.flops as f64 / na,
            h_words_dense: rf * hd.offchip_words() as f64 / na,
            sparse_write_ratio: hs.offchip_writes as f64 / hd.offchip_writes as f64,
            dm_flops: rf * dm.flops as f64 / na,
            rho_flops: rf * rc.report.flops as f64 / na,
            rho_words: rf * rc.report.offchip_words() as f64 / na,
            splines_per_atom: SPLINE_CHANNEL_FACTOR * rc.splines_constructed as f64 / na,
            occ_nested: rn.integrator_occupancy,
            occ_collapsed: rc.integrator_occupancy,
            launches_per_atom: 4.0 / 49.0, // 4 kernels per cycle at N0
        }
    })
}

/// Per-phase simulated times of one DFPT cycle (Fig. 14/15b structure).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Response density matrix (DM).
    pub dm: f64,
    /// Real-space integration of `n¹` (Sumup).
    pub sumup: f64,
    /// Response potential (Rho).
    pub rho: f64,
    /// Response Hamiltonian (H).
    pub h: f64,
    /// Collective communication.
    pub comm: f64,
}

impl PhaseTimes {
    /// Total cycle time.
    pub fn total(&self) -> f64 {
        self.dm + self.sumup + self.rho + self.h + self.comm
    }
}

/// Model one DFPT cycle at `atoms` atoms on `ranks` ranks.
///
/// `optimized` toggles the full §3–§4 optimization set; `with_accel`
/// selects the accelerated (GPU / SW39010) rates vs. the CPU-only variant.
pub fn cycle_time(
    cal: &Calibration,
    machine: &MachineModel,
    atoms: usize,
    ranks: usize,
    optimized: bool,
) -> PhaseTimes {
    let n = atoms as f64;
    let p = ranks as f64;
    let scale_dm = (n / N0).powf(DM_EXPONENT) * N0;

    // --- DM ---
    let dm_penalty = if optimized {
        1.0
    } else {
        DM_BASELINE_HOST_PENALTY
    };
    let dm_work = KernelWork {
        launches: 1,
        offchip_words: (cal.dm_flops * scale_dm / 4.0 / p) as u64,
        onchip_words: 0,
        flops: (dm_penalty * cal.dm_flops * scale_dm / p) as u64,
        occupancy: 1.0,
        host_words: 0,
    };
    let dm = kernel_time(machine, &dm_work);

    // --- Sumup ---
    let sumup_words = cal.sumup_words_dense * if optimized { 1.0 } else { cal.csr_read_ratio };
    let sumup_work = KernelWork {
        launches: 2, // the artifact's two Sumup kernels
        offchip_words: (sumup_words * n / p) as u64,
        onchip_words: 0,
        flops: (cal.sumup_flops * n / p) as u64,
        occupancy: 1.0,
        host_words: 0,
    };
    let sumup = kernel_time(machine, &sumup_work);

    // --- H ---
    let h_words = cal.h_words_dense
        * if optimized {
            1.0
        } else {
            cal.sparse_write_ratio
        };
    let h_work = KernelWork {
        launches: 1,
        offchip_words: (h_words * n / p) as u64,
        onchip_words: 0,
        flops: (cal.h_flops * n / p) as u64,
        occupancy: 1.0,
        host_words: 0,
    };
    let h = kernel_time(machine, &h_work);

    // --- Rho ---
    // Producer redundancy: without horizontal fusion every process sharing a
    // GPU runs the identical spline producer (×8 on HPC #2) and round-trips
    // the tables through the host.
    let shared_procs = if machine.host_xfer_wps.is_finite() {
        8.0
    } else {
        1.0
    };
    let producer_mult = if optimized { 1.0 } else { shared_procs };
    let spline_words =
        cal.splines_per_atom * n / p * (workloads::rho_multipole_row_bytes() as f64 / 8.0) / 100.0; // per-channel share of the row
    let host_words = if optimized {
        0.0
    } else {
        2.0 * spline_words * shared_procs
    };
    // Local interpolation scales O(N); the far-field multipole share scales
    // O(N^1.7) (§5.3.2), normalized to RHO_FARFIELD_FRACTION of the phase at
    // the 30 002-atom reference.
    let rho_scale = (1.0 - RHO_FARFIELD_FRACTION) * n
        + RHO_FARFIELD_FRACTION * n * (n / RHO_FARFIELD_NREF).powf(RHO_EXPONENT - 1.0);
    let rho_work = KernelWork {
        launches: 2,
        offchip_words: ((cal.rho_words * rho_scale / p) + spline_words * producer_mult) as u64,
        onchip_words: 0,
        flops: (cal.rho_flops * rho_scale / p * if optimized { 1.0 } else { 1.15 }) as u64,
        occupancy: if optimized {
            cal.occ_collapsed
        } else {
            cal.occ_nested
        },
        host_words: host_words as u64,
    };
    let rho = kernel_time(machine, &rho_work);

    // --- Communication ---
    // rho_multipole synthesis: one row per atom.
    let row = workloads::rho_multipole_row_bytes();
    let comm_rho = if optimized {
        // Locality mapping bounds each rank's rows to own + halo atoms;
        // rows are packed into <= 30 MB calls, hierarchical where the
        // machine allows (§3.1 + §3.2 combined).
        let local_bytes = (n / p + HALO_ATOMS) * row as f64;
        let calls = (local_bytes / qp_mpi::packed::DEFAULT_BUDGET_BYTES as f64)
            .ceil()
            .max(1.0);
        let bytes_per_call = (local_bytes / calls) as usize;
        let per_call = cost::hierarchical_allreduce_time(machine, ranks, bytes_per_call)
            .unwrap_or_else(|| cost::allreduce_time(machine, ranks, bytes_per_call));
        calls * per_call
    } else {
        // Baseline: delocalized atoms force every rank to synthesize every
        // row, one AllReduce each.
        n * cost::allreduce_time(machine, ranks, row)
    };
    // DM-phase panel exchange (present in both variants): O(N/√P) bytes per
    // rank spread over log2(P) panel rounds.
    let rounds = p.log2().ceil().max(1.0);
    let dm_bytes = DM_COMM_BYTES * n / p.sqrt();
    let comm_dm = rounds * cost::allreduce_time(machine, ranks, (dm_bytes / rounds) as usize);
    let comm = comm_rho + comm_dm;

    PhaseTimes {
        dm,
        sumup,
        rho,
        h,
        comm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_machine::machine::{hpc1, hpc2};

    #[test]
    fn calibration_is_sane() {
        let c = calibration();
        assert!(c.sumup_flops > 0.0);
        assert!(
            c.csr_read_ratio > 1.5,
            "CSR must cost more: {}",
            c.csr_read_ratio
        );
        assert!(c.sparse_write_ratio > 2.0);
        assert!(c.occ_collapsed > c.occ_nested);
        assert!(c.splines_per_atom >= 1.0);
    }

    #[test]
    fn optimized_cycles_are_faster() {
        let c = calibration();
        for m in [hpc1(), hpc2()] {
            for &(atoms, ranks) in &[(30_002usize, 1024usize), (60_002, 4096)] {
                let opt = cycle_time(c, &m, atoms, ranks, true);
                let base = cycle_time(c, &m, atoms, ranks, false);
                assert!(
                    base.total() > 1.5 * opt.total(),
                    "{}: {} vs {}",
                    m.name,
                    base.total(),
                    opt.total()
                );
            }
        }
    }

    #[test]
    fn strong_scaling_speedup_reasonable() {
        let c = calibration();
        let m = hpc2();
        let t1 = cycle_time(c, &m, 60_002, 1024, true).total();
        let t8 = cycle_time(c, &m, 60_002, 8192, true).total();
        let speedup = t1 / t8;
        assert!(
            speedup > 3.0 && speedup < 8.0,
            "8x ranks should give 3-8x: {speedup}"
        );
    }

    #[test]
    fn comm_share_grows_with_ranks() {
        let c = calibration();
        let m = hpc2();
        let share = |ranks| {
            let t = cycle_time(c, &m, 60_002, ranks, true);
            (t.comm + t.dm) / t.total()
        };
        assert!(share(8192) > share(1024));
    }
}
