//! # qp-bench
//!
//! The figure-regeneration harness: one binary per table/figure of the
//! paper's evaluation (§5), plus ablation studies and criterion
//! microbenches.
//!
//! Method (documented in DESIGN.md §6): every harness (i) builds the real
//! geometry/grids/batches at a truth-preserving scale, (ii) runs the real
//! mapping / communication / kernel algorithms collecting exact counters,
//! and (iii) charges the counters to the calibrated `qp-machine` cost model
//! of HPC #1 / HPC #2. Counter collection is exact; only the
//! counters→seconds map is calibrated — once, globally.

pub mod phase_model;
pub mod table;
pub mod trace_hook;
pub mod workloads;
