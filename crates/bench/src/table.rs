//! Minimal fixed-width table printing for the figure harnesses.

/// Print a header row followed by a separator.
pub fn header(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths.iter()) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
}

/// Print one data row (already formatted cells).
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
}

/// Engineering-format a number of bytes.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Format seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(21373 * 1024), "20.9 MB");
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_secs(123.4), "123 s");
        assert_eq!(fmt_secs(1.5), "1.50 s");
        assert_eq!(fmt_secs(0.0123), "12.30 ms");
        assert_eq!(fmt_secs(3.3e-6), "3.30 µs");
    }
}
