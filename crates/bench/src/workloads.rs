//! The paper's workloads at figure-harness scales.
//!
//! Large systems (30 002–200 012 atoms) use a *statistics* grid: 4 radial
//! shells × 6-point angular rules per atom. Mapping, footprint and
//! communication figures depend on the spatial *distribution* of points and
//! the per-atom data volumes — both preserved — not on quadrature accuracy.
//! The per-atom physics constants (basis sizes, spline-table rows, flops
//! per point) are taken from real light-settings runs of the small systems
//! and scaled by atom count, as DESIGN.md §6 documents.

use qp_chem::basis::BasisSettings;
use qp_chem::geometry::Structure;
use qp_chem::grids::{GridSettings, IntegrationGrid};
use qp_chem::structures;
use qp_grid::batch::{batches_from_grid, Batch};

/// The statistics grid: cheap, spatially faithful.
pub fn stats_grid_settings() -> GridSettings {
    GridSettings {
        n_radial: 4,
        r_min: 0.1,
        r_max: 6.0,
        max_angular: 6,
        min_angular: 6,
        partition_cutoff: 6.0,
    }
}

/// The paper's production-like radial resolution (light settings): used for
/// the *per-atom* data-volume constants (rho_multipole rows, spline tables).
pub const LIGHT_N_RADIAL: usize = 40;

/// Multipole expansion order of the production solver (`pmax ≤ 9`, §4.4).
pub const PROD_LMAX: usize = 9;

/// Bytes of one atom's `rho_multipole` row at production resolution:
/// `n_radial × (lmax+1)² × 8` = 40 × 100 × 8 = 32 000 B ≈ the paper's
/// 28 KB `rho_multipole_spl` scale.
pub fn rho_multipole_row_bytes() -> usize {
    LIGHT_N_RADIAL * (PROD_LMAX + 1) * (PROD_LMAX + 1) * 8
}

/// Bytes of one atom's `delta_v_hart_part_spl` table: the Hartree spline is
/// tabulated on the dense logarithmic grid (~370 points in FHI-aims light)
/// with 4 spline coefficients per knot:
/// we reproduce the paper's 498 KB with our own layout:
/// `n_log × (lmax+1)² × 2 × 8` with `n_log = 311` dense log-grid knots.
pub fn delta_v_hart_spl_bytes() -> usize {
    311 * (PROD_LMAX + 1) * (PROD_LMAX + 1) * 2 * 8
}

/// A named workload.
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The structure.
    pub structure: Structure,
}

/// H(C₂H₄)ₙH with the paper's atom count.
pub fn polymer(atoms: usize) -> Workload {
    assert_eq!((atoms - 2) % 6, 0, "polyethylene atom counts are 6n+2");
    let n = (atoms - 2) / 6;
    Workload {
        name: format!("H(C2H4)_{n}H ({atoms} atoms)"),
        structure: structures::polyethylene(n),
    }
}

/// The RBD-like 3 006-atom system.
pub fn rbd() -> Workload {
    Workload {
        name: "RBD-like (3006 atoms)".to_string(),
        structure: structures::rbd_like(3006),
    }
}

/// The 49-atom ligand.
pub fn ligand() -> Workload {
    Workload {
        name: "HIV-1 ligand (49 atoms)".to_string(),
        structure: structures::ligand49(),
    }
}

/// The statistics-grade ligand-49 system shared by `bench_perf`,
/// `profile_report` and `tests/determinism_threads.rs`.
pub fn bench_ligand_system() -> qp_core::System {
    let mut gs = GridSettings::coarse();
    gs.n_radial = 8;
    gs.max_angular = 6;
    gs.min_angular = 6;
    qp_core::System::build(ligand().structure, BasisSettings::Light, &gs, 150, 2)
}

/// A statistics-grade polyethylene chain at the given atom count (6n+2).
pub fn bench_polymer_system(atoms: usize) -> qp_core::System {
    let mut gs = GridSettings::coarse();
    gs.n_radial = 8;
    gs.max_angular = 6;
    gs.min_angular = 6;
    qp_core::System::build(polymer(atoms).structure, BasisSettings::Light, &gs, 150, 2)
}

/// The quick-mode water system (light grid, trimmed radial resolution).
pub fn bench_water_system() -> qp_core::System {
    let mut gs = qp_chem::grids::GridSettings::light();
    gs.n_radial = 16;
    gs.max_angular = 14;
    qp_core::System::build(structures::water(), BasisSettings::Light, &gs, 150, 2)
}

/// The SCF settings every statistics-grade bench case converges with.
pub fn bench_scf_options() -> qp_core::ScfOptions {
    qp_core::ScfOptions {
        max_iter: 80,
        tol: 1e-6,
        mixing: 0.1,
        field: None,
        smearing: Some(0.02),
        pulay: Some(6),
    }
}

/// The DFPT settings matching [`bench_scf_options`].
pub fn bench_dfpt_options() -> qp_core::DfptOptions {
    qp_core::DfptOptions {
        max_iter: 80,
        tol: 1e-5,
        mixing: 0.15,
        ..qp_core::DfptOptions::default()
    }
}

/// Build the statistics grid + batches for a structure.
pub fn stats_batches(structure: &Structure, max_batch: usize) -> (IntegrationGrid, Vec<Batch>) {
    let grid = IntegrationGrid::build(structure, &stats_grid_settings());
    let batches = batches_from_grid(&grid, max_batch);
    (grid, batches)
}

/// Total basis functions at a setting.
pub fn total_basis(structure: &Structure, settings: BasisSettings) -> usize {
    qp_grid::footprint::per_atom_basis(structure, settings)
        .iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polymer_names_and_sizes() {
        let w = polymer(30_002);
        assert_eq!(w.structure.len(), 30_002);
        assert!(w.name.contains("5000"));
    }

    #[test]
    fn rbd_basis_count_near_paper() {
        // Paper: 9 210 basis functions for the 3 006-atom RBD at light
        // settings; our element mix gives the same scale.
        let w = rbd();
        let nb = total_basis(&w.structure, BasisSettings::Light);
        assert!(
            (8_000..11_500).contains(&nb),
            "RBD basis count {nb} should be near the paper's 9 210"
        );
    }

    #[test]
    fn ligand_basis_counts_ratio() {
        let w = ligand();
        let light = total_basis(&w.structure, BasisSettings::Light);
        let tier2 = total_basis(&w.structure, BasisSettings::Tier2);
        // Paper: 1 359 vs 2 143 (ratio 1.58).
        let ratio = tier2 as f64 / light as f64;
        assert!(ratio > 1.3 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn data_volumes_match_fig12a_scale() {
        // Fig. 12(a): 28 KB and 498 KB.
        let rho = rho_multipole_row_bytes();
        let vh = delta_v_hart_spl_bytes();
        assert!((24_000..36_000).contains(&rho), "rho row {rho} B");
        assert!((450_000..550_000).contains(&vh), "v_hart table {vh} B");
        // The decisive relation: rho fits the 64 KB RMA window, v_hart
        // does not.
        assert!(rho < 64 * 1024 && vh > 64 * 1024);
    }

    #[test]
    fn stats_grid_is_cheap() {
        let w = polymer(602); // n = 100
        let (grid, batches) = stats_batches(&w.structure, 200);
        assert_eq!(grid.len(), 602 * stats_grid_settings().points_per_atom());
        assert!(!batches.is_empty());
    }
}
