//! `QP_TRACE` hook for the figure harnesses.
//!
//! Every fig binary models per-rank, per-phase execution times; this module
//! turns those modeled times into spans on the **simulated** timeline of the
//! trace (pid "simulated machine"), one track per rank, so a Perfetto load
//! of `QP_TRACE=out.json cargo run --bin figN` shows the phase structure the
//! paper's figures summarize. Host-side spans (real collectives, kernel
//! launches) land on the host timeline as usual.

use crate::phase_model::PhaseTimes;
use qp_machine::MachineModel;
use qp_trace::{qp_info, Phase};

/// Cap on how many simulated rank tracks one case emits: enough to read the
/// timeline, without a 30k-track trace for the Poly cases.
pub const MAX_TRACKS: usize = 64;

/// Enable tracing if `QP_TRACE` / `QP_METRICS` are set. Returns whether the
/// trace is live so harnesses can skip timeline synthesis otherwise.
pub fn init() -> bool {
    qp_trace::init_from_env()
}

/// Emit one case's simulated timeline: each rank runs DM → Sumup → Rho(v1)
/// → H1 back-to-back, then the cycle's collective (`Comm`) — the bulk
/// synchronous structure of the DFPT cycle (§3.1). Spans start at
/// `offset_s` (simulated seconds) so successive cases stack end-to-end on
/// the shared timeline; returns the offset where the next case should
/// start.
pub fn emit_case_timeline(
    machine: &MachineModel,
    case: &str,
    times: &PhaseTimes,
    ranks: usize,
    offset_s: f64,
) -> f64 {
    if !qp_trace::enabled() {
        return offset_s;
    }
    let shown = ranks.min(MAX_TRACKS);
    if shown < ranks {
        qp_info!("trace: {case}: showing {shown} of {ranks} simulated rank tracks");
    }
    let phases: [(Phase, &str, f64); 5] = [
        (Phase::Dm, "DM", times.dm),
        (Phase::Sumup, "Sumup", times.sumup),
        (Phase::Rho, "Rho(v1)", times.rho),
        (Phase::H, "H1", times.h),
        (Phase::Comm, "AllReduce", times.comm),
    ];
    for rank in 0..shown {
        let mut t = offset_s;
        for (phase, name, dur) in phases {
            machine.sim_span(rank, phase, format!("{case}: {name}"), t, dur);
            t += dur;
        }
    }
    offset_s + times.total()
}

/// Run a small real SPMD exchange so the host timeline carries genuine
/// collective spans (one per rank) next to the simulated tracks.
pub fn emit_host_collectives() {
    if !qp_trace::enabled() {
        return;
    }
    let sums = qp_mpi::run_spmd(8, 4, |comm| {
        let data = vec![comm.rank() as f64; 128];
        comm.allreduce(qp_mpi::ReduceOp::Sum, &data)
    })
    .expect("spmd trace probe");
    debug_assert!(sums.iter().all(|s| (s[0] - 28.0).abs() < 1e-12));
}

/// Write the scheduled trace/metrics files, reporting where they landed.
pub fn finish() {
    match qp_trace::finish() {
        Ok(Some(path)) => qp_info!("trace written to {path}"),
        Ok(None) => {}
        Err(e) => qp_trace::qp_warn!("failed to write trace/metrics: {e}"),
    }
}
