//! Criterion microbenches: real in-process collectives — baseline per-row
//! AllReduce vs packed vs hierarchical, on an 8-rank world.
//!
//! Wall-clock here measures the *runtime's* overhead (rendezvous, copies),
//! not network time; the interesting outcome is that packing reduces
//! rendezvous count exactly as it reduces collective count at scale.

use criterion::{criterion_group, criterion_main, Criterion};
use qp_mpi::hierarchical::hierarchical_allreduce;
use qp_mpi::packed::PackedAllReduce;
use qp_mpi::{run_spmd, ReduceOp};

const ROWS: usize = 64;
const ROW_LEN: usize = 256;

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives-8rank");
    group.sample_size(10);

    group.bench_function("per-row allreduce", |b| {
        b.iter(|| {
            run_spmd(8, 4, |comm| {
                let mut acc = 0.0;
                for r in 0..ROWS {
                    let data = vec![(comm.rank() + r) as f64; ROW_LEN];
                    acc += comm.allreduce(ReduceOp::Sum, &data)?[0];
                }
                Ok(acc)
            })
            .unwrap()
        })
    });

    group.bench_function("packed allreduce", |b| {
        b.iter(|| {
            run_spmd(8, 4, |comm| {
                let mut packer = PackedAllReduce::new(comm, ReduceOp::Sum);
                for r in 0..ROWS {
                    let data = vec![(comm.rank() + r) as f64; ROW_LEN];
                    packer.push(&format!("r{r}"), data)?;
                }
                packer.flush()?;
                let mut acc = 0.0;
                for r in 0..ROWS {
                    acc += packer.take(&format!("r{r}")).expect("flushed")[0];
                }
                Ok(acc)
            })
            .unwrap()
        })
    });

    group.bench_function("packed hierarchical", |b| {
        b.iter(|| {
            run_spmd(8, 4, |comm| {
                let data: Vec<f64> = (0..ROWS * ROW_LEN)
                    .map(|i| (comm.rank() * 7 + i) as f64)
                    .collect();
                let out = hierarchical_allreduce(comm, "bench", ReduceOp::Sum, &data)?;
                Ok(out[0])
            })
            .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
