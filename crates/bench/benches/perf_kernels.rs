//! Criterion microbenches for the qp-par substrate: blocked GEMM vs the
//! legacy unblocked loop across sizes, the Householder eigensolver serial
//! vs pooled, the Sumup kernel with the basis-value cache cold vs warm, and
//! the Sternheimer response build — O(n⁴) pair-loop vs the factored
//! `C·W·Cᵀ` GEMM form.
//!
//! Run with `CRITERION_FULL=1 cargo bench -p qp-bench --bench perf_kernels`
//! for the larger iteration budget; numbers are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_chem::structures::ligand49;
use qp_core::dfpt::{sternheimer_response, sternheimer_response_pairwise};
use qp_core::kernels::{sumup_phase, MatrixAccess};
use qp_core::system::System;
use qp_linalg::{symmetric_eigen, DMatrix};

fn test_matrix(n: usize, seed: usize) -> DMatrix {
    DMatrix::from_fn(n, n, |i, j| {
        (((i * 31 + j * 7 + seed) % 97) as f64) / 97.0 - 0.5
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64, 128, 256, 512, 768] {
        let a = test_matrix(n, 0);
        let b = test_matrix(n, 1);
        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bch, _| {
            bch.iter(|| a.matmul_unblocked(std::hint::black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| a.matmul(std::hint::black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| a.par_matmul(std::hint::black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen");
    for n in [128, 256] {
        let mut m = test_matrix(n, 2);
        m.symmetrize();
        for d in 0..n {
            m[(d, d)] += 4.0; // diagonally dominant: well-separated spectrum
        }
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, _| {
            let _lease = qp_par::ThreadLease::exactly(1);
            bch.iter(|| symmetric_eigen(std::hint::black_box(&m)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pool-8", n), &n, |bch, _| {
            let _lease = qp_par::ThreadLease::exactly(8);
            bch.iter(|| symmetric_eigen(std::hint::black_box(&m)).unwrap())
        });
    }
    group.finish();
}

fn ligand_system() -> System {
    let mut gs = GridSettings::coarse();
    gs.n_radial = 8;
    gs.max_angular = 6;
    gs.min_angular = 6;
    System::build(ligand49(), BasisSettings::Light, &gs, 150, 2)
}

fn bench_sumup_cache(c: &mut Criterion) {
    let queue = qp_cl::CommandQueue::new(qp_cl::device::gcn_gpu());
    let warm = ligand_system();
    warm.warm_tables();
    let nb = warm.n_basis();
    let mut p = DMatrix::from_fn(nb, nb, |i, j| 0.05 * ((i + 2 * j) as f64).sin());
    p.symmetrize();

    let mut group = c.benchmark_group("sumup-basis-cache");
    // Cold: a fresh System per iteration — every batch table is tabulated
    // inside the timed region. Subtract the build-only baseline to isolate
    // the tabulation cost the warm path avoids.
    group.bench_function("build-only baseline", |b| {
        b.iter(|| std::hint::black_box(ligand_system()))
    });
    group.bench_function("cold (tabulates every batch)", |b| {
        b.iter(|| {
            let sys = ligand_system();
            sumup_phase(
                &queue,
                &sys,
                std::hint::black_box(&p),
                MatrixAccess::DenseLocal,
            )
        })
    });
    group.bench_function("warm (cache hits only)", |b| {
        b.iter(|| {
            sumup_phase(
                &queue,
                &warm,
                std::hint::black_box(&p),
                MatrixAccess::DenseLocal,
            )
        })
    });
    group.finish();
}

fn bench_sternheimer(c: &mut Criterion) {
    let mut group = c.benchmark_group("sternheimer");
    for n in [64, 128, 256] {
        let cmat = test_matrix(n, 3);
        let eps: Vec<f64> = (0..n).map(|i| i as f64 * 0.1 - 2.0).collect();
        // Half-filled Fermi-like occupations with a fractional frontier.
        let occ: Vec<f64> = (0..n)
            .map(|i| match (2 * i).cmp(&n) {
                std::cmp::Ordering::Less => 2.0,
                std::cmp::Ordering::Equal => 1.0,
                std::cmp::Ordering::Greater => 0.0,
            })
            .collect();
        let mut h1_mo = test_matrix(n, 4);
        h1_mo.symmetrize();
        group.bench_with_input(BenchmarkId::new("pair-loop", n), &n, |bch, _| {
            bch.iter(|| {
                sternheimer_response_pairwise(
                    std::hint::black_box(&cmat),
                    &eps,
                    &occ,
                    std::hint::black_box(&h1_mo),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm-form", n), &n, |bch, _| {
            bch.iter(|| {
                sternheimer_response(
                    std::hint::black_box(&cmat),
                    &eps,
                    &occ,
                    std::hint::black_box(&h1_mo),
                )
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_gemm(c);
    bench_eigen(c);
    bench_sumup_cache(c);
    bench_sternheimer(c);
}

criterion_group!(perf_kernels, benches);
criterion_main!(perf_kernels);
