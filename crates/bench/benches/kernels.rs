//! Criterion microbenches: the instrumented DFPT kernels on real water
//! batches — dense-local vs sparse-global matrix access (the Fig. 9b effect
//! observable directly in host wall-clock).

use criterion::{criterion_group, criterion_main, Criterion};
use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_chem::structures::water;
use qp_core::kernels::{h_phase, sumup_phase, MatrixAccess};
use qp_core::system::System;
use qp_linalg::DMatrix;

fn bench_kernels(c: &mut Criterion) {
    let mut gs = GridSettings::light();
    gs.n_radial = 24;
    gs.max_angular = 26;
    let sys = System::build(water(), BasisSettings::Light, &gs, 150, 2);
    let queue = qp_cl::CommandQueue::new(qp_cl::device::gcn_gpu());
    let nb = sys.n_basis();
    let mut p = DMatrix::from_fn(nb, nb, |i, j| 0.05 * ((i + 2 * j) as f64).sin());
    p.symmetrize();
    let v1: Vec<f64> = (0..sys.n_points())
        .map(|i| (i as f64 * 0.001).sin())
        .collect();

    let mut group = c.benchmark_group("dfpt-kernels-water");
    group.bench_function("sumup dense-local", |b| {
        b.iter(|| {
            sumup_phase(
                &queue,
                &sys,
                std::hint::black_box(&p),
                MatrixAccess::DenseLocal,
            )
        })
    });
    group.bench_function("sumup sparse-global", |b| {
        b.iter(|| {
            sumup_phase(
                &queue,
                &sys,
                std::hint::black_box(&p),
                MatrixAccess::SparseGlobal,
            )
        })
    });
    group.bench_function("h1 dense-local", |b| {
        b.iter(|| {
            h_phase(
                &queue,
                &sys,
                std::hint::black_box(&v1),
                MatrixAccess::DenseLocal,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
