//! Criterion microbenches: the two §3.1 task-mapping strategies.
//!
//! Algorithm 1 is O(M log M log N); the baseline least-loaded scan is
//! O(M·N). At production batch/rank counts the bisection is also *faster to
//! compute*, besides producing better locality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_bench::workloads;
use qp_grid::mapping::{LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};

fn bench_mappings(c: &mut Criterion) {
    let w = workloads::polymer(3_002);
    let (_grid, batches) = workloads::stats_batches(&w.structure, 100);
    let mut group = c.benchmark_group("task-mapping");
    for n_procs in [64usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("load-balancing", n_procs),
            &n_procs,
            |b, &p| b.iter(|| LoadBalancingMapping.assign(std::hint::black_box(&batches), p)),
        );
        group.bench_with_input(
            BenchmarkId::new("locality-enhancing", n_procs),
            &n_procs,
            |b, &p| b.iter(|| LocalityEnhancingMapping.assign(std::hint::black_box(&batches), p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mappings);
criterion_main!(benches);
