//! Criterion microbenches: the response-potential building blocks — cubic
//! spline construction/evaluation and the multipole Poisson solve.

use criterion::{criterion_group, criterion_main, Criterion};
use qp_chem::grids::{GridSettings, IntegrationGrid};
use qp_chem::multipole::{adams_moulton_cumulative, solve_poisson, MultipoleMoments};
use qp_chem::spline::CubicSpline;
use qp_chem::structures::water;

fn bench_spline(c: &mut Criterion) {
    let x: Vec<f64> = (0..311).map(|i| 0.01 * 1.03f64.powi(i)).collect();
    let y: Vec<f64> = x.iter().map(|t| (t * 0.3).sin() / (1.0 + t)).collect();
    let mut group = c.benchmark_group("spline");
    group.bench_function("construct-311", |b| {
        b.iter(|| CubicSpline::natural(std::hint::black_box(x.clone()), y.clone()))
    });
    let s = CubicSpline::natural(x.clone(), y);
    group.bench_function("eval-311", |b| {
        b.iter(|| s.eval(std::hint::black_box(1.234)))
    });
    group.bench_function("adams-moulton-311", |b| {
        let f: Vec<f64> = (0..311).map(|i| (i as f64 * 0.02).cos()).collect();
        b.iter(|| adams_moulton_cumulative(0.02, std::hint::black_box(&f)))
    });
    group.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let w = water();
    let mut gs = GridSettings::light();
    gs.n_radial = 24;
    gs.max_angular = 26;
    let grid = IntegrationGrid::build(&w, &gs);
    let density: Vec<f64> = grid
        .points
        .iter()
        .map(|p| {
            let r2: f64 = p.position.iter().map(|x| x * x).sum();
            (-r2).exp()
        })
        .collect();
    let mut group = c.benchmark_group("poisson");
    group.bench_function("moments-lmax4", |b| {
        b.iter(|| MultipoleMoments::compute(&w, &grid, std::hint::black_box(&density), 4))
    });
    let moments = MultipoleMoments::compute(&w, &grid, &density, 4);
    group.bench_function("radial-solve-lmax4", |b| {
        b.iter(|| solve_poisson(&w, &grid, std::hint::black_box(&moments)))
    });
    group.finish();
}

criterion_group!(benches, bench_spline, bench_poisson);
criterion_main!(benches);
