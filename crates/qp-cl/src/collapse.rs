//! Fine-grained parallelization by loop collapse (§4.4).
//!
//! The Adams–Moulton stage of the response-potential phase iterates the
//! triangular angular-momentum loop
//!
//! ```text
//! for (p = 0; p <= pmax; p++)
//!   for (m = -p; m <= p; m++) { idx = p² + m + p; A[idx] = func(p, m); }
//! ```
//!
//! whose inner bound depends on the outer variable, capping SIMT parallelism
//! at `pmax + 1 ≤ 10` threads. The collapsed form iterates
//! `idx ∈ [0, (pmax+1)²)` with `p = isqrt(idx)`, `m = idx − p² − p`,
//! exposing `(pmax+1)²` independent iterations.

use crate::counters::KernelCounters;

/// Run the *nested* (dependent) form: `f(p, m, idx)` for the triangular
/// iteration space. Occupancy is recorded as if each `p` row were a
/// wavefront-scheduled batch of `2p+1` items padded to `wavefront`.
pub fn run_nested<F: FnMut(usize, i64, usize)>(
    pmax: usize,
    wavefront: usize,
    counters: &KernelCounters,
    mut f: F,
) {
    for p in 0..=pmax {
        let items = 2 * p + 1;
        let slots = items.div_ceil(wavefront).max(1) * wavefront;
        counters.occupy(items as u64, slots as u64);
        for m in -(p as i64)..=(p as i64) {
            let idx = p * p + (m + p as i64) as usize;
            f(p, m, idx);
        }
    }
}

/// Run the *collapsed* (independent) form over the same space. All
/// `(pmax+1)²` iterations are schedulable at once; occupancy is one padded
/// batch.
pub fn run_collapsed<F: FnMut(usize, i64, usize)>(
    pmax: usize,
    wavefront: usize,
    counters: &KernelCounters,
    mut f: F,
) {
    let total = (pmax + 1) * (pmax + 1);
    let slots = total.div_ceil(wavefront).max(1) * wavefront;
    counters.occupy(total as u64, slots as u64);
    for idx in 0..total {
        let p = idx.isqrt();
        let m = idx as i64 - (p * p) as i64 - p as i64;
        f(p, m, idx);
    }
}

/// Parallel width of the nested form (what limits it to `pmax + 1 ≤ 10`).
pub fn nested_parallel_width(pmax: usize) -> usize {
    pmax + 1
}

/// Parallel width of the collapsed form.
pub fn collapsed_parallel_width(pmax: usize) -> usize {
    (pmax + 1) * (pmax + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn both_forms_cover_identical_index_space() {
        for pmax in [0usize, 1, 3, 9] {
            let c = KernelCounters::new();
            let mut nested = BTreeSet::new();
            run_nested(pmax, 64, &c, |p, m, idx| {
                assert!(nested.insert((p, m, idx)), "duplicate in nested");
            });
            let mut collapsed = BTreeSet::new();
            run_collapsed(pmax, 64, &c, |p, m, idx| {
                assert!(collapsed.insert((p, m, idx)), "duplicate in collapsed");
            });
            assert_eq!(nested, collapsed, "pmax = {pmax}");
            assert_eq!(nested.len(), (pmax + 1) * (pmax + 1));
        }
    }

    #[test]
    fn collapsed_index_arithmetic_matches_paper() {
        // idx = p² + p + m and its inverse p = isqrt(idx), m = idx - p² - p.
        let c = KernelCounters::new();
        run_collapsed(9, 64, &c, |p, m, idx| {
            assert_eq!(idx, p * p + (p as i64 + m) as usize);
            assert!(m.unsigned_abs() as usize <= p);
        });
    }

    #[test]
    fn collapsed_occupancy_is_higher() {
        let pmax = 9; // the paper's maximum angular momentum
        let w = 64; // GCN wavefront
        let cn = KernelCounters::new();
        run_nested(pmax, w, &cn, |_, _, _| {});
        let cc = KernelCounters::new();
        run_collapsed(pmax, w, &cc, |_, _, _| {});
        let on = cn.report("n", 1).occupancy();
        let oc = cc.report("c", 1).occupancy();
        assert!(
            oc > 2.0 * on,
            "collapsed occupancy {oc} should dwarf nested {on}"
        );
        // Nested: 100 items over 10 wavefronts of 64 slots = 100/640.
        assert!((on - 100.0 / 640.0).abs() < 1e-12);
        // Collapsed: 100 items over 2 wavefronts = 100/128.
        assert!((oc - 100.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn widths_match_formulas() {
        assert_eq!(nested_parallel_width(9), 10);
        assert_eq!(collapsed_parallel_width(9), 100);
    }

    #[test]
    fn results_identical_between_forms() {
        // Fill A[idx] = func(p, m) both ways and compare.
        let pmax = 7;
        let func = |p: usize, m: i64| (p as f64) * 10.0 + m as f64;
        let n = (pmax + 1) * (pmax + 1);
        let c = KernelCounters::new();
        let mut a1 = vec![0.0; n];
        run_nested(pmax, 64, &c, |p, m, idx| a1[idx] = func(p, m));
        let mut a2 = vec![0.0; n];
        run_collapsed(pmax, 64, &c, |p, m, idx| a2[idx] = func(p, m));
        assert_eq!(a1, a2);
    }
}
