//! Fusing kernels with wide dependence (§4.2).
//!
//! A *wide* dependence means one producer work-item feeds many consumer
//! work-items — here, the spline-coefficient tables (`rho_multipole_spl`,
//! `delta_v_hart_part_spl`) produced once and read by every thread of the
//! response-potential consumer kernel.
//!
//! * **Vertical fusion** (SW39010, Fig. 7a): producer and consumer of the
//!   *same process* fuse into one kernel; the intermediate stays on-chip,
//!   exchanged by RMA — legal only when it fits the 64 KB RMA volume.
//! * **Horizontal fusion** (GPU, Fig. 7b): the *identical* producer kernels
//!   of the processes sharing one GPU are deduplicated; one producer feeds a
//!   consumer kernel fused from all the processes' consumers, and the
//!   intermediate stays resident in device memory instead of bouncing
//!   through the host.

use crate::counters::LaunchReport;
use crate::queue::{CommandQueue, GroupCtx};
use rayon::prelude::*;

/// Why a fusion did or did not happen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionDecision {
    /// Fusion applied.
    Fused,
    /// Intermediate exceeds the device's on-chip exchange volume
    /// (the Fig. 12a outcome for `delta_v_hart_part_spl` on SW39010).
    ExceedsOnChipVolume {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        limit: usize,
    },
    /// Caller disabled fusion (baseline measurement).
    Disabled,
}

/// Outcome of a vertical producer→consumer execution.
#[derive(Debug)]
pub struct VerticalOutcome {
    /// What happened.
    pub decision: FusionDecision,
    /// Launch reports (1 if fused, 2 if not).
    pub reports: Vec<LaunchReport>,
}

impl VerticalOutcome {
    /// Total kernel launches.
    pub fn launches(&self) -> u64 {
        self.reports.iter().map(|r| r.launches).sum()
    }

    /// Total off-chip words.
    pub fn offchip_words(&self) -> u64 {
        self.reports.iter().map(|r| r.offchip_words()).sum()
    }
}

/// Execute a widely-dependent producer/consumer pair, vertically fusing when
/// the device allows it.
///
/// * `producer` computes the shared intermediate (the spline tables).
/// * `consumer` runs once per work-group (batch), reading the intermediate.
///
/// Both paths execute the *same closures* — the test suite asserts identical
/// results — only the data movement differs: fused keeps the intermediate
/// on-chip (one launch), unfused round-trips it through off-chip memory
/// (two launches).
pub fn vertical<P, C>(
    queue: &CommandQueue,
    name: &str,
    consumer_groups: usize,
    enable: bool,
    producer: P,
    consumer: C,
) -> VerticalOutcome
where
    P: Fn(&GroupCtx<'_>) -> Vec<f64> + Sync,
    C: Fn(&GroupCtx<'_>, &[f64]) + Sync,
{
    // Probe the intermediate size by running the producer once up front;
    // its traffic is recorded inside whichever launch configuration runs.
    // (The paper knows the table sizes statically; we measure them.)
    let device = *queue.device();

    if !enable {
        // Baseline: two launches, intermediate through off-chip memory.
        let (mut tables, _prod_report) = queue.launch_map(&format!("{name}:producer"), 1, |ctx| {
            let t = producer(ctx);
            ctx.counters.write_offchip(t.len() as u64);
            t
        });
        let table = tables.pop().expect("one producer group");
        queue.launch(&format!("{name}:consumer"), consumer_groups, |ctx| {
            ctx.counters.read_offchip(table.len() as u64);
            consumer(ctx, &table);
        });
        let reports = queue.reports();
        let n = reports.len();
        return VerticalOutcome {
            decision: FusionDecision::Disabled,
            reports: reports[n - 2..].to_vec(),
        };
    }

    // Measure the intermediate to decide legality (dry producer run, not
    // counted — mirrors the static size check in the original code).
    let probe_queue = CommandQueue::new(device);
    let (probe, _) = probe_queue.launch_map("probe", 1, |ctx| producer(ctx).len());
    let intermediate_bytes = probe[0] * 8;

    if !device.fits_on_chip_exchange(intermediate_bytes) {
        let outcome = vertical(queue, name, consumer_groups, false, producer, consumer);
        return VerticalOutcome {
            decision: FusionDecision::ExceedsOnChipVolume {
                required: intermediate_bytes,
                limit: device.rma_max_bytes.unwrap_or(device.on_chip_bytes),
            },
            reports: outcome.reports,
        };
    }

    // Fused: one launch; phase 1 produces on-chip, the global barrier of the
    // fused kernel is the sequencing between the two phases, phase 2
    // consumes from on-chip.
    let fused_name = format!("{name}:fused");
    let report = {
        let counters = crate::counters::KernelCounters::new();
        let ctx0 = GroupCtx {
            group_id: 0,
            counters: &counters,
            device: queue.device(),
        };
        let table = producer(&ctx0);
        counters.move_onchip(table.len() as u64); // RMA gather + broadcast
        (0..consumer_groups).into_par_iter().for_each(|group_id| {
            let ctx = GroupCtx {
                group_id,
                counters: &counters,
                device: queue.device(),
            };
            counters.move_onchip(0); // reads stay on-chip: no off-chip traffic
            consumer(&ctx, &table);
        });
        counters.report(&fused_name, 1)
    };
    // Register the fused launch on the queue's ledger.
    queue.launch(&fused_name, 0, |_| {});
    VerticalOutcome {
        decision: FusionDecision::Fused,
        reports: vec![report],
    }
}

/// Outcome of a horizontal (cross-process) execution on a shared GPU.
#[derive(Debug)]
pub struct HorizontalOutcome {
    /// Whether the producers were deduplicated.
    pub fused: bool,
    /// Total producer executions (k unfused → 1 fused).
    pub producer_runs: usize,
    /// Total kernel launches.
    pub launches: usize,
    /// Host↔device words transferred for the intermediate (0 when fused —
    /// the table stays resident in GPU memory).
    pub host_transfer_words: u64,
    /// Aggregated flops of all producer runs (the redundancy horizontal
    /// fusion eliminates).
    pub producer_flops: u64,
    /// Aggregated reports.
    pub reports: Vec<LaunchReport>,
}

/// Execute the per-process producer/consumer pattern of Fig. 7(b) for the
/// `n_procs` MPI processes sharing one GPU.
///
/// Unfused: every process launches its own identical producer, ships the
/// table device→host→device, then launches its consumer. Fused: one
/// producer launch, table resident in device memory, one consumer launch
/// covering all processes' work-groups.
pub fn horizontal<P, C>(
    queue: &CommandQueue,
    name: &str,
    n_procs: usize,
    groups_per_proc: usize,
    fuse: bool,
    producer: P,
    consumer: C,
) -> HorizontalOutcome
where
    P: Fn(&GroupCtx<'_>) -> Vec<f64> + Sync,
    C: Fn(&GroupCtx<'_>, usize, usize, &[f64]) + Sync, // (ctx, proc, group_in_proc, table)
{
    let mut reports = Vec::new();
    let mut host_words = 0u64;
    let mut producer_flops = 0u64;

    if fuse {
        let (mut tables, prod_report) =
            queue.launch_map(&format!("{name}:producer(fused)"), 1, |ctx| {
                let t = producer(ctx);
                ctx.counters.write_offchip(t.len() as u64); // into device memory
                t
            });
        producer_flops += prod_report.flops;
        reports.push(prod_report);
        let table = tables.pop().expect("one group");
        let cons_report = queue.launch(
            &format!("{name}:consumer(fused x{n_procs})"),
            n_procs * groups_per_proc,
            |ctx| {
                let proc = ctx.group_id / groups_per_proc;
                let g = ctx.group_id % groups_per_proc;
                // Table read from resident device memory.
                ctx.counters.read_offchip(0);
                consumer(ctx, proc, g, &table);
            },
        );
        reports.push(cons_report);
        HorizontalOutcome {
            fused: true,
            producer_runs: 1,
            launches: 2,
            host_transfer_words: 0,
            producer_flops,
            reports,
        }
    } else {
        for proc in 0..n_procs {
            let (mut tables, prod_report) =
                queue.launch_map(&format!("{name}:producer(p{proc})"), 1, |ctx| {
                    let t = producer(ctx);
                    ctx.counters.write_offchip(t.len() as u64);
                    t
                });
            producer_flops += prod_report.flops;
            reports.push(prod_report);
            let table = tables.pop().expect("one group");
            // Device → host → device round trip between the two launches
            // (non-persistent usage across processes).
            host_words += 2 * table.len() as u64;
            let cons_report = queue.launch(
                &format!("{name}:consumer(p{proc})"),
                groups_per_proc,
                |ctx| {
                    ctx.counters
                        .read_offchip(table.len() as u64 / groups_per_proc as u64);
                    consumer(ctx, proc, ctx.group_id, &table);
                },
            );
            reports.push(cons_report);
        }
        HorizontalOutcome {
            fused: false,
            producer_runs: n_procs,
            launches: 2 * n_procs,
            host_transfer_words: host_words,
            producer_flops,
            reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gcn_gpu, sw39010};
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    fn spline_producer(words: usize) -> impl Fn(&GroupCtx<'_>) -> Vec<f64> + Sync {
        move |ctx: &GroupCtx<'_>| {
            ctx.counters.flop(words as u64 * 4); // spline construction cost
            (0..words).map(|i| (i as f64).sin()).collect()
        }
    }

    #[test]
    fn vertical_fuses_small_intermediate_on_sw() {
        let q = CommandQueue::new(sw39010());
        let sink = Mutex::new(0.0f64);
        // 28 KB = 3584 words: the rho_multipole_spl case.
        let out = vertical(&q, "rho", 8, true, spline_producer(3584), |_, t| {
            *sink.lock() += t[0];
        });
        assert_eq!(out.decision, FusionDecision::Fused);
        assert_eq!(out.reports.len(), 1);
        // On-chip traffic recorded, no off-chip round trip.
        assert!(out.reports[0].onchip_words >= 3584);
        assert_eq!(out.offchip_words(), 0);
    }

    #[test]
    fn vertical_refuses_large_intermediate_on_sw() {
        // 498 KB = 63744 words > 64 KB RMA: the delta_v_hart_part_spl case.
        let q = CommandQueue::new(sw39010());
        let out = vertical(&q, "vhart", 4, true, spline_producer(63744), |_, _| {});
        match out.decision {
            FusionDecision::ExceedsOnChipVolume { required, limit } => {
                assert_eq!(required, 63744 * 8);
                assert_eq!(limit, 64 * 1024);
            }
            other => panic!("expected ExceedsOnChipVolume, got {other:?}"),
        }
        // Falls back to the two-launch off-chip path.
        assert_eq!(out.reports.len(), 2);
        assert!(out.offchip_words() >= 2 * 63744);
    }

    #[test]
    fn vertical_fused_and_unfused_produce_same_results() {
        let run = |enable: bool| -> Vec<f64> {
            let q = CommandQueue::new(sw39010());
            let acc = Mutex::new(vec![0.0; 8]);
            vertical(&q, "eq", 8, enable, spline_producer(100), |ctx, t| {
                acc.lock()[ctx.group_id] = t.iter().sum::<f64>() * (ctx.group_id + 1) as f64;
            });
            Mutex::into_inner(acc)
        };
        let fused = run(true);
        let unfused = run(false);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn horizontal_dedupes_producer_runs() {
        let q = CommandQueue::new(gcn_gpu());
        let unfused = horizontal(&q, "h", 8, 4, false, spline_producer(1000), |_, _, _, _| {});
        let fused = horizontal(&q, "h", 8, 4, true, spline_producer(1000), |_, _, _, _| {});
        assert_eq!(unfused.producer_runs, 8);
        assert_eq!(fused.producer_runs, 1);
        assert_eq!(unfused.launches, 16);
        assert_eq!(fused.launches, 2);
        assert_eq!(fused.producer_flops * 8, unfused.producer_flops);
        assert_eq!(fused.host_transfer_words, 0);
        assert_eq!(unfused.host_transfer_words, 2 * 1000 * 8);
    }

    #[test]
    fn horizontal_fused_and_unfused_produce_same_results() {
        let run = |fuse: bool| -> BTreeMap<(usize, usize), f64> {
            let q = CommandQueue::new(gcn_gpu());
            let acc = Mutex::new(BTreeMap::new());
            horizontal(&q, "heq", 4, 3, fuse, spline_producer(64), |_, p, g, t| {
                acc.lock().insert((p, g), t[g] * (p + 1) as f64);
            });
            Mutex::into_inner(acc)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn gpu_accepts_large_vertical_intermediates() {
        // On the GPU the intermediate can stay in device memory regardless
        // of size, so vertical fusion remains legal.
        let q = CommandQueue::new(gcn_gpu());
        let out = vertical(&q, "big", 2, true, spline_producer(63744), |_, _| {});
        assert_eq!(out.decision, FusionDecision::Fused);
    }
}
