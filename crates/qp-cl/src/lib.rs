//! # qp-cl
//!
//! A portable kernel runtime modelled on the paper's OpenCL layer (§4).
//!
//! The original code expresses the four accelerated DFPT phases as OpenCL
//! kernels: each work-item handles a grid point, each work-group a batch,
//! the NDRange all batches of the launching MPI process (§4.1). This crate
//! reproduces that execution model on CPU threads, with the properties the
//! paper's optimizations manipulate made explicit and measurable:
//!
//! * [`device`] — device profiles for the two evaluation accelerators
//!   (SW39010 with its 64 KB RMA on-chip exchange; a GCN-class GPU with
//!   persistent device memory and 64-lane wavefronts) plus a host-CPU
//!   profile.
//! * [`queue`] — counter-instrumented kernel launches: off-chip/on-chip
//!   words moved, flops, launches, lane occupancy. The `qp-machine` cost
//!   model turns these counters into simulated seconds.
//! * [`fusion`] — fusing kernels with *wide dependence* (§4.2): vertical
//!   fusion keeps the producer's output on-chip when it fits the RMA window
//!   (legal for the 28 KB `rho_multipole_spl`, illegal for the 498 KB
//!   `delta_v_hart_part_spl` — Fig. 12a), horizontal fusion deduplicates the
//!   redundant producer across the MPI processes sharing a GPU (Fig. 7b).
//! * [`indirect`] — eliminating indirect memory accesses `A[B[i]] → C[i]`
//!   by building the rearrangement map once and reusing it (§4.3).
//! * [`collapse`] — collapsing the dependent `(p, m)` triangular loop of the
//!   Adams–Moulton Hartree integrator into a flat `idx` loop that fills all
//!   lanes (§4.4).

pub mod buffer;
pub mod collapse;
pub mod counters;
pub mod device;
pub mod fusion;
pub mod indirect;
pub mod queue;

pub use buffer::{AddressSpace, Buffer};
pub use counters::{KernelCounters, LaunchReport};
pub use device::{DeviceKind, DeviceProfile};
pub use queue::CommandQueue;
