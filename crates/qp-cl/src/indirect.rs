//! Eliminating indirect memory accesses (§4.3).
//!
//! Patterns of the form `A[B[i]]` cost two dependent loads and exhibit weak
//! spatial locality on `A`. The paper's fix: build a mapping `f` with
//! `C = f(A)` such that `C[i] = A[B[i]]`, once, and replace the indirect
//! access with the direct `C[i]` in every subsequent simulation.
//!
//! The paper's concrete instance: `coord_center[atom_list[i_center]]` in the
//! grid-partitioning initialization — `coord_center` indexed by batch-local
//! atom ID, `atom_list` translating global to local IDs. The rearrangement
//! makes `coord_center` directly indexable by global atom ID.

use crate::counters::KernelCounters;

/// A reusable rearrangement map: `C[i] = A[B[i]]`.
///
/// "This mapping … is only required when simulating a system for the first
/// time" — build once, [`IndirectMap::apply`] many times.
#[derive(Debug, Clone)]
pub struct IndirectMap {
    perm: Vec<usize>,
}

impl IndirectMap {
    /// Build from the index array `B`. Cost: one pass over `B` (recorded as
    /// `B.len()` off-chip reads on `counters`).
    pub fn build(b: &[usize], counters: &KernelCounters) -> Self {
        counters.read_offchip(b.len() as u64);
        IndirectMap { perm: b.to_vec() }
    }

    /// Number of mapped elements.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Materialize `C = f(A)` — `stride` consecutive words per logical
    /// element (3 for coordinates). Counted as one gather pass.
    pub fn apply(&self, a: &[f64], stride: usize, counters: &KernelCounters) -> Vec<f64> {
        let mut c = Vec::with_capacity(self.perm.len() * stride);
        for &src in &self.perm {
            counters.read_offchip(stride as u64);
            counters.write_offchip(stride as u64);
            c.extend_from_slice(&a[src * stride..(src + 1) * stride]);
        }
        c
    }
}

/// Read all elements through the *indirect* pattern `A[B[i]]`, counting the
/// two dependent loads per element (plus the stride words of `A`).
pub fn read_indirect(a: &[f64], b: &[usize], stride: usize, counters: &KernelCounters) -> Vec<f64> {
    let mut out = Vec::with_capacity(b.len() * stride);
    for &idx in b {
        // Load B[i], then the dependent A words.
        counters.read_offchip(1 + stride as u64);
        out.extend_from_slice(&a[idx * stride..(idx + 1) * stride]);
    }
    out
}

/// Read all elements through the *direct* pattern `C[i]`.
pub fn read_direct(c: &[f64], n: usize, stride: usize, counters: &KernelCounters) -> Vec<f64> {
    counters.read_offchip((n * stride) as u64);
    c[..n * stride].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn coords(n: usize) -> Vec<f64> {
        (0..n * 3).map(|i| i as f64 * 0.5).collect()
    }

    #[test]
    fn direct_equals_indirect_values() {
        let a = coords(10);
        let b = vec![3usize, 1, 4, 1, 5, 9, 2, 6];
        let c = KernelCounters::new();
        let map = IndirectMap::build(&b, &c);
        let rearranged = map.apply(&a, 3, &c);
        let via_indirect = read_indirect(&a, &b, 3, &c);
        let via_direct = read_direct(&rearranged, b.len(), 3, &c);
        assert_eq!(via_indirect, via_direct);
    }

    #[test]
    fn indirect_costs_more_loads_per_access() {
        let a = coords(100);
        let b: Vec<usize> = (0..100).rev().collect();
        let ci = KernelCounters::new();
        read_indirect(&a, &b, 3, &ci);
        let cd = KernelCounters::new();
        let cm = KernelCounters::new();
        let map = IndirectMap::build(&b, &cm);
        let c = map.apply(&a, 3, &cm);
        read_direct(&c, 100, 3, &cd);
        let indirect_reads = ci.offchip_reads.load(Ordering::Relaxed);
        let direct_reads = cd.offchip_reads.load(Ordering::Relaxed);
        assert_eq!(indirect_reads, 100 * 4);
        assert_eq!(direct_reads, 100 * 3);
        assert!(indirect_reads > direct_reads);
    }

    #[test]
    fn build_cost_amortizes_over_reuses() {
        // One build + k direct passes beats k indirect passes for modest k.
        let n = 1000;
        let a = coords(n);
        let b: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();

        let build = KernelCounters::new();
        let map = IndirectMap::build(&b, &build);
        let c = map.apply(&a, 3, &build);
        let build_cost = build.offchip_reads.load(Ordering::Relaxed)
            + build.offchip_writes.load(Ordering::Relaxed);

        let per_direct = {
            let k = KernelCounters::new();
            read_direct(&c, n, 3, &k);
            k.offchip_reads.load(Ordering::Relaxed)
        };
        let per_indirect = {
            let k = KernelCounters::new();
            read_indirect(&a, &b, 3, &k);
            k.offchip_reads.load(Ordering::Relaxed)
        };
        // After `reuses` passes the rearranged layout wins.
        let reuses = 10u64;
        assert!(build_cost + reuses * per_direct < reuses * per_indirect);
    }

    #[test]
    fn empty_map() {
        let c = KernelCounters::new();
        let map = IndirectMap::build(&[], &c);
        assert!(map.is_empty());
        assert_eq!(map.apply(&[], 3, &c), Vec::<f64>::new());
    }
}
