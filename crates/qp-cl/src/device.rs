//! Device profiles.
//!
//! The paper validates its OpenCL implementation on "two accelerators with
//! diverse architecture (i.e., SW39010 and AMD GCN GPU)" (§4.1). A profile
//! captures exactly the architectural facts the §4 optimizations depend on.

/// The accelerator family a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Sunway SW39010 heterogeneous CPU: 384 accelerating cores in
    /// core-groups, on-chip LDM exchanged via RMA (≤ 64 KB), no persistent
    /// device buffers across kernel launches.
    Sw39010,
    /// AMD GCN-class GPU (MI50/MI60): 64-lane wavefronts, 64 CUs, device
    /// memory persists across launches, shared by several MPI processes.
    GcnGpu,
    /// Plain host CPU (the fallback OpenCL platform).
    HostCpu,
}

/// An accelerator profile.
#[derive(Debug, Clone, Copy)]
pub struct DeviceProfile {
    /// Marketing-free name.
    pub name: &'static str,
    /// Family.
    pub kind: DeviceKind,
    /// Compute units (core groups / CUs).
    pub compute_units: usize,
    /// SIMT lanes (work-items that execute in lock-step) per compute unit.
    pub lanes_per_cu: usize,
    /// On-chip scratch (LDM / LDS) per compute unit, bytes.
    pub on_chip_bytes: usize,
    /// Maximum volume transferable through the on-chip exchange mechanism
    /// in one shot (`Some(64 KB)` RMA limit on SW39010 — the Fig. 12a
    /// constraint); `None` when the device has no such mechanism.
    pub rma_max_bytes: Option<usize>,
    /// Whether device buffers persist across kernel launches (GPUs: yes;
    /// SW39010 core groups: no).
    pub persistent_buffers: bool,
    /// Off-chip memory access latency relative to HPC #2's GPU HBM
    /// (Fig. 11: "greater improvements on HPC #1 due to longer off-chip
    /// memory access latency").
    pub offchip_latency_ratio: f64,
    /// MPI processes that share one device (8 on HPC #2: 32 cores / 4 GPUs).
    pub procs_per_device: usize,
}

/// The SW39010 profile (HPC #1).
pub fn sw39010() -> DeviceProfile {
    DeviceProfile {
        name: "SW39010",
        kind: DeviceKind::Sw39010,
        compute_units: 6, // core groups
        lanes_per_cu: 64, // accelerating cores per group
        on_chip_bytes: 256 * 1024,
        rma_max_bytes: Some(64 * 1024),
        persistent_buffers: false,
        offchip_latency_ratio: 2.2,
        procs_per_device: 1,
    }
}

/// The GCN GPU profile (HPC #2): MI50-class with 64 CUs.
pub fn gcn_gpu() -> DeviceProfile {
    DeviceProfile {
        name: "AMD GCN GPU",
        kind: DeviceKind::GcnGpu,
        compute_units: 64,
        lanes_per_cu: 64,
        on_chip_bytes: 64 * 1024,
        rma_max_bytes: None,
        persistent_buffers: true,
        offchip_latency_ratio: 1.0,
        procs_per_device: 8, // 32-core CPU node / 4 GPUs
    }
}

/// A host-CPU profile (functional-portability fallback).
pub fn host_cpu() -> DeviceProfile {
    DeviceProfile {
        name: "host CPU",
        kind: DeviceKind::HostCpu,
        compute_units: 32,
        lanes_per_cu: 4, // SIMD width in doubles
        on_chip_bytes: 1024 * 1024,
        rma_max_bytes: None,
        persistent_buffers: true,
        offchip_latency_ratio: 1.4,
        procs_per_device: 1,
    }
}

impl DeviceProfile {
    /// Total SIMT lanes.
    pub fn total_lanes(&self) -> usize {
        self.compute_units * self.lanes_per_cu
    }

    /// Can a producer→consumer intermediate of `bytes` stay on-chip through
    /// the device's exchange mechanism (vertical-fusion legality, §4.2.1)?
    pub fn fits_on_chip_exchange(&self, bytes: usize) -> bool {
        match self.rma_max_bytes {
            Some(limit) => bytes <= limit,
            None => self.persistent_buffers, // GPU: data stays in device memory
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw_rma_limit_is_64kb() {
        let d = sw39010();
        assert!(d.fits_on_chip_exchange(28 * 1024), "rho_multipole_spl fits");
        assert!(
            !d.fits_on_chip_exchange(498 * 1024),
            "delta_v_hart_part_spl exceeds the RMA volume (Fig. 12a)"
        );
    }

    #[test]
    fn gpu_keeps_anything_in_device_memory() {
        let d = gcn_gpu();
        assert!(d.fits_on_chip_exchange(498 * 1024));
        assert_eq!(d.total_lanes(), 64 * 64);
        assert_eq!(d.procs_per_device, 8);
    }

    #[test]
    fn profiles_have_distinct_kinds() {
        assert_ne!(sw39010().kind, gcn_gpu().kind);
        assert_ne!(gcn_gpu().kind, host_cpu().kind);
    }
}
