//! The command queue: counter-instrumented NDRange kernel launches.
//!
//! Mirrors the paper's execution model (§4.1): a launch enumerates
//! work-groups (one per batch); the body processes one work-group's items
//! and records its memory traffic on the shared [`KernelCounters`].
//! Work-groups genuinely execute in parallel on the `qp-par` thread pool
//! (via the rayon-compatible shim) — data-parallel exactly like OpenCL
//! work-groups, with Rust's data-race freedom standing in for the "only
//! intra-work-group synchronization" rule (a kernel that needs a global
//! barrier must split into two launches, as in the paper). The shared
//! [`KernelCounters`] are all atomics, and every count is a commutative
//! integer sum, so launch totals are identical to serial execution for any
//! thread count; per-group return values keep group order
//! ([`CommandQueue::launch_map`]), so results are bit-identical too.

use crate::counters::{KernelCounters, LaunchReport};
use crate::device::DeviceProfile;
use parking_lot::Mutex;
use rayon::prelude::*;

/// Close out a kernel span with the launch's counter deltas, and mirror the
/// totals into the global metrics registry (per-kernel labels).
fn record_launch(span: &mut qp_trace::SpanGuard, name: &str, n_groups: usize, r: &LaunchReport) {
    if span.is_recording() {
        span.arg("groups", n_groups)
            .arg("flops", r.flops)
            .arg("offchip_reads", r.offchip_reads)
            .arg("offchip_writes", r.offchip_writes)
            .arg("onchip_words", r.onchip_words)
            .arg("active_items", r.active_items)
            .arg("lane_slots", r.lane_slots);
    }
    let labels = [("kernel", name)];
    let metrics = qp_trace::global_metrics();
    metrics.counter("cl.kernel.launches", &labels).inc();
    metrics.counter("cl.kernel.flops", &labels).add(r.flops);
    metrics
        .counter("cl.kernel.offchip_words", &labels)
        .add(r.offchip_reads + r.offchip_writes);
    if r.lane_slots > 0 {
        metrics
            .gauge("cl.kernel.occupancy", &labels)
            .set(r.occupancy());
    }
}

/// A queue bound to one device profile, aggregating launch statistics.
pub struct CommandQueue {
    device: DeviceProfile,
    reports: Mutex<Vec<LaunchReport>>,
}

/// Per-work-group context handed to the kernel body.
pub struct GroupCtx<'a> {
    /// Work-group (batch) index within the NDRange.
    pub group_id: usize,
    /// Counters to record traffic on.
    pub counters: &'a KernelCounters,
    /// The device the kernel runs on (for wavefront-granularity occupancy).
    pub device: &'a DeviceProfile,
}

impl GroupCtx<'_> {
    /// Record occupancy for a group that ran `items` work-items: slots are
    /// padded to the device's wavefront width.
    pub fn occupy_items(&self, items: usize) {
        let w = self.device.lanes_per_cu as u64;
        let slots = (items as u64).div_ceil(w) * w;
        self.counters.occupy(items as u64, slots);
    }
}

impl CommandQueue {
    /// New queue on a device.
    pub fn new(device: DeviceProfile) -> Self {
        CommandQueue {
            device,
            reports: Mutex::new(Vec::new()),
        }
    }

    /// The device profile.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Launch a kernel over `n_groups` work-groups. The body runs once per
    /// group (in parallel), recording its traffic; the queue aggregates one
    /// [`LaunchReport`].
    pub fn launch<F>(&self, name: &str, n_groups: usize, body: F) -> LaunchReport
    where
        F: Fn(&GroupCtx<'_>) + Sync,
    {
        let mut span =
            qp_trace::SpanGuard::begin(qp_trace::thread_rank(), qp_trace::Phase::Kernel, name);
        let counters = KernelCounters::new();
        (0..n_groups).into_par_iter().for_each(|group_id| {
            let ctx = GroupCtx {
                group_id,
                counters: &counters,
                device: &self.device,
            };
            body(&ctx);
        });
        let report = counters.report(name, 1);
        record_launch(&mut span, name, n_groups, &report);
        self.reports.lock().push(report.clone());
        report
    }

    /// Launch returning per-group values (parallel map), plus the report.
    pub fn launch_map<F, T>(&self, name: &str, n_groups: usize, body: F) -> (Vec<T>, LaunchReport)
    where
        F: Fn(&GroupCtx<'_>) -> T + Sync,
        T: Send,
    {
        let mut span =
            qp_trace::SpanGuard::begin(qp_trace::thread_rank(), qp_trace::Phase::Kernel, name);
        let counters = KernelCounters::new();
        let out: Vec<T> = (0..n_groups)
            .into_par_iter()
            .map(|group_id| {
                let ctx = GroupCtx {
                    group_id,
                    counters: &counters,
                    device: &self.device,
                };
                body(&ctx)
            })
            .collect();
        let report = counters.report(name, 1);
        record_launch(&mut span, name, n_groups, &report);
        self.reports.lock().push(report.clone());
        (out, report)
    }

    /// All launch reports so far, in launch order.
    pub fn reports(&self) -> Vec<LaunchReport> {
        self.reports.lock().clone()
    }

    /// Total number of launches.
    pub fn launches(&self) -> usize {
        self.reports.lock().len()
    }

    /// Aggregate all reports for kernels whose name matches `prefix`.
    pub fn aggregate(&self, prefix: &str) -> LaunchReport {
        let reports = self.reports.lock();
        let mut agg = LaunchReport {
            name: prefix.to_string(),
            launches: 0,
            offchip_reads: 0,
            offchip_writes: 0,
            onchip_words: 0,
            flops: 0,
            active_items: 0,
            lane_slots: 0,
        };
        for r in reports.iter().filter(|r| r.name.starts_with(prefix)) {
            agg.merge(r);
        }
        agg
    }

    /// Forget all reports.
    pub fn reset(&self) {
        self.reports.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gcn_gpu, host_cpu};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn launch_runs_every_group_once() {
        let q = CommandQueue::new(host_cpu());
        let hits = AtomicU64::new(0);
        let r = q.launch("k", 100, |ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            ctx.counters.flop(ctx.group_id as u64);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(r.flops, (0..100u64).sum());
        assert_eq!(q.launches(), 1);
    }

    #[test]
    fn launch_map_returns_group_results_in_order() {
        let q = CommandQueue::new(gcn_gpu());
        let (vals, _) = q.launch_map("m", 16, |ctx| ctx.group_id * 2);
        assert_eq!(vals, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn occupancy_padded_to_wavefront() {
        let q = CommandQueue::new(gcn_gpu()); // 64-lane wavefronts
        let r = q.launch("occ", 1, |ctx| ctx.occupy_items(10));
        assert_eq!(r.active_items, 10);
        assert_eq!(r.lane_slots, 64);
        assert!((r.occupancy() - 10.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_by_prefix() {
        let q = CommandQueue::new(host_cpu());
        q.launch("rho:producer", 2, |ctx| ctx.counters.flop(1));
        q.launch("rho:consumer", 2, |ctx| ctx.counters.flop(10));
        q.launch("other", 1, |ctx| ctx.counters.flop(100));
        let agg = q.aggregate("rho:");
        assert_eq!(agg.launches, 2);
        assert_eq!(agg.flops, 2 + 20);
    }

    #[test]
    fn counter_totals_bit_identical_across_thread_counts() {
        // Tentpole part 3: work-groups execute in parallel on the qp-par
        // pool, but counter totals must match the serial path exactly.
        let run = |threads: usize| {
            let _lease = qp_par::ThreadLease::exactly(threads);
            let q = CommandQueue::new(gcn_gpu());
            let (vals, r) = q.launch_map("det", 64, |ctx| {
                let g = ctx.group_id as u64;
                ctx.counters.flop(3 * g + 1);
                ctx.counters.read_offchip(g % 7);
                ctx.counters.write_offchip(g % 5);
                ctx.counters.move_onchip(g % 3);
                ctx.occupy_items((ctx.group_id % 48) + 1);
                g * g
            });
            (vals, r)
        };
        let (vals_1, r_1) = run(1);
        let (vals_8, r_8) = run(8);
        assert_eq!(vals_1, vals_8);
        assert_eq!(r_1.flops, r_8.flops);
        assert_eq!(r_1.offchip_reads, r_8.offchip_reads);
        assert_eq!(r_1.offchip_writes, r_8.offchip_writes);
        assert_eq!(r_1.onchip_words, r_8.onchip_words);
        assert_eq!(r_1.active_items, r_8.active_items);
        assert_eq!(r_1.lane_slots, r_8.lane_slots);
    }

    #[test]
    fn reset_clears_reports() {
        let q = CommandQueue::new(host_cpu());
        q.launch("k", 1, |_| {});
        q.reset();
        assert_eq!(q.launches(), 0);
    }
}
