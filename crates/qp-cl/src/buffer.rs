//! Buffers and address spaces (§4.1 "Data").
//!
//! "Arrays required or produced by each OpenCL kernel are stored using
//! buffers residing in the `__global` address space, mapped onto the
//! accelerator's off-chip memory. For those arrays that are reused several
//! times, `__local` address space is exploited, to place array elements
//! reused in a long distance into the accelerator's on-chip memory, reducing
//! costly data round trip to off-chip memory."
//!
//! A [`Buffer`] owns its data plus the address space it lives in; reads and
//! writes are metered onto a [`KernelCounters`] at the traffic class of that
//! space, so a kernel rewritten to stage a hot array into `Local` shows the
//! exact off-chip-traffic reduction the paper's optimization delivers.

use crate::counters::KernelCounters;

/// Where a buffer's bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressSpace {
    /// Off-chip device memory (`__global`).
    Global,
    /// On-chip scratch (`__local` / LDM / LDS).
    Local,
    /// Host memory (transfers to/from the device cross PCIe on HPC #2).
    Host,
}

/// A metered array of `f64`.
#[derive(Debug, Clone)]
pub struct Buffer {
    data: Vec<f64>,
    space: AddressSpace,
}

impl Buffer {
    /// Allocate a zeroed buffer in a space.
    pub fn zeros(len: usize, space: AddressSpace) -> Self {
        Buffer {
            data: vec![0.0; len],
            space,
        }
    }

    /// Wrap existing data.
    pub fn from_vec(data: Vec<f64>, space: AddressSpace) -> Self {
        Buffer { data, space }
    }

    /// Length in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The buffer's address space.
    pub fn space(&self) -> AddressSpace {
        self.space
    }

    /// Metered element read.
    #[inline]
    pub fn read(&self, i: usize, counters: &KernelCounters) -> f64 {
        self.meter_access(1, counters, false);
        self.data[i]
    }

    /// Metered element write.
    #[inline]
    pub fn write(&mut self, i: usize, v: f64, counters: &KernelCounters) {
        self.meter_access(1, counters, true);
        self.data[i] = v;
    }

    /// Metered contiguous slice read.
    pub fn read_slice(&self, range: std::ops::Range<usize>, counters: &KernelCounters) -> &[f64] {
        self.meter_access((range.end - range.start) as u64, counters, false);
        &self.data[range]
    }

    /// Unmetered access for verification code (not kernel paths).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    fn meter_access(&self, n: u64, counters: &KernelCounters, write: bool) {
        match self.space {
            AddressSpace::Global | AddressSpace::Host => {
                if write {
                    counters.write_offchip(n)
                } else {
                    counters.read_offchip(n)
                }
            }
            AddressSpace::Local => counters.move_onchip(n),
        }
    }

    /// Stage this buffer into another address space (the explicit data
    /// movement of a `__global`→`__local` copy or a host↔device transfer).
    /// The copy itself is metered: source-space reads + dest-space writes.
    pub fn stage_to(&self, space: AddressSpace, counters: &KernelCounters) -> Buffer {
        self.meter_access(self.data.len() as u64, counters, false);
        let staged = Buffer {
            data: self.data.clone(),
            space,
        };
        staged.meter_access(self.data.len() as u64, counters, true);
        staged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn global_reads_count_offchip() {
        let c = KernelCounters::new();
        let b = Buffer::from_vec(vec![1.0, 2.0, 3.0], AddressSpace::Global);
        assert_eq!(b.read(1, &c), 2.0);
        b.read_slice(0..3, &c);
        assert_eq!(c.offchip_reads.load(Ordering::Relaxed), 4);
        assert_eq!(c.onchip_words.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn local_traffic_counts_onchip() {
        let c = KernelCounters::new();
        let mut b = Buffer::zeros(8, AddressSpace::Local);
        b.write(0, 5.0, &c);
        assert_eq!(b.read(0, &c), 5.0);
        assert_eq!(c.onchip_words.load(Ordering::Relaxed), 2);
        assert_eq!(c.offchip_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn staging_reduces_repeated_offchip_traffic() {
        // The paper's __local optimization: an array read R times from
        // off-chip vs staged once then read R times on-chip.
        let reps = 100u64;
        let n = 64usize;

        let unstaged = KernelCounters::new();
        let g = Buffer::from_vec(vec![1.0; n], AddressSpace::Global);
        for _ in 0..reps {
            g.read_slice(0..n, &unstaged);
        }

        let staged_counters = KernelCounters::new();
        let l = g.stage_to(AddressSpace::Local, &staged_counters);
        for _ in 0..reps {
            l.read_slice(0..n, &staged_counters);
        }

        let off_unstaged = unstaged.offchip_reads.load(Ordering::Relaxed);
        let off_staged = staged_counters.offchip_reads.load(Ordering::Relaxed);
        assert_eq!(off_unstaged, reps * n as u64);
        assert_eq!(off_staged, n as u64, "one off-chip pass to stage");
        assert_eq!(
            staged_counters.onchip_words.load(Ordering::Relaxed),
            n as u64 + reps * n as u64
        );
    }

    #[test]
    fn stage_preserves_contents() {
        let c = KernelCounters::new();
        let g = Buffer::from_vec((0..10).map(|i| i as f64).collect(), AddressSpace::Global);
        let l = g.stage_to(AddressSpace::Local, &c);
        assert_eq!(l.as_slice(), g.as_slice());
        assert_eq!(l.space(), AddressSpace::Local);
    }
}
