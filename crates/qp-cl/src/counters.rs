//! Kernel execution counters.
//!
//! Every launch reports exactly the quantities the paper's optimizations
//! trade against each other: off-chip words moved (what fusion and
//! indirect-access elimination reduce), on-chip words (what fusion adds in
//! exchange), floating-point operations (what horizontal fusion
//! deduplicates), kernel launches (what packing/fusion amortize), and lane
//! occupancy (what the §4.4 loop collapse improves).

use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable counter set a kernel body updates while it runs.
#[derive(Debug, Default)]
pub struct KernelCounters {
    /// Words (f64) read from off-chip/global memory.
    pub offchip_reads: AtomicU64,
    /// Words written to off-chip/global memory.
    pub offchip_writes: AtomicU64,
    /// Words moved through on-chip storage (LDM/LDS/RMA).
    pub onchip_words: AtomicU64,
    /// Floating-point operations executed.
    pub flops: AtomicU64,
    /// Work-items that did useful work.
    pub active_items: AtomicU64,
    /// Lane-slots occupied (items rounded up to wavefront granularity).
    pub lane_slots: AtomicU64,
}

impl KernelCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` off-chip reads.
    #[inline]
    pub fn read_offchip(&self, n: u64) {
        self.offchip_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` off-chip writes.
    #[inline]
    pub fn write_offchip(&self, n: u64) {
        self.offchip_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` on-chip word movements.
    #[inline]
    pub fn move_onchip(&self, n: u64) {
        self.onchip_words.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` floating-point operations.
    #[inline]
    pub fn flop(&self, n: u64) {
        self.flops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record occupancy: `active` useful items padded to `slots` lanes.
    #[inline]
    pub fn occupy(&self, active: u64, slots: u64) {
        self.active_items.fetch_add(active, Ordering::Relaxed);
        self.lane_slots.fetch_add(slots, Ordering::Relaxed);
    }

    /// Snapshot into an immutable report.
    pub fn report(&self, name: &str, launches: u64) -> LaunchReport {
        LaunchReport {
            name: name.to_string(),
            launches,
            offchip_reads: self.offchip_reads.load(Ordering::Relaxed),
            offchip_writes: self.offchip_writes.load(Ordering::Relaxed),
            onchip_words: self.onchip_words.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            active_items: self.active_items.load(Ordering::Relaxed),
            lane_slots: self.lane_slots.load(Ordering::Relaxed),
        }
    }
}

/// Immutable record of one (or several aggregated) kernel launches.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Kernel name.
    pub name: String,
    /// Number of launches aggregated here.
    pub launches: u64,
    /// Off-chip words read.
    pub offchip_reads: u64,
    /// Off-chip words written.
    pub offchip_writes: u64,
    /// On-chip words moved.
    pub onchip_words: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Useful work-items.
    pub active_items: u64,
    /// Lane slots consumed.
    pub lane_slots: u64,
}

impl LaunchReport {
    /// Total off-chip traffic in words.
    pub fn offchip_words(&self) -> u64 {
        self.offchip_reads + self.offchip_writes
    }

    /// Lane occupancy in `[0, 1]` — the fine-grained-parallelism metric of
    /// §4.4 (1.0 = every lane slot did useful work).
    pub fn occupancy(&self) -> f64 {
        if self.lane_slots == 0 {
            return 1.0;
        }
        self.active_items as f64 / self.lane_slots as f64
    }

    /// Merge another report into this one (same logical kernel).
    pub fn merge(&mut self, other: &LaunchReport) {
        self.launches += other.launches;
        self.offchip_reads += other.offchip_reads;
        self.offchip_writes += other.offchip_writes;
        self.onchip_words += other.onchip_words;
        self.flops += other.flops;
        self.active_items += other.active_items;
        self.lane_slots += other.lane_slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_report() {
        let c = KernelCounters::new();
        c.read_offchip(10);
        c.write_offchip(5);
        c.move_onchip(7);
        c.flop(100);
        c.occupy(30, 64);
        let r = c.report("k", 1);
        assert_eq!(r.offchip_words(), 15);
        assert_eq!(r.onchip_words, 7);
        assert_eq!(r.flops, 100);
        assert!((r.occupancy() - 30.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let c = KernelCounters::new();
        c.read_offchip(1);
        c.occupy(2, 4);
        let mut a = c.report("k", 1);
        let b = c.report("k", 2);
        a.merge(&b);
        assert_eq!(a.launches, 3);
        assert_eq!(a.offchip_reads, 2);
        assert_eq!(a.active_items, 4);
    }

    #[test]
    fn zero_slots_means_full_occupancy() {
        let c = KernelCounters::new();
        assert_eq!(c.report("k", 0).occupancy(), 1.0);
    }
}
