//! Collective-communication cost model.
//!
//! Standard latency–bandwidth (Hockney/LogP-style) forms, the same family
//! MPI performance models use:
//!
//! * AllReduce over `N` ranks, `s` bytes per rank (Rabenseifner):
//!   `t = 2·⌈log₂N⌉·α + 2·(N−1)/N · s/β`
//! * Hierarchical AllReduce (§3.2.2): `m` chunked local phases at SHM cost,
//!   a leaders-only AllReduce over `N/m` ranks, and an SHM read-back.
//!
//! The Fig. 10 harness feeds these functions the *measured* traffic records
//! of real executions.

use crate::machine::MachineModel;

/// Flat AllReduce time over `ranks` ranks with `bytes` per rank, at the
/// given NIC-contention factor (flat collectives: `m.nic_contention`;
/// leaders-only stages: 1.0).
pub fn allreduce_time_with_contention(
    m: &MachineModel,
    ranks: usize,
    bytes: usize,
    contention: f64,
) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n = ranks as f64;
    let log_n = (ranks as f64).log2().ceil();
    2.0 * log_n * m.net_latency
        + 2.0 * (n - 1.0) / n * bytes as f64 * contention / m.net_bandwidth
        + n * m.per_rank_overhead
}

/// Flat AllReduce time over `ranks` ranks with `bytes` per rank.
pub fn allreduce_time(m: &MachineModel, ranks: usize, bytes: usize) -> f64 {
    allreduce_time_with_contention(m, ranks, bytes, m.nic_contention)
}

/// Barrier time over `ranks` ranks (dissemination barrier).
pub fn barrier_time(m: &MachineModel, ranks: usize) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    (ranks as f64).log2().ceil() * m.net_latency
}

/// Node-local barrier time over `ranks` node ranks.
pub fn local_barrier_time(m: &MachineModel, ranks: usize) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    (ranks as f64).log2().ceil() * m.shm_latency
}

/// Broadcast time (binomial tree).
pub fn broadcast_time(m: &MachineModel, ranks: usize, bytes: usize) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    (ranks as f64).log2().ceil() * (m.net_latency + bytes as f64 / m.net_bandwidth)
}

/// Time of the §3.2.2 hierarchical AllReduce: chunked intra-node
/// accumulation (local barriers + SHM traffic), leaders-only inter-node
/// AllReduce over `ranks / m` participants, and intra-node read-back.
///
/// Returns `None` when the machine cannot share memory between node ranks
/// (HPC #1 — the paper: "this is not applicable to HPC #1").
pub fn hierarchical_allreduce_time(m: &MachineModel, ranks: usize, bytes: usize) -> Option<f64> {
    if !m.shm_capable {
        return None;
    }
    let width = m.procs_per_node.min(ranks).max(1);
    let n_leaders = ranks.div_ceil(width);
    // Each rank writes its full buffer into the shared copy across `width`
    // phases, each phase ending in a local barrier.
    let local_update = bytes as f64 / m.shm_bandwidth + width as f64 * local_barrier_time(m, width);
    // Leaders reduce across nodes: one flow per NIC, no contention.
    let inter = allreduce_time_with_contention(m, n_leaders, bytes, 1.0);
    // Read-back of the result from the shared copy.
    let read_back = bytes as f64 / m.shm_bandwidth + local_barrier_time(m, width);
    Some(local_update + inter + read_back)
}

/// Time to write one checkpoint of `bytes` from a `ranks`-wide job: quiesce
/// (barrier), then rank 0 streams the replicated state to the parallel
/// filesystem. Deterministic rank-ordered collectives keep state identical
/// on all ranks, so a single writer suffices and the cost does not scale
/// with `ranks` beyond the barrier.
pub fn checkpoint_write_time(m: &MachineModel, ranks: usize, bytes: usize) -> f64 {
    barrier_time(m, ranks) + crate::calib::PFS_LATENCY + bytes as f64 / crate::calib::PFS_BANDWIDTH
}

/// Time to recover a `ranks`-wide job from a checkpoint of `bytes`:
/// failure detection + respawn overhead, checkpoint read-back, broadcast of
/// the restored state to every rank, and a re-entry barrier.
pub fn restart_time(m: &MachineModel, ranks: usize, bytes: usize) -> f64 {
    crate::calib::RESPAWN_OVERHEAD
        + crate::calib::PFS_LATENCY
        + bytes as f64 / crate::calib::PFS_BANDWIDTH
        + broadcast_time(m, ranks, bytes)
        + barrier_time(m, ranks)
}

/// Time of a packed sequence: `calls` invocations carrying `total_bytes`
/// altogether (vs. the baseline's per-invocation latency).
pub fn packed_sequence_time(
    m: &MachineModel,
    ranks: usize,
    calls: usize,
    total_bytes: usize,
) -> f64 {
    if calls == 0 {
        return 0.0;
    }
    let per_call_bytes = total_bytes / calls;
    calls as f64 * allreduce_time(m, ranks, per_call_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{hpc1, hpc2};

    #[test]
    fn allreduce_grows_with_ranks_and_bytes() {
        let m = hpc2();
        let t1 = allreduce_time(&m, 256, 1 << 20);
        let t2 = allreduce_time(&m, 8192, 1 << 20);
        let t3 = allreduce_time(&m, 256, 16 << 20);
        assert!(t2 > t1, "more ranks cost more latency");
        assert!(t3 > t1, "more bytes cost more bandwidth");
        assert_eq!(allreduce_time(&m, 1, 1 << 20), 0.0);
    }

    #[test]
    fn packing_beats_many_small_calls() {
        // 512 calls of 8 KB vs 1 call of 4 MB: packing amortizes latency.
        let m = hpc2();
        let ranks = 4096;
        let small = 8 * 1024;
        let many: f64 = (0..512).map(|_| allreduce_time(&m, ranks, small)).sum();
        let one = allreduce_time(&m, ranks, 512 * small);
        assert!(
            one < many / 5.0,
            "packed {one} should be >5x cheaper than {many}"
        );
    }

    #[test]
    fn hierarchy_narrows_the_expensive_collective() {
        let m = hpc2();
        let ranks = 8192;
        let bytes = 4 << 20;
        let flat = allreduce_time(&m, ranks, bytes);
        let hier = hierarchical_allreduce_time(&m, ranks, bytes).unwrap();
        assert!(
            hier < flat,
            "hierarchical {hier} should beat flat {flat} at scale"
        );
    }

    #[test]
    fn hierarchy_unavailable_on_hpc1() {
        // §5.2.2: "this is not applicable to HPC #1, since MPI processes
        // mapping to the same node are executed on cores with their memories
        // physically dis-connected."
        assert!(hierarchical_allreduce_time(&hpc1(), 4096, 1 << 20).is_none());
    }

    #[test]
    fn packed_sequence_accounts_calls() {
        let m = hpc1();
        let t_many = packed_sequence_time(&m, 1024, 512, 512 * 8192);
        let t_one = packed_sequence_time(&m, 1024, 1, 512 * 8192);
        assert!(t_one < t_many);
        assert_eq!(packed_sequence_time(&m, 1024, 0, 0), 0.0);
    }

    #[test]
    fn checkpoint_costs_scale_with_bytes() {
        let m = hpc2();
        let small = checkpoint_write_time(&m, 256, 1 << 20);
        let large = checkpoint_write_time(&m, 256, 1 << 30);
        assert!(large > small, "bigger state costs more to write");
        // Restart pays respawn overhead on top of the read + broadcast, so
        // it always exceeds the matching write.
        assert!(restart_time(&m, 256, 1 << 20) > small);
        assert!(restart_time(&m, 256, 1 << 20) >= crate::calib::RESPAWN_OVERHEAD);
    }

    #[test]
    fn barrier_and_broadcast_scale_logarithmically() {
        let m = hpc2();
        let b256 = barrier_time(&m, 256);
        let b65536 = barrier_time(&m, 65536);
        assert!((b65536 / b256 - 2.0).abs() < 1e-9, "log2 ratio 16/8");
        assert!(broadcast_time(&m, 1024, 1 << 20) > 0.0);
        assert_eq!(local_barrier_time(&m, 1), 0.0);
    }
}
