//! Calibration constants — chosen once from public hardware characteristics
//! and the magnitudes reported in the paper, then **never tuned per figure**.
//!
//! Sources of the orders of magnitude:
//! * InfiniBand EDR/HDR small-message latency ≈ 1–2 µs; large-message
//!   bandwidth ≈ 10–12 GB/s (HPC #2).
//! * The Sunway custom network is reported in the HPCG/Sunway literature at
//!   slightly higher latency and lower per-link bandwidth than IB HDR.
//! * MI50 HBM2 ≈ 1 TB/s; SW39010 core-group DDR bandwidth is an order of
//!   magnitude lower, consistent with Fig. 11's larger speedups on HPC #1
//!   ("longer off-chip memory access latency").
//! * Kernel-launch overhead on ROCm-class stacks ≈ 10 µs; Sunway athread
//!   spawn ≈ 5 µs.

/// Inter-node latency (s), HPC #1 (Sunway custom network).
pub const HPC1_NET_LATENCY: f64 = 3.0e-6;
/// Inter-node per-rank bandwidth (bytes/s), HPC #1.
pub const HPC1_NET_BANDWIDTH: f64 = 6.0e9;
/// Inter-node latency (s), HPC #2 (InfiniBand).
pub const HPC2_NET_LATENCY: f64 = 1.5e-6;
/// Inter-node per-rank bandwidth (bytes/s), HPC #2.
pub const HPC2_NET_BANDWIDTH: f64 = 10.0e9;

/// Intra-node (shared-memory) synchronization latency (s), HPC #2.
pub const HPC2_SHM_LATENCY: f64 = 2.0e-7;
/// Intra-node copy bandwidth (bytes/s), HPC #2.
pub const HPC2_SHM_BANDWIDTH: f64 = 40.0e9;

/// Off-chip memory bandwidth (words/s of f64), HPC #1 accelerator.
pub const HPC1_OFFCHIP_WPS: f64 = 6.0e9; // ~48 GB/s DDR per core group share
/// Off-chip memory bandwidth (words/s), HPC #2 GPU (HBM2).
pub const HPC2_OFFCHIP_WPS: f64 = 1.0e11; // ~800 GB/s effective
/// On-chip (LDM/LDS/RMA) bandwidth (words/s), both machines.
pub const ONCHIP_WPS: f64 = 1.0e12;

/// Accelerator flop rate (flop/s) per process share, HPC #1.
pub const HPC1_FLOPS: f64 = 3.0e10;
/// Accelerator flop rate per process share, HPC #2 (MI50 fp64 / 8 procs).
pub const HPC2_FLOPS: f64 = 8.0e11;

/// Kernel launch overhead (s), HPC #1 (athread spawn).
pub const HPC1_LAUNCH_OVERHEAD: f64 = 5.0e-6;
/// Kernel launch overhead (s), HPC #2 (ROCm dispatch, shared GPU queue).
pub const HPC2_LAUNCH_OVERHEAD: f64 = 1.2e-5;

/// Host↔device transfer bandwidth (words/s), HPC #2 PCIe 3 x16 shared.
pub const HPC2_HOST_XFER_WPS: f64 = 1.2e9;

/// Per-rank software/injection overhead of a collective (s·rank⁻¹), HPC #1.
/// Large-scale AllReduce departs from the ideal Rabenseifner model through
/// per-participant software costs and network-injection serialization; this
/// linear term captures that departure (measured MPI AllReduce scaling
/// studies put it at tens of ns per rank).
pub const HPC1_PER_RANK_OVERHEAD: f64 = 2.0e-7;
/// Per-rank collective overhead (s·rank⁻¹), HPC #2.
pub const HPC2_PER_RANK_OVERHEAD: f64 = 1.0e-7;

/// NIC-contention factor of a *flat* AllReduce: with every rank of a node
/// participating, the node's network link is shared and measured large-
/// message AllReduce bandwidth degrades vs. one-flow-per-node. Leaders-only
/// (hierarchical) collectives run at contention 1.
pub const HPC1_NIC_CONTENTION: f64 = 1.6; // 6 ranks/node
/// NIC-contention factor, HPC #2 (32 ranks/node).
pub const HPC2_NIC_CONTENTION: f64 = 2.2;

/// Per-process memory budget (bytes), HPC #2 (the "4 GB per process" of
/// §5.3.3's memory-explosion discussion).
pub const HPC2_MEM_PER_PROC: usize = 4 << 30;
/// Per-process memory budget (bytes), HPC #1.
pub const HPC1_MEM_PER_PROC: usize = 3 << 30;

/// Parallel-filesystem (checkpoint storage) streaming bandwidth per job
/// share (bytes/s). Lustre/GPFS-class burst-buffer-less write rates for a
/// modest job allocation.
pub const PFS_BANDWIDTH: f64 = 2.0e9;
/// Parallel-filesystem metadata latency per open/close (s).
pub const PFS_LATENCY: f64 = 2.0e-3;
/// Scheduler/runtime overhead of re-establishing a world after a rank
/// failure (s): failure detection, respawn, reconnect. Dominates small
/// restarts.
pub const RESPAWN_OVERHEAD: f64 = 5.0;
