//! # qp-machine
//!
//! Machine models of the paper's two evaluation systems and the
//! deterministic cost model that converts *measured* counters (from `qp-mpi`
//! traffic records and `qp-cl` launch reports) into simulated seconds.
//!
//! We cannot run 40 000 MPI processes on SW39010 core groups; what we *can*
//! do — and what this workspace does — is execute the true algorithms at
//! truth-preserving scales, collect exact operation/byte counts, and charge
//! them to a calibrated analytic model of each machine. The calibration
//! constants live in [`calib`] and are fixed once; no per-figure tuning.
//!
//! * [`machine`] — [`machine::MachineModel`]: node shape, memory budget,
//!   network α/β, accelerator rates for **HPC #1** (Sunway, SW39010) and
//!   **HPC #2** (AMD-GPU cluster).
//! * [`cost`] — collective-communication times (flat, packed, hierarchical
//!   AllReduce) from traffic records.
//! * [`kernel_cost`] — kernel execution time from launch reports
//!   (launch overhead + off-chip traffic + occupancy-degraded compute).

pub mod calib;
pub mod cost;
pub mod kernel_cost;
pub mod machine;

pub use machine::{hpc1, hpc2, MachineModel};
