//! Kernel execution cost model: `qp-cl` launch reports → seconds.
//!
//! `t = launches·overhead + offchip/bw_off + onchip/bw_on
//!      + flops/(rate·occupancy) + host_words/bw_xfer`
//!
//! The occupancy divisor is what makes the §4.4 loop collapse pay off: the
//! same flops at 16 % lane occupancy take ~6× the time they take at 78 %.

use crate::machine::MachineModel;

/// A device-side launch summary (mirror of `qp_cl::LaunchReport`'s numeric
/// fields, kept dependency-free so qp-machine stays a leaf crate).
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelWork {
    /// Number of kernel launches.
    pub launches: u64,
    /// Off-chip words moved (reads + writes).
    pub offchip_words: u64,
    /// On-chip words moved.
    pub onchip_words: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Lane occupancy in `(0, 1]`.
    pub occupancy: f64,
    /// Host↔device transfer words.
    pub host_words: u64,
}

/// Time for one kernel work summary on a machine.
pub fn kernel_time(m: &MachineModel, w: &KernelWork) -> f64 {
    let occ = if w.occupancy > 0.0 {
        w.occupancy.min(1.0)
    } else {
        1.0
    };
    w.launches as f64 * m.launch_overhead
        + w.offchip_words as f64 / m.offchip_wps
        + w.onchip_words as f64 / m.onchip_wps
        + w.flops as f64 / (m.flop_rate * occ)
        + if m.host_xfer_wps.is_finite() {
            w.host_words as f64 / m.host_xfer_wps
        } else {
            0.0
        }
}

/// Speedup of work `b` relative to work `a` on machine `m` (time(a)/time(b)).
pub fn speedup(m: &MachineModel, a: &KernelWork, b: &KernelWork) -> f64 {
    kernel_time(m, a) / kernel_time(m, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{hpc1, hpc2};

    fn base() -> KernelWork {
        KernelWork {
            launches: 10,
            offchip_words: 1_000_000,
            onchip_words: 0,
            flops: 50_000_000,
            occupancy: 1.0,
            host_words: 0,
        }
    }

    #[test]
    fn occupancy_degrades_compute() {
        let m = hpc2();
        let full = base();
        let mut idle = base();
        idle.occupancy = 0.15625; // 10/64 lanes
        assert!(kernel_time(&m, &idle) > kernel_time(&m, &full));
    }

    #[test]
    fn onchip_cheaper_than_offchip() {
        let m = hpc1();
        let mut off = base();
        off.flops = 0;
        off.launches = 0;
        let mut on = off;
        on.onchip_words = on.offchip_words;
        on.offchip_words = 0;
        assert!(kernel_time(&m, &on) < kernel_time(&m, &off) / 10.0);
    }

    #[test]
    fn offchip_relatively_more_expensive_on_hpc1() {
        // Fig. 11: indirect-access elimination helps HPC #1 more because its
        // off-chip latency is longer relative to compute.
        let mut traffic_only = base();
        traffic_only.flops = 0;
        traffic_only.launches = 0;
        let t1 = kernel_time(&hpc1(), &traffic_only);
        let t2 = kernel_time(&hpc2(), &traffic_only);
        assert!(t1 > 5.0 * t2);
    }

    #[test]
    fn host_transfers_cost_only_where_finite() {
        let mut w = base();
        w.host_words = 10_000_000;
        let with = kernel_time(&hpc2(), &w);
        let without = kernel_time(&hpc2(), &base());
        assert!(with > without);
        // HPC #1 has no PCIe hop.
        assert_eq!(kernel_time(&hpc1(), &w), kernel_time(&hpc1(), &base()));
    }

    #[test]
    fn speedup_ratio() {
        let m = hpc2();
        let a = base();
        let mut b = base();
        b.offchip_words /= 2;
        b.flops /= 2;
        let s = speedup(&m, &a, &b);
        assert!(s > 1.0 && s < 3.0);
    }

    #[test]
    fn zero_occupancy_treated_as_full() {
        let m = hpc2();
        let mut w = base();
        w.occupancy = 0.0;
        assert!(kernel_time(&m, &w).is_finite());
    }
}
