//! The machine models.

use crate::calib;

/// A supercomputer model: everything the cost functions need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Display name.
    pub name: &'static str,
    /// MPI processes per shared-memory node.
    pub procs_per_node: usize,
    /// Whether intra-node ranks can share one memory copy (MPI SHM). False
    /// on HPC #1: "MPI processes mapping to the same node are executed on
    /// cores with their memories physically dis-connected" (§5.2.2).
    pub shm_capable: bool,
    /// Per-process memory budget (bytes).
    pub mem_per_proc: usize,
    /// Inter-node collective latency α (s).
    pub net_latency: f64,
    /// Inter-node bandwidth β (bytes/s per rank).
    pub net_bandwidth: f64,
    /// Intra-node synchronization latency (s).
    pub shm_latency: f64,
    /// Intra-node copy bandwidth (bytes/s).
    pub shm_bandwidth: f64,
    /// Accelerator off-chip bandwidth (f64 words/s per process share).
    pub offchip_wps: f64,
    /// On-chip bandwidth (words/s).
    pub onchip_wps: f64,
    /// Accelerator flop rate per process share (flop/s).
    pub flop_rate: f64,
    /// Kernel launch overhead (s).
    pub launch_overhead: f64,
    /// Per-rank collective software/injection overhead (s per participating
    /// rank) — the linear departure from ideal AllReduce scaling.
    pub per_rank_overhead: f64,
    /// Bandwidth degradation of a flat (all-ranks) collective from NIC
    /// sharing within a node; hierarchical leader stages run at 1.0.
    pub nic_contention: f64,
    /// Host↔device transfer bandwidth (words/s); `f64::INFINITY` when the
    /// accelerator shares the host memory (HPC #1).
    pub host_xfer_wps: f64,
}

/// HPC #1: the new-generation Sunway (SW39010 nodes, custom network).
pub fn hpc1() -> MachineModel {
    MachineModel {
        name: "HPC#1 (Sunway SW39010)",
        procs_per_node: 6, // one process per core group
        shm_capable: false,
        mem_per_proc: calib::HPC1_MEM_PER_PROC,
        net_latency: calib::HPC1_NET_LATENCY,
        net_bandwidth: calib::HPC1_NET_BANDWIDTH,
        shm_latency: calib::HPC2_SHM_LATENCY, // unused (shm_capable = false)
        shm_bandwidth: calib::HPC2_SHM_BANDWIDTH,
        offchip_wps: calib::HPC1_OFFCHIP_WPS,
        onchip_wps: calib::ONCHIP_WPS,
        flop_rate: calib::HPC1_FLOPS,
        launch_overhead: calib::HPC1_LAUNCH_OVERHEAD,
        per_rank_overhead: calib::HPC1_PER_RANK_OVERHEAD,
        nic_contention: calib::HPC1_NIC_CONTENTION,
        host_xfer_wps: f64::INFINITY,
    }
}

/// HPC #2: the AMD-GPU-accelerated cluster (32-core x86 + 4 MI50-class GPUs
/// per node, InfiniBand).
pub fn hpc2() -> MachineModel {
    MachineModel {
        name: "HPC#2 (AMD GPU cluster)",
        procs_per_node: 32,
        shm_capable: true,
        mem_per_proc: calib::HPC2_MEM_PER_PROC,
        net_latency: calib::HPC2_NET_LATENCY,
        net_bandwidth: calib::HPC2_NET_BANDWIDTH,
        shm_latency: calib::HPC2_SHM_LATENCY,
        shm_bandwidth: calib::HPC2_SHM_BANDWIDTH,
        offchip_wps: calib::HPC2_OFFCHIP_WPS,
        onchip_wps: calib::ONCHIP_WPS,
        flop_rate: calib::HPC2_FLOPS,
        launch_overhead: calib::HPC2_LAUNCH_OVERHEAD,
        per_rank_overhead: calib::HPC2_PER_RANK_OVERHEAD,
        nic_contention: calib::HPC2_NIC_CONTENTION,
        host_xfer_wps: calib::HPC2_HOST_XFER_WPS,
    }
}

/// HPC #2 with GPUs disabled (the "CPU only" series of Figs. 15–16):
/// compute runs at CPU rates, no launch overhead, no host transfers.
pub fn hpc2_cpu_only() -> MachineModel {
    MachineModel {
        name: "HPC#2 (CPU only)",
        flop_rate: 4.0e10,  // 2.5 GHz x86 core with AVX2 fp64
        offchip_wps: 2.5e9, // DDR4 share per rank
        launch_overhead: 0.0,
        host_xfer_wps: f64::INFINITY,
        ..hpc2()
    }
}

impl MachineModel {
    /// Does a per-process allocation fit the memory budget?
    pub fn fits_memory(&self, bytes: usize) -> bool {
        bytes <= self.mem_per_proc
    }

    /// Number of nodes hosting `ranks` processes.
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.procs_per_node)
    }

    /// Record a span on the **simulated** timeline of this machine:
    /// `start_s`/`dur_s` are modeled seconds produced by the cost model, not
    /// host time. The trace then shows host and exascale time side by side.
    pub fn sim_span(
        &self,
        rank: usize,
        phase: qp_trace::Phase,
        name: impl Into<String>,
        start_s: f64,
        dur_s: f64,
    ) {
        qp_trace::sim_span(
            rank,
            phase,
            name,
            start_s,
            dur_s,
            vec![("machine", self.name.to_string())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_distinct() {
        assert_ne!(hpc1().name, hpc2().name);
        assert!(
            !hpc1().shm_capable,
            "Sunway core groups have disjoint memories"
        );
        assert!(hpc2().shm_capable);
    }

    #[test]
    fn memory_budget() {
        let m = hpc2();
        assert!(m.fits_memory(1 << 30));
        // The §5.3.3 example: a 50 000-atom Hamiltonian at ~16 GB does not
        // fit the 4 GB per-process budget.
        assert!(!m.fits_memory(16 << 30));
    }

    #[test]
    fn node_counting() {
        assert_eq!(hpc2().nodes_for(8192), 256);
        assert_eq!(hpc1().nodes_for(40000), 6667);
        assert_eq!(hpc2().nodes_for(1), 1);
    }

    #[test]
    fn cpu_only_variant_slower_per_rank() {
        assert!(hpc2_cpu_only().flop_rate < hpc2().flop_rate);
        assert_eq!(hpc2_cpu_only().procs_per_node, 32);
    }
}
