//! Grid batches and the grid-adapted cut-plane batching method.
//!
//! "All points in those discretized grids are further divided into disjoint
//! batches based on their spatial locations, with each batch formed with a
//! grid-adapted cut-plane method and then mapped to a certain MPI process"
//! (§3.1). Batches typically hold 100–300 grid points (§3.1.1).

use qp_chem::grids::IntegrationGrid;

/// A compact grid point inside a batch: position plus owning atom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPoint {
    /// Cartesian position (Bohr).
    pub position: [f64; 3],
    /// Global ID of the atom whose radial grid generated this point.
    pub atom: u32,
    /// Index of the point in the originating integration grid
    /// (`u32::MAX` when the batch was built from bare points).
    pub grid_index: u32,
}

/// A disjoint batch of grid points.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stable batch ID (creation order).
    pub id: usize,
    /// The points.
    pub points: Vec<BatchPoint>,
    /// The batch location: the coordinate averaged over all its grid points
    /// (exactly the definition used by Algorithm 1, line 8 commentary).
    pub center: [f64; 3],
}

impl Batch {
    fn from_points(id: usize, points: Vec<BatchPoint>) -> Self {
        let mut c = [0.0; 3];
        for p in &points {
            for d in 0..3 {
                c[d] += p.position[d];
            }
        }
        let n = points.len().max(1) as f64;
        Batch {
            id,
            points,
            center: [c[0] / n, c[1] / n, c[2] / n],
        }
    }

    /// Number of grid points (`batch.points` in Algorithm 1's pivot sum).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Distinct atoms whose grid points this batch holds.
    pub fn atoms(&self) -> Vec<u32> {
        let mut a: Vec<u32> = self.points.iter().map(|p| p.atom).collect();
        a.sort_unstable();
        a.dedup();
        a
    }
}

/// Split grid points into disjoint spatial batches of at most
/// `max_batch_size` points with the grid-adapted cut-plane method:
/// recursively bisect the point cloud with axis-aligned cut planes
/// perpendicular to the dimension of largest spread, at the median point.
pub fn make_batches(mut points: Vec<BatchPoint>, max_batch_size: usize) -> Vec<Batch> {
    assert!(max_batch_size >= 1);
    let mut out = Vec::new();
    let mut next_id = 0usize;
    cut_plane(&mut points, max_batch_size, &mut out, &mut next_id);
    out
}

fn cut_plane(
    points: &mut [BatchPoint],
    max_batch_size: usize,
    out: &mut Vec<Batch>,
    next_id: &mut usize,
) {
    if points.len() <= max_batch_size {
        if !points.is_empty() {
            let b = Batch::from_points(*next_id, points.to_vec());
            *next_id += 1;
            out.push(b);
        }
        return;
    }
    // Dimension of largest spread.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in points.iter() {
        for d in 0..3 {
            lo[d] = lo[d].min(p.position[d]);
            hi[d] = hi[d].max(p.position[d]);
        }
    }
    let dim = (0..3)
        .max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .expect("finite extents")
        })
        .expect("three dims");
    // Median split (cut plane through the median point).
    let mid = points.len() / 2;
    points.select_nth_unstable_by(mid, |a, b| {
        a.position[dim]
            .partial_cmp(&b.position[dim])
            .expect("finite coordinates")
    });
    let (left, right) = points.split_at_mut(mid);
    cut_plane(left, max_batch_size, out, next_id);
    cut_plane(right, max_batch_size, out, next_id);
}

/// Build batches straight from an integration grid.
pub fn batches_from_grid(grid: &IntegrationGrid, max_batch_size: usize) -> Vec<Batch> {
    let points: Vec<BatchPoint> = grid
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| BatchPoint {
            position: p.position,
            atom: p.atom,
            grid_index: i as u32,
        })
        .collect();
    make_batches(points, max_batch_size)
}

/// Total number of grid points across batches.
pub fn total_points(batches: &[Batch]) -> usize {
    batches.iter().map(Batch::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::grids::{GridSettings, IntegrationGrid};
    use qp_chem::structures::{polyethylene, water};

    fn cloud(n: usize) -> Vec<BatchPoint> {
        // Deterministic pseudo-random cloud.
        let mut seed = 7u64;
        let mut r = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| BatchPoint {
                position: [r() * 10.0, r() * 4.0, r() * 2.0],
                atom: (i % 17) as u32,
                grid_index: i as u32,
            })
            .collect()
    }

    #[test]
    fn batches_partition_the_points() {
        let pts = cloud(5000);
        let batches = make_batches(pts.clone(), 256);
        assert_eq!(total_points(&batches), 5000);
        // Every original index appears exactly once.
        let mut seen = vec![false; 5000];
        for b in &batches {
            for p in &b.points {
                assert!(!seen[p.grid_index as usize], "duplicate point");
                seen[p.grid_index as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batches_respect_max_size() {
        let batches = make_batches(cloud(5000), 256);
        for b in &batches {
            assert!(b.len() <= 256);
            assert!(!b.is_empty());
        }
    }

    #[test]
    fn batches_are_balanced_within_factor_two() {
        // Median splits guarantee sizes within [max/2, max] except tiny tails.
        let batches = make_batches(cloud(10_000), 200);
        let min = batches.iter().map(Batch::len).min().unwrap();
        assert!(min >= 78, "smallest batch {min}"); // 10000/2^7 = 78.1
    }

    #[test]
    fn batch_center_is_mean_of_points() {
        let pts = cloud(300);
        let batches = make_batches(pts, 1000);
        assert_eq!(batches.len(), 1);
        let b = &batches[0];
        let mut mean = [0.0; 3];
        for p in &b.points {
            for d in 0..3 {
                mean[d] += p.position[d] / 300.0;
            }
        }
        for d in 0..3 {
            assert!((b.center[d] - mean[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn batches_are_spatially_compact() {
        // A batch's extent should be far smaller than the cloud's extent.
        let pts = cloud(20_000);
        let batches = make_batches(pts, 150);
        let mut max_extent: f64 = 0.0;
        for b in &batches {
            let mut lo = [f64::INFINITY; 3];
            let mut hi = [f64::NEG_INFINITY; 3];
            for p in &b.points {
                for d in 0..3 {
                    lo[d] = lo[d].min(p.position[d]);
                    hi[d] = hi[d].max(p.position[d]);
                }
            }
            max_extent = max_extent.max(hi[0] - lo[0]);
        }
        assert!(max_extent < 5.0, "batches not compact: {max_extent}");
    }

    #[test]
    fn batches_from_water_grid() {
        let w = water();
        let grid = IntegrationGrid::build(&w, &GridSettings::coarse());
        let batches = batches_from_grid(&grid, 200);
        assert_eq!(total_points(&batches), grid.len());
        // Every point's atom annotation survives.
        for b in &batches {
            for p in &b.points {
                assert_eq!(
                    grid.points[p.grid_index as usize].atom, p.atom,
                    "atom id mismatch"
                );
            }
        }
    }

    #[test]
    fn polyethylene_batches_split_along_chain() {
        // The chain extends along x, so batch centers must spread mostly in x.
        let p = polyethylene(40);
        let grid = IntegrationGrid::build(&p, &GridSettings::coarse());
        let batches = batches_from_grid(&grid, 200);
        let xs: Vec<f64> = batches.iter().map(|b| b.center[0]).collect();
        let zs: Vec<f64> = batches.iter().map(|b| b.center[2]).collect();
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - v.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&xs) > 10.0 * spread(&zs));
    }

    #[test]
    fn single_point_single_batch() {
        let pts = vec![BatchPoint {
            position: [1.0, 2.0, 3.0],
            atom: 0,
            grid_index: 0,
        }];
        let batches = make_batches(pts, 100);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].center, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn batch_atoms_deduplicated_sorted() {
        let pts = cloud(100);
        let batches = make_batches(pts, 1000);
        let atoms = batches[0].atoms();
        assert!(atoms.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(atoms.len(), 17);
    }
}
