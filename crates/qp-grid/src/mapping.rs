//! Task mapping: assigning batches to MPI processes.
//!
//! Two strategies, exactly as contrasted in Fig. 3 of the paper:
//!
//! * [`LoadBalancingMapping`] — the *existing* strategy (§3.1.1): assign each
//!   new batch to the process that currently owns the fewest grid points,
//!   "without checking to which atoms the grid points in the new batch
//!   belong". Grid points of one atom end up scattered over many processes.
//! * [`LocalityEnhancingMapping`] — the paper's Algorithm 1 (§3.1.3):
//!   recursively bisect the batch set, projecting batch centers onto the
//!   dimension of largest spread and splitting at half the total grid
//!   points, so that neighbouring atoms land on the same process.

use crate::batch::Batch;

/// A strategy that maps batches onto `n_procs` ranks.
pub trait TaskMapping {
    /// Return `assignment[batch_index] = rank`.
    fn assign(&self, batches: &[Batch], n_procs: usize) -> Vec<usize>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The baseline least-loaded ("existing") strategy of §3.1.1.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadBalancingMapping;

impl TaskMapping for LoadBalancingMapping {
    fn assign(&self, batches: &[Batch], n_procs: usize) -> Vec<usize> {
        assert!(n_procs >= 1);
        let mut load = vec![0usize; n_procs];
        let mut assignment = Vec::with_capacity(batches.len());
        for b in batches {
            // The process that currently owns the least grid points; ties
            // break towards the lowest rank (deterministic).
            let rank = (0..n_procs)
                .min_by_key(|&r| (load[r], r))
                .expect("n_procs >= 1");
            load[rank] += b.len();
            assignment.push(rank);
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "existing-load-balancing"
    }
}

/// The paper's locality-enhancing recursive bisection (Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalityEnhancingMapping;

impl TaskMapping for LocalityEnhancingMapping {
    fn assign(&self, batches: &[Batch], n_procs: usize) -> Vec<usize> {
        assert!(n_procs >= 1);
        let mut assignment = vec![usize::MAX; batches.len()];
        let mut indices: Vec<usize> = (0..batches.len()).collect();
        locality_enhancing_mapping(batches, &mut indices, 0, n_procs, &mut assignment);
        debug_assert!(assignment.iter().all(|&r| r != usize::MAX));
        assignment
    }

    fn name(&self) -> &'static str {
        "proposed-locality-enhancing"
    }
}

/// Algorithm 1, lines 1–15. `procs` is the contiguous rank range
/// `[proc_base, proc_base + n_procs)`; `indices` the current batch subset B.
fn locality_enhancing_mapping(
    batches: &[Batch],
    indices: &mut [usize],
    proc_base: usize,
    n_procs: usize,
    assignment: &mut [usize],
) {
    // Line 2-3: single process -> map the whole set to it.
    if n_procs == 1 {
        for &i in indices.iter() {
            assignment[i] = proc_base;
        }
        return;
    }
    // Lines 5-6: split P into P_l (first ceil(n/2)) and P_r.
    let n_left = n_procs.div_ceil(2);
    let n_right = n_procs - n_left;

    // Line 7: the dimension on which the projected batch coordinates spread
    // the largest range.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in indices.iter() {
        for d in 0..3 {
            lo[d] = lo[d].min(batches[i].center[d]);
            hi[d] = hi[d].max(batches[i].center[d]);
        }
    }
    let dim = (0..3)
        .max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .expect("finite spreads")
        })
        .expect("three dims");

    // Line 8: sort batches by their projection on dim (non-decreasing).
    indices.sort_by(|&a, &b| {
        batches[a].center[dim]
            .partial_cmp(&batches[b].center[dim])
            .expect("finite centers")
    });

    // Lines 9-11: pivot at half the total grid points, weighted by the
    // process split so uneven P halves receive proportional work.
    let total: usize = indices.iter().map(|&i| batches[i].len()).sum();
    let pivot = (total as f64 * n_left as f64 / n_procs as f64) as usize;
    let mut acc = 0usize;
    let mut split = 0usize;
    for (pos, &i) in indices.iter().enumerate() {
        if acc + batches[i].len() > pivot {
            split = pos;
            break;
        }
        acc += batches[i].len();
        split = pos + 1;
    }
    // Guarantee both sides non-empty when possible (each process half must
    // receive at least one batch if batches remain).
    split = split.clamp(
        if indices.len() >= n_procs { 1 } else { 0 },
        indices
            .len()
            .saturating_sub(if indices.len() >= n_procs { 1 } else { 0 }),
    );

    let (left, right) = indices.split_at_mut(split);
    // Lines 12-13: recurse.
    locality_enhancing_mapping(batches, left, proc_base, n_left, assignment);
    locality_enhancing_mapping(batches, right, proc_base + n_left, n_right, assignment);
}

/// Per-rank grid-point loads under an assignment.
pub fn rank_loads(batches: &[Batch], assignment: &[usize], n_procs: usize) -> Vec<usize> {
    let mut load = vec![0usize; n_procs];
    for (b, &r) in batches.iter().zip(assignment.iter()) {
        load[r] += b.len();
    }
    load
}

/// Number of distinct ranks that hold at least one grid point of `atom` —
/// the "scattered to a large set of processes" metric of Fig. 3(a), row 1.
pub fn ranks_holding_atom(batches: &[Batch], assignment: &[usize], atom: u32) -> usize {
    let mut ranks: Vec<usize> = batches
        .iter()
        .zip(assignment.iter())
        .filter(|(b, _)| b.points.iter().any(|p| p.atom == atom))
        .map(|(_, &r)| r)
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    ranks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{batches_from_grid, make_batches, BatchPoint};
    use qp_chem::grids::{GridSettings, IntegrationGrid};
    use qp_chem::structures::polyethylene;

    fn chain_batches(n_units: usize) -> Vec<Batch> {
        let s = polyethylene(n_units);
        let grid = IntegrationGrid::build(&s, &GridSettings::coarse());
        batches_from_grid(&grid, 200)
    }

    #[test]
    fn both_strategies_assign_every_batch() {
        let batches = chain_batches(30);
        for strategy in [
            &LoadBalancingMapping as &dyn TaskMapping,
            &LocalityEnhancingMapping as &dyn TaskMapping,
        ] {
            let a = strategy.assign(&batches, 8);
            assert_eq!(a.len(), batches.len());
            assert!(a.iter().all(|&r| r < 8), "{}", strategy.name());
            // All ranks used.
            let loads = rank_loads(&batches, &a, 8);
            assert!(
                loads.iter().all(|&l| l > 0),
                "{}: {loads:?}",
                strategy.name()
            );
        }
    }

    #[test]
    fn load_balancing_balances_points() {
        let batches = chain_batches(40);
        let a = LoadBalancingMapping.assign(&batches, 16);
        let loads = rank_loads(&batches, &a, 16);
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.3, "imbalance {max}/{min}");
    }

    #[test]
    fn locality_mapping_balances_points_too() {
        // Algorithm 1 splits at half the grid points, so loads stay balanced.
        let batches = chain_batches(40);
        let a = LocalityEnhancingMapping.assign(&batches, 16);
        let loads = rank_loads(&batches, &a, 16);
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.6, "imbalance {max}/{min}: {loads:?}");
    }

    #[test]
    fn locality_mapping_keeps_ranks_spatially_contiguous() {
        // For a linear chain, each rank's batch centers must occupy a
        // contiguous x interval, disjoint from other ranks' intervals.
        let batches = chain_batches(60);
        let n_procs = 8;
        let a = LocalityEnhancingMapping.assign(&batches, n_procs);
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); n_procs];
        for (b, &r) in batches.iter().zip(a.iter()) {
            ranges[r].0 = ranges[r].0.min(b.center[0]);
            ranges[r].1 = ranges[r].1.max(b.center[0]);
        }
        let mut sorted = ranges.clone();
        sorted.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap());
        for w in sorted.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-9,
                "rank x-ranges overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn locality_reduces_atom_scatter() {
        // The headline claim of §3.1: under the baseline strategy an atom's
        // grid points land on many ranks; under Algorithm 1 on few.
        let batches = chain_batches(60);
        let n_procs = 16;
        let base = LoadBalancingMapping.assign(&batches, n_procs);
        let prop = LocalityEnhancingMapping.assign(&batches, n_procs);
        let atoms: Vec<u32> = (0..20).map(|i| i * 17).collect();
        let scatter = |a: &[usize]| -> f64 {
            atoms
                .iter()
                .map(|&at| ranks_holding_atom(&batches, a, at) as f64)
                .sum::<f64>()
                / atoms.len() as f64
        };
        let s_base = scatter(&base);
        let s_prop = scatter(&prop);
        assert!(
            s_prop * 2.0 < s_base,
            "scatter not reduced: baseline {s_base}, proposed {s_prop}"
        );
    }

    #[test]
    fn locality_reduces_atoms_per_rank() {
        // Fig. 3 row 2: each rank sees few, localized atoms.
        let batches = chain_batches(60);
        let n_procs = 16;
        let base = LoadBalancingMapping.assign(&batches, n_procs);
        let prop = LocalityEnhancingMapping.assign(&batches, n_procs);
        let atoms_per_rank = |a: &[usize]| -> f64 {
            let mut sets = vec![std::collections::BTreeSet::new(); n_procs];
            for (b, &r) in batches.iter().zip(a.iter()) {
                for p in &b.points {
                    sets[r].insert(p.atom);
                }
            }
            sets.iter().map(|s| s.len() as f64).sum::<f64>() / n_procs as f64
        };
        let apr_base = atoms_per_rank(&base);
        let apr_prop = atoms_per_rank(&prop);
        assert!(
            apr_prop * 2.0 < apr_base,
            "atoms/rank not reduced: {apr_base} vs {apr_prop}"
        );
    }

    #[test]
    fn single_proc_gets_everything() {
        let batches = chain_batches(5);
        for strategy in [
            &LoadBalancingMapping as &dyn TaskMapping,
            &LocalityEnhancingMapping as &dyn TaskMapping,
        ] {
            let a = strategy.assign(&batches, 1);
            assert!(a.iter().all(|&r| r == 0));
        }
    }

    #[test]
    fn more_procs_than_batches_is_handled() {
        let pts: Vec<BatchPoint> = (0..10)
            .map(|i| BatchPoint {
                position: [i as f64, 0.0, 0.0],
                atom: i as u32,
                grid_index: i as u32,
            })
            .collect();
        let batches = make_batches(pts, 2); // 5+ batches
        let nb = batches.len();
        let a = LocalityEnhancingMapping.assign(&batches, nb + 3);
        assert_eq!(a.len(), nb);
        assert!(a.iter().all(|&r| r < nb + 3));
    }

    #[test]
    fn non_power_of_two_procs() {
        let batches = chain_batches(30);
        let a = LocalityEnhancingMapping.assign(&batches, 7);
        let loads = rank_loads(&batches, &a, 7);
        assert!(loads.iter().all(|&l| l > 0), "{loads:?}");
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 2.0, "{loads:?}");
    }
}

/// Space-filling-curve (Morton / Z-order) mapping: quantize batch centers to
/// a 1024³ lattice, sort by interleaved-bit key, and split the curve into
/// `n_procs` contiguous segments of equal grid-point counts.
///
/// Production grid codes often use Hilbert/Morton orders instead of
/// recursive bisection; the batching ablation compares the two. Morton
/// preserves locality well in the bulk but can split across curve
/// discontinuities, which is exactly the trade-off visible in the footprint
/// numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct MortonMapping;

/// Interleave the low 10 bits of (x, y, z) into a 30-bit Morton key.
fn morton_key(q: [u32; 3]) -> u64 {
    fn spread(mut v: u64) -> u64 {
        // Spread 10 bits out to every 3rd position.
        v &= 0x3ff;
        v = (v | (v << 16)) & 0x030000ff;
        v = (v | (v << 8)) & 0x0300f00f;
        v = (v | (v << 4)) & 0x030c30c3;
        v = (v | (v << 2)) & 0x09249249;
        v
    }
    spread(q[0] as u64) | (spread(q[1] as u64) << 1) | (spread(q[2] as u64) << 2)
}

impl TaskMapping for MortonMapping {
    fn assign(&self, batches: &[Batch], n_procs: usize) -> Vec<usize> {
        assert!(n_procs >= 1);
        if batches.is_empty() {
            return Vec::new();
        }
        // Bounding box for quantization.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in batches {
            for d in 0..3 {
                lo[d] = lo[d].min(b.center[d]);
                hi[d] = hi[d].max(b.center[d]);
            }
        }
        let mut order: Vec<usize> = (0..batches.len()).collect();
        let key_of = |b: &Batch| -> u64 {
            let mut q = [0u32; 3];
            for d in 0..3 {
                let span = (hi[d] - lo[d]).max(1e-12);
                q[d] = (((b.center[d] - lo[d]) / span) * 1023.0).round() as u32;
            }
            morton_key(q)
        };
        order.sort_by_key(|&i| key_of(&batches[i]));
        // Split the curve into equal-point segments.
        let total: usize = batches.iter().map(Batch::len).sum();
        let mut assignment = vec![0usize; batches.len()];
        let mut acc = 0usize;
        for &i in &order {
            let rank = ((acc as f64 / total as f64) * n_procs as f64) as usize;
            assignment[i] = rank.min(n_procs - 1);
            acc += batches[i].len();
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "morton-curve"
    }
}

#[cfg(test)]
mod morton_tests {
    use super::*;
    use crate::batch::batches_from_grid;
    use qp_chem::grids::{GridSettings, IntegrationGrid};
    use qp_chem::structures::polyethylene;

    fn chain_batches(n_units: usize) -> Vec<Batch> {
        let s = polyethylene(n_units);
        let grid = IntegrationGrid::build(&s, &GridSettings::coarse());
        batches_from_grid(&grid, 200)
    }

    #[test]
    fn morton_assigns_all_batches_and_balances() {
        let batches = chain_batches(40);
        let a = MortonMapping.assign(&batches, 16);
        assert_eq!(a.len(), batches.len());
        let loads = rank_loads(&batches, &a, 16);
        assert!(loads.iter().all(|&l| l > 0), "{loads:?}");
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.6, "{loads:?}");
    }

    #[test]
    fn morton_reduces_atom_scatter_like_bisection() {
        let batches = chain_batches(60);
        let n_procs = 16;
        let base = LoadBalancingMapping.assign(&batches, n_procs);
        let morton = MortonMapping.assign(&batches, n_procs);
        let atoms: Vec<u32> = (0..20).map(|i| i * 17).collect();
        let scatter = |a: &[usize]| -> f64 {
            atoms
                .iter()
                .map(|&at| ranks_holding_atom(&batches, a, at) as f64)
                .sum::<f64>()
                / atoms.len() as f64
        };
        assert!(
            scatter(&morton) * 2.0 < scatter(&base),
            "morton {} vs baseline {}",
            scatter(&morton),
            scatter(&base)
        );
    }

    #[test]
    fn morton_key_orders_neighbours_near() {
        // Nearby quantized cells share key prefixes: the key of (1,1,1) is
        // closer to (2,2,2) than to (512,512,512).
        let near = morton_key([1, 1, 1]).abs_diff(morton_key([2, 2, 2]));
        let far = morton_key([1, 1, 1]).abs_diff(morton_key([512, 512, 512]));
        assert!(near < far);
    }

    #[test]
    fn morton_single_rank() {
        let batches = chain_batches(5);
        let a = MortonMapping.assign(&batches, 1);
        assert!(a.iter().all(|&r| r == 0));
    }
}
