//! Octree batching: an alternative to the grid-adapted cut-plane method.
//!
//! FHI-aims historically shipped several batching schemes (octree, cut-plane,
//! Hilbert); the paper uses the cut-plane method (ref [23]). This octree
//! variant recursively splits the bounding cube into octants until each leaf
//! holds at most `max_batch_size` points. Compared to median cut-planes it
//! produces more size imbalance (empty octants, small leaves) but strictly
//! axis-aligned cubic batches — the trade-off the batching ablation
//! quantifies.

use crate::batch::{Batch, BatchPoint};

/// Split points into octree-leaf batches of at most `max_batch_size` points.
pub fn make_octree_batches(points: Vec<BatchPoint>, max_batch_size: usize) -> Vec<Batch> {
    assert!(max_batch_size >= 1);
    let mut out = Vec::new();
    let mut next_id = 0usize;
    if points.is_empty() {
        return out;
    }
    // Bounding cube.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in &points {
        for d in 0..3 {
            lo[d] = lo[d].min(p.position[d]);
            hi[d] = hi[d].max(p.position[d]);
        }
    }
    let edge = (0..3)
        .map(|d| hi[d] - lo[d])
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let center = [
        0.5 * (lo[0] + hi[0]),
        0.5 * (lo[1] + hi[1]),
        0.5 * (lo[2] + hi[2]),
    ];
    recurse(
        points,
        center,
        edge,
        max_batch_size,
        &mut out,
        &mut next_id,
        0,
    );
    out
}

fn recurse(
    points: Vec<BatchPoint>,
    center: [f64; 3],
    edge: f64,
    max_batch: usize,
    out: &mut Vec<Batch>,
    next_id: &mut usize,
    depth: usize,
) {
    if points.is_empty() {
        return;
    }
    if points.len() <= max_batch || depth > 40 {
        out.push(batch_from(*next_id, points));
        *next_id += 1;
        return;
    }
    // Partition into the eight octants around the cell center.
    let mut octants: [Vec<BatchPoint>; 8] = Default::default();
    for p in points {
        let mut idx = 0usize;
        for d in 0..3 {
            if p.position[d] >= center[d] {
                idx |= 1 << d;
            }
        }
        octants[idx].push(p);
    }
    let q = edge / 4.0;
    for (idx, pts) in octants.into_iter().enumerate() {
        let child = [
            center[0] + if idx & 1 != 0 { q } else { -q },
            center[1] + if idx & 2 != 0 { q } else { -q },
            center[2] + if idx & 4 != 0 { q } else { -q },
        ];
        recurse(pts, child, edge / 2.0, max_batch, out, next_id, depth + 1);
    }
}

fn batch_from(id: usize, points: Vec<BatchPoint>) -> Batch {
    let mut c = [0.0; 3];
    for p in &points {
        for d in 0..3 {
            c[d] += p.position[d];
        }
    }
    let n = points.len() as f64;
    Batch {
        id,
        points,
        center: [c[0] / n, c[1] / n, c[2] / n],
    }
}

/// Batch-size statistics for comparing batching schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Number of batches.
    pub count: usize,
    /// Smallest batch.
    pub min: usize,
    /// Largest batch.
    pub max: usize,
    /// Mean size.
    pub mean: f64,
    /// Coefficient of variation of sizes (stddev/mean).
    pub cv: f64,
}

/// Compute size statistics of a batch set.
pub fn batch_stats(batches: &[Batch]) -> BatchStats {
    assert!(!batches.is_empty());
    let sizes: Vec<f64> = batches.iter().map(|b| b.len() as f64).collect();
    let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
    let var = sizes.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / sizes.len() as f64;
    BatchStats {
        count: batches.len(),
        min: sizes.iter().cloned().fold(f64::INFINITY, f64::min) as usize,
        max: sizes.iter().cloned().fold(0.0, f64::max) as usize,
        mean,
        cv: var.sqrt() / mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{make_batches, total_points};

    fn cloud(n: usize) -> Vec<BatchPoint> {
        let mut seed = 99u64;
        let mut r = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| BatchPoint {
                position: [r() * 8.0, r() * 8.0, r() * 8.0],
                atom: (i % 9) as u32,
                grid_index: i as u32,
            })
            .collect()
    }

    #[test]
    fn octree_partitions_points() {
        let pts = cloud(4000);
        let batches = make_octree_batches(pts, 120);
        assert_eq!(total_points(&batches), 4000);
        let mut seen = vec![false; 4000];
        for b in &batches {
            assert!(b.len() <= 120);
            for p in &b.points {
                assert!(!seen[p.grid_index as usize]);
                seen[p.grid_index as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn octree_leaves_are_axis_aligned_cells() {
        // Points in one octree leaf span at most the leaf edge; with a cube
        // of edge 8 and <=120-point leaves of 4000 points, leaves sit at
        // depth >= 2, so extents <= 8/4 + eps... just assert far below 8.
        let batches = make_octree_batches(cloud(4000), 120);
        for b in &batches {
            for d in 0..3 {
                let lo = b
                    .points
                    .iter()
                    .map(|p| p.position[d])
                    .fold(f64::INFINITY, f64::min);
                let hi = b
                    .points
                    .iter()
                    .map(|p| p.position[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!(hi - lo <= 4.0 + 1e-9, "leaf extent {}", hi - lo);
            }
        }
    }

    #[test]
    fn cut_plane_is_more_balanced_than_octree() {
        // The documented trade-off: octree leaves vary in size much more.
        let pts = cloud(6000);
        let oct = make_octree_batches(pts.clone(), 150);
        let cut = make_batches(pts, 150);
        let so = batch_stats(&oct);
        let sc = batch_stats(&cut);
        assert!(
            so.cv > 1.5 * sc.cv,
            "octree cv {} should exceed cut-plane cv {}",
            so.cv,
            sc.cv
        );
    }

    #[test]
    fn empty_input() {
        assert!(make_octree_batches(Vec::new(), 10).is_empty());
    }

    #[test]
    fn single_point() {
        let pts = vec![BatchPoint {
            position: [1.0, 1.0, 1.0],
            atom: 0,
            grid_index: 0,
        }];
        let b = make_octree_batches(pts, 10);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].len(), 1);
    }

    #[test]
    fn stats_of_uniform_batches() {
        let pts = cloud(100);
        let batches = make_batches(pts, 1000); // single batch
        let s = batch_stats(&batches);
        assert_eq!(s.count, 1);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.min, 100);
    }
}
