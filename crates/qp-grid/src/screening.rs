//! Sparsity screening: cutoff-sphere neighbor lists and per-batch
//! relevant-atom queries.
//!
//! NAO basis functions have strictly finite support — every shell of an
//! atom shares the element's `cutoff_radius()`, so two atoms can produce a
//! nonzero Hamiltonian/overlap/density pair contribution only when their
//! cutoff spheres overlap (`d < cut_I + cut_J`), and a basis function can be
//! nonzero at a grid point only when the point sits strictly inside the
//! sphere.  This module turns those two predicates into O(n) data
//! structures built on the [`footprint`](crate::footprint) cell list:
//!
//! * [`NeighborList`] — symmetric, self-complete CSR over atom pairs whose
//!   cutoff spheres overlap.  This is the support set of every assembled
//!   operator matrix (entries off this support are *exactly* `+0.0`).
//! * [`BatchScreen`] — point-centred range queries returning the atoms
//!   whose basis functions can reach a batch, using the *same strict `<`
//!   predicate* as `BasisSet::functions_near`, so the screened tabulation
//!   path selects bit-for-bit the same function lists as the dense linear
//!   scan.

use crate::footprint::{per_atom_cutoff, AtomCells};
use qp_chem::geometry::Structure;
use qp_linalg::vecops::dist3;

/// Symmetric atom-pair neighbor list: CSR over atoms whose basis cutoff
/// spheres overlap (`dist < cut_I + cut_J`, strict — matching the exact
/// support of the assembled operators).  Every atom neighbors itself.
#[derive(Debug, Clone)]
pub struct NeighborList {
    /// CSR row pointers, `natoms + 1` entries.
    pub row_ptr: Vec<usize>,
    /// Column indices per row, ascending; row `i` always contains `i`.
    pub cols: Vec<u32>,
    /// Per-atom basis cutoff radius used to build the list.
    pub cutoffs: Vec<f64>,
    max_cutoff: f64,
}

impl NeighborList {
    /// Build from the structure's element cutoff radii.
    pub fn build(structure: &Structure) -> Self {
        Self::with_cutoffs(structure, per_atom_cutoff(structure))
    }

    /// Build with explicit per-atom cutoffs (tests, hypothetical bases).
    pub fn with_cutoffs(structure: &Structure, cutoffs: Vec<f64>) -> Self {
        assert_eq!(cutoffs.len(), structure.len());
        let max_cutoff = cutoffs.iter().cloned().fold(0.0f64, f64::max);
        // Cell edge ~ the largest pair radius keeps the query stencil at
        // 3³ cells while the bins stay dense enough to be worth hashing.
        let cells = AtomCells::build(structure, (2.0 * max_cutoff).max(1e-6));
        let n = structure.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            let pi = structure.atoms[i].position;
            // `atoms_within` uses `<=` on a superset radius; re-apply the
            // strict per-pair predicate so the list matches the operator
            // support exactly.
            for j in cells.atoms_within(pi, cutoffs[i] + max_cutoff) {
                let d = dist3(pi, structure.atoms[j as usize].position);
                if d < cutoffs[i] + cutoffs[j as usize] {
                    cols.push(j);
                }
            }
            row_ptr.push(cols.len());
        }
        NeighborList {
            row_ptr,
            cols,
            cutoffs,
            max_cutoff,
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbors of atom `i` (ascending, includes `i`).
    pub fn neighbours(&self, i: usize) -> &[u32] {
        &self.cols[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Whether `(i, j)` is a surviving pair.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.neighbours(i).binary_search(&(j as u32)).is_ok()
    }

    /// Total stored (directed) pairs.
    pub fn n_pairs(&self) -> usize {
        self.cols.len()
    }

    /// Fraction of the dense `natoms²` pair space that survives screening.
    pub fn fill_ratio(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        self.n_pairs() as f64 / (n * n) as f64
    }

    /// Largest per-atom cutoff.
    pub fn max_cutoff(&self) -> f64 {
        self.max_cutoff
    }

    /// Heap bytes held by the list.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.cols.len() * 4 + self.cutoffs.len() * 8
    }
}

/// Point-centred screening queries: which atoms' basis functions can be
/// nonzero within `extra` of a point.  Backed by the footprint cell list;
/// the strict predicate matches `BasisSet::functions_near` exactly.
#[derive(Debug)]
pub struct BatchScreen {
    cells: AtomCells,
    cutoffs: Vec<f64>,
    max_cutoff: f64,
    positions: Vec<[f64; 3]>,
}

impl BatchScreen {
    /// Build for a structure, taking cutoffs from the element table.
    pub fn build(structure: &Structure) -> Self {
        let cutoffs = per_atom_cutoff(structure);
        let max_cutoff = cutoffs.iter().cloned().fold(0.0f64, f64::max);
        BatchScreen {
            cells: AtomCells::build(structure, max_cutoff.max(1e-6)),
            cutoffs,
            max_cutoff,
            positions: structure.atoms.iter().map(|a| a.position).collect(),
        }
    }

    /// Atoms (ascending) with `dist(p, R_a) < cutoff_a + extra` — the exact
    /// support predicate of `functions_near`, accelerated by the cell list.
    pub fn atoms_near(&self, p: [f64; 3], extra: f64) -> Vec<u32> {
        let mut out = self.cells.atoms_within(p, self.max_cutoff + extra);
        out.retain(|&a| dist3(p, self.positions[a as usize]) < self.cutoffs[a as usize] + extra);
        out
    }

    /// Largest per-atom cutoff.
    pub fn max_cutoff(&self) -> f64 {
        self.max_cutoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::structures::{polyethylene, water};

    #[test]
    fn neighbor_list_symmetric_and_self_complete() {
        for structure in [water(), polyethylene(16)] {
            let nl = NeighborList::build(&structure);
            assert_eq!(nl.len(), structure.len());
            for i in 0..nl.len() {
                // Self-complete: d = 0 < 2·cutoff always survives.
                assert!(nl.contains(i, i), "atom {i} missing from its own row");
                // Symmetric: the pair predicate is symmetric in (i, j).
                for &j in nl.neighbours(i) {
                    assert!(nl.contains(j as usize, i), "pair ({i}, {j}) not symmetric");
                }
                // Rows ascending.
                let row = nl.neighbours(i);
                assert!(row.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn neighbor_list_matches_brute_force() {
        let s = polyethylene(12);
        let nl = NeighborList::build(&s);
        let cut = per_atom_cutoff(&s);
        for i in 0..s.len() {
            for j in 0..s.len() {
                let d = dist3(s.atoms[i].position, s.atoms[j].position);
                assert_eq!(
                    nl.contains(i, j),
                    d < cut[i] + cut[j],
                    "pair ({i}, {j}) at d = {d}"
                );
            }
        }
    }

    #[test]
    fn all_overlapping_cluster_is_complete() {
        // Pathological tight cluster: every pair overlaps, the list is the
        // full n² pair set and screening degrades gracefully to dense.
        let mut s = water();
        for a in s.atoms.iter_mut() {
            for c in a.position.iter_mut() {
                *c *= 0.05;
            }
        }
        let nl = NeighborList::build(&s);
        assert_eq!(nl.n_pairs(), s.len() * s.len());
        assert!((nl.fill_ratio() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn chain_fill_ratio_drops_with_length() {
        let short = NeighborList::build(&polyethylene(4));
        let long = NeighborList::build(&polyethylene(64));
        assert!(long.fill_ratio() < short.fill_ratio());
        // Long chains are O(n): pairs per atom bounded by the chain's
        // geometry, not its length.
        let per_atom = long.n_pairs() as f64 / long.len() as f64;
        assert!(per_atom < 80.0, "pairs per atom {per_atom}");
    }

    #[test]
    fn atoms_near_matches_linear_scan() {
        let s = polyethylene(8);
        let screen = BatchScreen::build(&s);
        let cut = per_atom_cutoff(&s);
        for p in [[0.0, 0.0, 0.0], [5.0, 1.0, -0.5], [40.0, 0.0, 0.2]] {
            for extra in [0.0, 1.5, 4.0] {
                let fast = screen.atoms_near(p, extra);
                let slow: Vec<u32> = (0..s.len() as u32)
                    .filter(|&a| dist3(p, s.atoms[a as usize].position) < cut[a as usize] + extra)
                    .collect();
                assert_eq!(fast, slow, "p = {p:?}, extra = {extra}");
            }
        }
    }
}
