//! Hierarchical multipole far field for the Hartree potential.
//!
//! The direct Rho phase evaluates every atom's partitioned Hartree
//! contribution at every grid point — O(n_points · n_atoms), the last
//! quadratic wall of the density cycle. This module replaces the *far*
//! part of that sum with a cluster hierarchy:
//!
//! * [`ClusterTree`] — an adaptive octree over atom centers. Each node
//!   records the centroid and covering radius of its member atoms.
//! * [`FarField`] — per-node multipole moments, produced by translating
//!   every member atom's far-field tail (`HartreeSolution::tails`, an
//!   ideal point multipole above `r_outer`) to the node centroid with
//!   [`MomentTranslator`]. The translation is exact; the only error is
//!   truncating each cluster expansion at `LMAX_SUPPORTED`.
//!
//! Evaluation walks the tree with a dual acceptance criterion: a node is
//! served from its aggregated expansion only when every member atom is
//! strictly beyond the near radius (`d − radius > r_near`, so the exact
//! path would have used the analytic tail for all of them anyway) *and*
//! the opening angle satisfies `radius ≤ θ·d` with
//! `θ = (0.1·tol)^{1/(lmax+1)}`, bounding the truncation error of each
//! accepted node at ~0.1·tol relative to its own contribution. Atoms that
//! fail either test land in the *near* set and are evaluated through
//! [`HartreeSolution::eval_atoms`] in ascending order — bit-identical to
//! what the direct path computes for those same atoms.

use qp_chem::harmonics::{num_harmonics, LMAX_SUPPORTED};
use qp_chem::multipole::{multipole_tail_fast, HartreeSolution, MomentTranslator};
use qp_linalg::vecops::dist3;

/// One cluster: centroid/radius summary plus the member range in
/// [`ClusterTree::order`].
#[derive(Debug, Clone)]
pub struct ClusterNode {
    /// Centroid of the member atom centers.
    pub center: [f64; 3],
    /// Max distance from the centroid to any member atom.
    pub radius: f64,
    /// Member range `order[start..start + len]`.
    pub start: usize,
    /// Member count.
    pub len: usize,
    /// Child node indices (empty for leaves).
    pub children: Vec<u32>,
}

/// Adaptive octree over atom centers; geometry-only, so one tree serves
/// every SCF/DFPT iteration of a system.
#[derive(Debug)]
pub struct ClusterTree {
    /// Nodes in pre-order; `nodes[0]` is the root.
    pub nodes: Vec<ClusterNode>,
    /// Atom permutation; each node's members are a contiguous slice.
    pub order: Vec<u32>,
    atom_centers: Vec<[f64; 3]>,
}

impl ClusterTree {
    /// Build over `centers` with at most `leaf_max` atoms per leaf.
    pub fn build(centers: &[[f64; 3]], leaf_max: usize) -> ClusterTree {
        assert!(leaf_max >= 1 && !centers.is_empty());
        let mut tree = ClusterTree {
            nodes: Vec::new(),
            order: (0..centers.len() as u32).collect(),
            atom_centers: centers.to_vec(),
        };
        let n = centers.len();
        tree.build_rec(0, n, leaf_max, 0);
        tree
    }

    /// Member atoms of node `ni` (a permutation slice, stable build order).
    pub fn members(&self, ni: usize) -> &[u32] {
        let node = &self.nodes[ni];
        &self.order[node.start..node.start + node.len]
    }

    /// Number of atoms covered.
    pub fn natoms(&self) -> usize {
        self.order.len()
    }

    fn build_rec(&mut self, start: usize, end: usize, leaf_max: usize, depth: usize) -> usize {
        let members = &self.order[start..end];
        let mut c = [0.0f64; 3];
        for &a in members {
            let p = self.atom_centers[a as usize];
            for d in 0..3 {
                c[d] += p[d];
            }
        }
        let inv = 1.0 / members.len() as f64;
        let center = [c[0] * inv, c[1] * inv, c[2] * inv];
        let radius = members
            .iter()
            .map(|&a| dist3(center, self.atom_centers[a as usize]))
            .fold(0.0f64, f64::max);
        let ni = self.nodes.len();
        self.nodes.push(ClusterNode {
            center,
            radius,
            start,
            len: end - start,
            children: Vec::new(),
        });
        if end - start <= leaf_max || depth > 40 {
            return ni;
        }
        // Split at the bounding-box midpoint; stable partition into the
        // octants keeps the build deterministic. Only axes whose extent is
        // a significant share of the longest one take part in the cut: a
        // midpoint cut along a short axis of an elongated cluster (e.g. a
        // polymer chain) groups atoms that sit far apart along the long
        // axis, producing spatially wide small-membership leaves whose
        // radii defeat the multipole acceptance criterion.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for &a in &self.order[start..end] {
            let p = self.atom_centers[a as usize];
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let ext = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        let emax = ext[0].max(ext[1]).max(ext[2]);
        let mid = [
            0.5 * (lo[0] + hi[0]),
            0.5 * (lo[1] + hi[1]),
            0.5 * (lo[2] + hi[2]),
        ];
        let active: Vec<usize> = (0..3).filter(|&d| ext[d] >= 0.5 * emax).collect();
        let octant = |a: u32| -> usize {
            let p = self.atom_centers[a as usize];
            active.iter().enumerate().fold(0usize, |idx, (bit, &d)| {
                if p[d] >= mid[d] {
                    idx | (1 << bit)
                } else {
                    idx
                }
            })
        };
        let mut parts: [Vec<u32>; 8] = Default::default();
        for &a in &self.order[start..end] {
            parts[octant(a)].push(a);
        }
        if parts.iter().filter(|p| !p.is_empty()).count() < 2 {
            // Degenerate (coincident points): stay a leaf.
            return ni;
        }
        let mut cursor = start;
        let mut ranges = Vec::new();
        for part in parts.iter() {
            if part.is_empty() {
                continue;
            }
            self.order[cursor..cursor + part.len()].copy_from_slice(part);
            ranges.push((cursor, cursor + part.len()));
            cursor += part.len();
        }
        let mut children = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            children.push(self.build_rec(s, e, leaf_max, depth + 1) as u32);
        }
        self.nodes[ni].children = children;
        ni
    }
}

/// Read the far-field accuracy budget from `QP_FARFIELD_TOL`
/// (default `1e-8`): the tolerated deviation of the tree-served potential
/// from the direct sum.
pub fn farfield_tol() -> f64 {
    std::env::var("QP_FARFIELD_TOL")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| *t > 0.0)
        .unwrap_or(1e-8)
}

/// Per-node aggregated multipole moments for one [`HartreeSolution`]:
/// rebuilt every Poisson solve (the moments change), reusing the
/// geometry-only [`ClusterTree`].
#[derive(Debug)]
pub struct FarField {
    /// Cluster expansion order (`LMAX_SUPPORTED`).
    pub lmax: usize,
    /// `(lmax+1)²`.
    pub n_lm: usize,
    /// Real moment vector per tree node, about the node centroid.
    moments: Vec<Vec<f64>>,
    /// Opening-angle bound derived from the accuracy budget.
    theta: f64,
    /// Atoms closer than this must go through the exact near path
    /// (`HartreeSolution::r_outer`: beyond it the direct evaluator itself
    /// switches to the analytic tail the cluster expansions aggregate).
    r_near: f64,
}

impl FarField {
    /// Aggregate every atom tail of `sol` into per-node cluster moments.
    /// Nodes are independent — the sweep parallelizes over them, and each
    /// node translates its members in `order` sequence, so the result is
    /// deterministic at any thread count.
    pub fn aggregate(tree: &ClusterTree, sol: &HartreeSolution, tol: f64) -> FarField {
        assert_eq!(tree.natoms(), sol.centers.len());
        let lmax = LMAX_SUPPORTED;
        let n_lm = num_harmonics(lmax);
        let tr = MomentTranslator::new(sol.lmax, lmax);
        let est = (n_lm * num_harmonics(sol.lmax) * 4).max(1) as u64;
        let moments =
            qp_par::map_vec_hinted((0..tree.nodes.len()).collect::<Vec<usize>>(), est, |ni| {
                let node = &tree.nodes[ni];
                let mut q = vec![0.0; n_lm];
                for &ia in tree.members(ni) {
                    tr.translate(
                        &sol.tails[ia as usize],
                        sol.centers[ia as usize],
                        node.center,
                        &mut q,
                    );
                }
                q
            });
        let theta = (0.1 * tol).powf(1.0 / (lmax + 1) as f64).clamp(0.05, 0.6);
        FarField {
            lmax,
            n_lm,
            moments,
            theta,
            r_near: sol.r_outer,
        }
    }

    /// Whether node `ni` may be served from its aggregated expansion when
    /// evaluating at `p`.
    fn accepts(&self, node: &ClusterNode, d: f64) -> bool {
        d - node.radius > self.r_near && node.radius <= self.theta * d
    }

    /// Near/far split at `p`: the near part is
    /// `sol.eval_atoms(p, near_atoms)` over the ascending near set
    /// (bit-identical to the direct path's contribution of those atoms);
    /// the far part sums accepted cluster expansions.
    pub fn eval_split(&self, tree: &ClusterTree, sol: &HartreeSolution, p: [f64; 3]) -> (f64, f64) {
        let mut near: Vec<usize> = Vec::new();
        let mut far = 0.0;
        let mut ylm = vec![0.0; self.n_lm];
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let node = &tree.nodes[ni];
            let d = dist3(p, node.center);
            if self.accepts(node, d) {
                far += multipole_tail_fast(&self.moments[ni], self.lmax, node.center, p, &mut ylm);
            } else if node.children.is_empty() {
                near.extend(tree.members(ni).iter().map(|&a| a as usize));
            } else {
                for &c in node.children.iter().rev() {
                    stack.push(c as usize);
                }
            }
        }
        near.sort_unstable();
        (sol.eval_atoms(p, near), far)
    }

    /// Tree-served total potential at `p` (near + far).
    pub fn eval(&self, tree: &ClusterTree, sol: &HartreeSolution, p: [f64; 3]) -> f64 {
        let (near, far) = self.eval_split(tree, sol, p);
        near + far
    }

    /// The ascending near-set at `p` — every atom whose contribution the
    /// split evaluates exactly. Always a superset of the atoms within
    /// `r_near` of `p` (tests pin this).
    pub fn near_atoms(&self, tree: &ClusterTree, p: [f64; 3]) -> Vec<usize> {
        let mut near: Vec<usize> = Vec::new();
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let node = &tree.nodes[ni];
            let d = dist3(p, node.center);
            if self.accepts(node, d) {
                continue;
            }
            if node.children.is_empty() {
                near.extend(tree.members(ni).iter().map(|&a| a as usize));
            } else {
                for &c in node.children.iter().rev() {
                    stack.push(c as usize);
                }
            }
        }
        near.sort_unstable();
        near
    }

    /// Heap bytes of the aggregated moment tables.
    pub fn memory_bytes(&self) -> usize {
        self.moments.iter().map(|m| m.len() * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::grids::{GridSettings, IntegrationGrid};
    use qp_chem::multipole::{solve_poisson, MultipoleMoments};
    use qp_chem::structures::polyethylene;

    #[test]
    fn tree_partitions_atoms_with_covering_radii() {
        let s = polyethylene(40);
        let centers: Vec<[f64; 3]> = s.atoms.iter().map(|a| a.position).collect();
        let tree = ClusterTree::build(&centers, 8);
        // Root covers everything; order is a permutation.
        assert_eq!(tree.nodes[0].len, centers.len());
        let mut seen = vec![false; centers.len()];
        for &a in tree.members(0) {
            assert!(!seen[a as usize]);
            seen[a as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        for (ni, node) in tree.nodes.iter().enumerate() {
            // Radius covers every member.
            for &a in tree.members(ni) {
                assert!(
                    dist3(node.center, centers[a as usize]) <= node.radius + 1e-12,
                    "node {ni} member {a} outside radius"
                );
            }
            // Children partition the parent's range exactly.
            if !node.children.is_empty() {
                let mut cursor = node.start;
                for &c in &node.children {
                    let ch = &tree.nodes[c as usize];
                    assert_eq!(ch.start, cursor);
                    cursor += ch.len;
                }
                assert_eq!(cursor, node.start + node.len);
            } else {
                assert!(node.len <= 8 || node.radius == 0.0);
            }
        }
    }

    #[test]
    fn degenerate_coincident_atoms_become_a_leaf() {
        let centers = vec![[1.0, 2.0, 3.0]; 30];
        let tree = ClusterTree::build(&centers, 8);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.nodes[0].radius, 0.0);
    }

    #[test]
    fn far_field_matches_direct_within_budget() {
        // A long chain with a smooth synthetic density: the tree-served
        // potential must agree with the direct per-atom sum within the
        // accuracy budget at every grid point, and the near sets must
        // cover every atom inside r_outer.
        let s = polyethylene(24);
        let mut gs = GridSettings::coarse();
        gs.n_radial = 8;
        gs.max_angular = 6;
        gs.min_angular = 6;
        let grid = IntegrationGrid::build(&s, &gs);
        let n: Vec<f64> = grid
            .points
            .iter()
            .map(|p| (1.0 + 0.1 * p.position[0]).abs() * 1e-3)
            .collect();
        let mom = MultipoleMoments::compute(&s, &grid, &n, 2);
        let sol = solve_poisson(&s, &grid, &mom);
        let centers: Vec<[f64; 3]> = s.atoms.iter().map(|a| a.position).collect();
        let tree = ClusterTree::build(&centers, 8);
        let tol = 1e-8;
        let far = FarField::aggregate(&tree, &sol, tol);
        assert!(far.memory_bytes() > 0);
        for ip in (0..grid.points.len()).step_by(13) {
            let p = grid.points[ip].position;
            let direct = sol.eval(p);
            let treed = far.eval(&tree, &sol, p);
            assert!(
                (treed - direct).abs() <= tol * direct.abs().max(1.0),
                "point {ip}: tree {treed} vs direct {direct}"
            );
            let near = far.near_atoms(&tree, p);
            for (ia, c) in centers.iter().enumerate() {
                if dist3(p, *c) <= sol.r_outer {
                    assert!(
                        near.binary_search(&ia).is_ok(),
                        "atom {ia} within r_outer missing from near set"
                    );
                }
            }
            // Near contribution is the exact eval_atoms sum over the set.
            let (near_v, far_v) = far.eval_split(&tree, &sol, p);
            let oracle = sol.eval_atoms(p, near.iter().copied());
            assert_eq!(near_v.to_bits(), oracle.to_bits());
            assert_eq!((near_v + far_v).to_bits(), treed.to_bits());
        }
    }

    /// Synthetic [`HartreeSolution`] over hand-placed atoms: random tails
    /// (ideal point multipoles above `r_outer`) and smooth radial splines
    /// below it — everything the tree path touches, without a full grid +
    /// Poisson solve per proptest case.
    fn synthetic_solution(centers: &[[f64; 3]], lmax: usize, tails: &[f64]) -> HartreeSolution {
        use qp_chem::harmonics::num_harmonics;
        use qp_chem::spline::CubicSpline;
        let n_lm = num_harmonics(lmax);
        let r_outer = 3.0;
        let radii: Vec<f64> = (0..12)
            .map(|i| 0.05 + (i as f64) * (r_outer - 0.05) / 11.0)
            .collect();
        let mut atom_tails = Vec::with_capacity(centers.len());
        let mut splines = Vec::with_capacity(centers.len());
        for ia in 0..centers.len() {
            let q: Vec<f64> = (0..n_lm)
                .map(|lm| tails[(ia * n_lm + lm) % tails.len()])
                .collect();
            let atom_splines: Vec<CubicSpline> = (0..n_lm)
                .map(|lm| {
                    let v: Vec<f64> = radii.iter().map(|r| q[lm] / (1.0 + r * r)).collect();
                    CubicSpline::natural(radii.clone(), v)
                })
                .collect();
            atom_tails.push(q);
            splines.push(atom_splines);
        }
        HartreeSolution {
            lmax,
            n_lm: num_harmonics(lmax),
            centers: centers.to_vec(),
            splines,
            tails: atom_tails,
            r_outer,
        }
    }

    mod random_geometries {
        use super::super::*;
        use super::synthetic_solution;
        use proptest::prelude::*;

        // On random atom clouds: (i) every atom within the near radius is
        // served by the exact near path, whose partial sum is bit-identical
        // to the direct evaluator restricted to the near set; (ii) the
        // tree-served total agrees with the full direct sum within the
        // far-field accuracy budget.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn near_bit_identity_and_total_within_budget(
                coords in prop::collection::vec(-20.0f64..20.0, 3 * 4..3 * 24),
                tails in prop::collection::vec(-1.0f64..1.0, 9..36),
                px in -25.0f64..25.0,
                py in -25.0f64..25.0,
                pz in -25.0f64..25.0,
            ) {
                let centers: Vec<[f64; 3]> = coords
                    .chunks_exact(3)
                    .map(|c| [c[0], c[1], c[2]])
                    .collect();
                let sol = synthetic_solution(&centers, 2, &tails);
                let tree = ClusterTree::build(&centers, 3);
                let tol = farfield_tol();
                let far = FarField::aggregate(&tree, &sol, tol);
                let p = [px, py, pz];

                // (i) near-field bit-identity within the cutoff.
                let near = far.near_atoms(&tree, p);
                for (ia, c) in centers.iter().enumerate() {
                    if dist3(p, *c) <= sol.r_outer {
                        prop_assert!(
                            near.binary_search(&ia).is_ok(),
                            "atom {ia} within r_outer missing from near set"
                        );
                    }
                }
                let (near_v, far_v) = far.eval_split(&tree, &sol, p);
                let near_oracle = sol.eval_atoms(p, near.iter().copied());
                prop_assert_eq!(near_v.to_bits(), near_oracle.to_bits());

                // (ii) total within QP_FARFIELD_TOL of the direct sum.
                let direct = sol.eval(p);
                let treed = near_v + far_v;
                prop_assert!(
                    (treed - direct).abs() <= tol * direct.abs().max(1.0),
                    "tree {} vs direct {} (tol {})", treed, direct, tol
                );
            }
        }
    }
}
