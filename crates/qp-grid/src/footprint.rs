//! Per-rank footprint analysis: the memory and redundancy consequences of a
//! task mapping.
//!
//! This module quantifies exactly what Fig. 3 and Fig. 9(a,c) of the paper
//! compare:
//!
//! * Under the **existing** mapping each rank touches delocalized atoms, so
//!   it must keep the *global sparse* Hamiltonian (CSR) — size independent of
//!   the rank count ([`FootprintReport::global_csr_bytes`]).
//! * Under the **proposed** mapping each rank touches a compact atom cluster
//!   and keeps only a *small dense* block
//!   ([`RankFootprint::dense_bytes`]).
//! * The number of per-atom cubic-spline tables the response-potential phase
//!   constructs on a rank equals the number of distinct atoms within
//!   multipole range of the rank's grid points
//!   ([`RankFootprint::spline_atoms`], Fig. 9c).

use crate::batch::Batch;
use qp_chem::basis::BasisSettings;
use qp_chem::geometry::Structure;
use qp_linalg::vecops::dist3;
use std::collections::{BTreeSet, HashMap};

/// Per-atom basis-function counts for a structure at given settings.
pub fn per_atom_basis(structure: &Structure, settings: BasisSettings) -> Vec<usize> {
    structure
        .atoms
        .iter()
        .map(|a| match settings {
            BasisSettings::Light => a.element.num_basis_light(),
            BasisSettings::Tier2 => a.element.num_basis_tier2(),
        })
        .collect()
}

/// Per-atom basis cutoff radii.
pub fn per_atom_cutoff(structure: &Structure) -> Vec<f64> {
    structure
        .atoms
        .iter()
        .map(|a| a.element.cutoff_radius())
        .collect()
}

/// Uniform cell list over atom positions for point-to-atom range queries.
#[derive(Debug)]
pub struct AtomCells {
    cell: f64,
    origin: [f64; 3],
    bins: HashMap<(i64, i64, i64), Vec<u32>>,
    positions: Vec<[f64; 3]>,
}

impl AtomCells {
    /// Build with the given cell edge (should be ≥ the largest query radius
    /// divided by ~2; queries scan the ±⌈r/cell⌉ neighbourhood).
    pub fn build(structure: &Structure, cell: f64) -> Self {
        let (lo, _) = structure.bounding_box();
        let mut bins: HashMap<(i64, i64, i64), Vec<u32>> = HashMap::new();
        for (i, a) in structure.atoms.iter().enumerate() {
            let k = (
                ((a.position[0] - lo[0]) / cell).floor() as i64,
                ((a.position[1] - lo[1]) / cell).floor() as i64,
                ((a.position[2] - lo[2]) / cell).floor() as i64,
            );
            bins.entry(k).or_default().push(i as u32);
        }
        AtomCells {
            cell,
            origin: lo,
            bins,
            positions: structure.atoms.iter().map(|a| a.position).collect(),
        }
    }

    /// Atoms within `radius` of `p`.
    pub fn atoms_within(&self, p: [f64; 3], radius: f64) -> Vec<u32> {
        let reach = (radius / self.cell).ceil() as i64;
        let kx = ((p[0] - self.origin[0]) / self.cell).floor() as i64;
        let ky = ((p[1] - self.origin[1]) / self.cell).floor() as i64;
        let kz = ((p[2] - self.origin[2]) / self.cell).floor() as i64;
        let mut out = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    if let Some(v) = self.bins.get(&(kx + dx, ky + dy, kz + dz)) {
                        for &ia in v {
                            if dist3(p, self.positions[ia as usize]) <= radius {
                                out.push(ia);
                            }
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// What one rank holds under a mapping.
#[derive(Debug, Clone)]
pub struct RankFootprint {
    /// Rank index.
    pub rank: usize,
    /// Grid points held.
    pub n_points: usize,
    /// Batches held.
    pub n_batches: usize,
    /// Atoms within basis range of any held point (the atoms whose basis
    /// functions the rank's Hamiltonian block involves).
    pub relevant_atoms: Vec<u32>,
    /// Total basis functions of the relevant atoms (`N_b` local).
    pub local_basis: usize,
    /// Bytes of the small dense local Hamiltonian: `local_basis² × 8`.
    pub dense_bytes: usize,
    /// Distinct atoms needing cubic-spline tables on this rank during the
    /// response-potential phase (atoms within multipole range of any point).
    pub spline_atoms: usize,
}

/// Full report for one mapping of one system.
#[derive(Debug, Clone)]
pub struct FootprintReport {
    /// Per-rank footprints.
    pub per_rank: Vec<RankFootprint>,
    /// Bytes of the global sparse Hamiltonian in CSR — what the *existing*
    /// strategy stores on every rank (§3.1.1).
    pub global_csr_bytes: usize,
    /// Total basis functions of the system.
    pub global_basis: usize,
}

impl FootprintReport {
    /// Mean dense bytes across ranks.
    pub fn mean_dense_bytes(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.per_rank
            .iter()
            .map(|r| r.dense_bytes as f64)
            .sum::<f64>()
            / self.per_rank.len() as f64
    }

    /// Maximum dense bytes across ranks.
    pub fn max_dense_bytes(&self) -> usize {
        self.per_rank
            .iter()
            .map(|r| r.dense_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Mean spline-atom count across ranks.
    pub fn mean_spline_atoms(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.per_rank
            .iter()
            .map(|r| r.spline_atoms as f64)
            .sum::<f64>()
            / self.per_rank.len() as f64
    }
}

/// Exact byte count of the global sparse Hamiltonian in CSR format:
/// `H_{μν} ≠ 0` whenever the basis supports of the centering atoms overlap
/// (`|R_I − R_J| < cut_I + cut_J`).
pub fn global_csr_bytes(structure: &Structure, basis: &[usize], cutoffs: &[f64]) -> usize {
    let max_cut = cutoffs.iter().cloned().fold(0.0, f64::max);
    let neighbours = structure.neighbours_within(2.0 * max_cut);
    let mut nnz: u128 = 0;
    for (i, neigh) in neighbours.iter().enumerate() {
        nnz += (basis[i] * basis[i]) as u128; // diagonal atom block
        for &j in neigh {
            let d = dist3(structure.atoms[i].position, structure.atoms[j].position);
            if d < cutoffs[i] + cutoffs[j] {
                nnz += (basis[i] * basis[j]) as u128;
            }
        }
    }
    let nb: usize = basis.iter().sum();
    // values (f64) + col indices (usize) + row pointers (usize).
    (nnz * 16) as usize + (nb + 1) * 8
}

/// Analyze a mapping: per-rank footprints plus the global-CSR alternative.
///
/// * `basis`, `cutoffs` — per-atom basis sizes and basis cutoff radii.
/// * `spline_range` — multipole interpolation range (the `r_outer` of the
///   Hartree solver); atoms within this range of a rank's points need their
///   spline tables on that rank.
pub fn analyze(
    structure: &Structure,
    batches: &[Batch],
    assignment: &[usize],
    n_procs: usize,
    basis: &[usize],
    cutoffs: &[f64],
    spline_range: f64,
) -> FootprintReport {
    assert_eq!(batches.len(), assignment.len());
    let mut span = qp_trace::SpanGuard::begin(
        qp_trace::thread_rank(),
        qp_trace::Phase::Grid,
        "footprint.analyze",
    );
    if span.is_recording() {
        span.arg("atoms", structure.len())
            .arg("batches", batches.len())
            .arg("ranks", n_procs);
    }
    let max_cut = cutoffs.iter().cloned().fold(0.0, f64::max);
    let cells = AtomCells::build(structure, max_cut.max(spline_range).max(1.0));

    let mut relevant: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n_procs];
    let mut spline: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n_procs];
    let mut n_points = vec![0usize; n_procs];
    let mut n_batches = vec![0usize; n_procs];

    for (b, &rank) in batches.iter().zip(assignment.iter()) {
        n_points[rank] += b.len();
        n_batches[rank] += 1;
        // Query once per batch using center + batch radius (cheap, exact
        // superset; per-point refinement below).
        let radius = b
            .points
            .iter()
            .map(|p| dist3(p.position, b.center))
            .fold(0.0, f64::max);
        for ia in cells.atoms_within(b.center, radius + max_cut) {
            // Refine: keep the atom if any point is within its own cutoff.
            let pos = structure.atoms[ia as usize].position;
            let cut = cutoffs[ia as usize];
            if b.points.iter().any(|p| dist3(p.position, pos) < cut) {
                relevant[rank].insert(ia);
            }
        }
        for ia in cells.atoms_within(b.center, radius + spline_range) {
            let pos = structure.atoms[ia as usize].position;
            if b.points
                .iter()
                .any(|p| dist3(p.position, pos) < spline_range)
            {
                spline[rank].insert(ia);
            }
        }
    }

    let per_rank = (0..n_procs)
        .map(|rank| {
            let atoms: Vec<u32> = relevant[rank].iter().copied().collect();
            let local_basis: usize = atoms.iter().map(|&a| basis[a as usize]).sum();
            RankFootprint {
                rank,
                n_points: n_points[rank],
                n_batches: n_batches[rank],
                dense_bytes: local_basis * local_basis * 8,
                local_basis,
                relevant_atoms: atoms,
                spline_atoms: spline[rank].len(),
            }
        })
        .collect();

    let report = FootprintReport {
        per_rank,
        global_csr_bytes: global_csr_bytes(structure, basis, cutoffs),
        global_basis: basis.iter().sum(),
    };
    // Publish the Fig. 9 quantities as labeled gauges (latest analysis wins
    // per rank count).
    let ranks_label = n_procs.to_string();
    let labels = [("ranks", ranks_label.as_str())];
    let metrics = qp_trace::global_metrics();
    metrics
        .gauge("grid.footprint.global_csr_bytes", &labels)
        .set(report.global_csr_bytes as f64);
    metrics
        .gauge("grid.footprint.mean_dense_bytes", &labels)
        .set(report.mean_dense_bytes());
    metrics
        .gauge("grid.footprint.max_dense_bytes", &labels)
        .set(report.max_dense_bytes() as f64);
    metrics
        .gauge("grid.footprint.mean_spline_atoms", &labels)
        .set(report.mean_spline_atoms());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::batches_from_grid;
    use crate::mapping::{LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};
    use qp_chem::grids::{GridSettings, IntegrationGrid};
    use qp_chem::structures::{polyethylene, water};

    fn setup(n_units: usize, n_procs: usize) -> (Structure, Vec<Batch>, Vec<usize>, Vec<usize>) {
        let s = polyethylene(n_units);
        let grid = IntegrationGrid::build(&s, &GridSettings::coarse());
        let batches = batches_from_grid(&grid, 200);
        let base = LoadBalancingMapping.assign(&batches, n_procs);
        let prop = LocalityEnhancingMapping.assign(&batches, n_procs);
        (s, batches, base, prop)
    }

    #[test]
    fn atom_cells_match_brute_force() {
        let s = polyethylene(10);
        let cells = AtomCells::build(&s, 3.0);
        let p = [5.0, 1.0, 0.5];
        for radius in [2.0, 5.0, 9.0] {
            let fast = cells.atoms_within(p, radius);
            let brute: Vec<u32> = s
                .atoms
                .iter()
                .enumerate()
                .filter(|(_, a)| dist3(p, a.position) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(fast, brute, "radius {radius}");
        }
    }

    #[test]
    fn dense_footprint_much_smaller_than_global_csr() {
        // The Fig. 9(a) claim: 2 orders of magnitude.
        let (s, batches, _, prop) = setup(120, 32);
        let basis = per_atom_basis(&s, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&s);
        let report = analyze(&s, &batches, &prop, 32, &basis, &cutoffs, 8.0);
        assert!(report.global_csr_bytes > 0);
        assert!(
            (report.mean_dense_bytes() as usize) * 10 < report.global_csr_bytes,
            "dense {} vs csr {}",
            report.mean_dense_bytes(),
            report.global_csr_bytes
        );
    }

    #[test]
    fn locality_shrinks_dense_blocks() {
        let (s, batches, base, prop) = setup(120, 32);
        let basis = per_atom_basis(&s, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&s);
        let rb = analyze(&s, &batches, &base, 32, &basis, &cutoffs, 8.0);
        let rp = analyze(&s, &batches, &prop, 32, &basis, &cutoffs, 8.0);
        assert!(
            rp.mean_dense_bytes() * 3.0 < rb.mean_dense_bytes(),
            "proposed {} vs baseline {}",
            rp.mean_dense_bytes(),
            rb.mean_dense_bytes()
        );
    }

    #[test]
    fn locality_shrinks_spline_counts() {
        // Fig. 9(c): fewer cubic splines per rank under the proposed mapping.
        let (s, batches, base, prop) = setup(120, 32);
        let basis = per_atom_basis(&s, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&s);
        let rb = analyze(&s, &batches, &base, 32, &basis, &cutoffs, 8.0);
        let rp = analyze(&s, &batches, &prop, 32, &basis, &cutoffs, 8.0);
        assert!(
            rp.mean_spline_atoms() * 2.0 < rb.mean_spline_atoms(),
            "proposed {} vs baseline {}",
            rp.mean_spline_atoms(),
            rb.mean_spline_atoms()
        );
    }

    #[test]
    fn more_ranks_shrink_proposed_but_not_csr() {
        // Fig. 9(a)'s x axis: the proposed footprint falls with rank count,
        // the existing (global CSR) one is flat.
        let s = polyethylene(120);
        let grid = IntegrationGrid::build(&s, &GridSettings::coarse());
        let batches = batches_from_grid(&grid, 200);
        let basis = per_atom_basis(&s, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&s);
        let mut prev_dense = f64::INFINITY;
        let mut csr = Vec::new();
        for n_procs in [8, 16, 32, 64] {
            let a = LocalityEnhancingMapping.assign(&batches, n_procs);
            let r = analyze(&s, &batches, &a, n_procs, &basis, &cutoffs, 8.0);
            assert!(
                r.mean_dense_bytes() <= prev_dense,
                "dense bytes grew at {n_procs} ranks"
            );
            prev_dense = r.mean_dense_bytes();
            csr.push(r.global_csr_bytes);
        }
        assert!(csr.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn global_basis_counts() {
        let w = water();
        let basis = per_atom_basis(&w, BasisSettings::Light);
        assert_eq!(basis, vec![5, 1, 1]);
        let grid = IntegrationGrid::build(&w, &GridSettings::coarse());
        let batches = batches_from_grid(&grid, 100);
        let a = LocalityEnhancingMapping.assign(&batches, 2);
        let cutoffs = per_atom_cutoff(&w);
        let r = analyze(&w, &batches, &a, 2, &basis, &cutoffs, 8.0);
        assert_eq!(r.global_basis, 7);
        // Water is tiny: every rank sees all three atoms.
        for rf in &r.per_rank {
            assert_eq!(rf.local_basis, 7);
            assert_eq!(rf.dense_bytes, 7 * 7 * 8);
        }
    }

    #[test]
    fn csr_bytes_scale_linearly_in_chain_length() {
        let basis_of = |s: &Structure| per_atom_basis(s, BasisSettings::Light);
        let s1 = polyethylene(50);
        let s2 = polyethylene(100);
        let b1 = global_csr_bytes(&s1, &basis_of(&s1), &per_atom_cutoff(&s1));
        let b2 = global_csr_bytes(&s2, &basis_of(&s2), &per_atom_cutoff(&s2));
        let ratio = b2 as f64 / b1 as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }
}
