//! # qp-grid
//!
//! Grid batching and task mapping — the scalability core of the paper (§3.1).
//!
//! * [`batch`] — grid points are divided into disjoint *batches* of bounded
//!   size with a grid-adapted cut-plane method (paper ref [23], Fig. 2).
//! * [`mapping`] — two strategies assign batches to MPI processes: the
//!   baseline load-balancing strategy (least-loaded process, §3.1.1) and the
//!   paper's locality-enhancing recursive bisection (Algorithm 1, §3.1.3).
//! * [`footprint`] — per-rank analysis of what each strategy costs: which
//!   atoms a rank touches, the Hamiltonian storage it therefore needs (global
//!   sparse CSR vs. small dense block — Fig. 3), and how many cubic-spline
//!   tables the response-potential phase must construct on that rank
//!   (Fig. 4 / Fig. 9c).

// `for d in 0..3` indexing several parallel arrays at once is the clearest
// form for Cartesian components; the iterator rewrite obscures it.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod farfield;
pub mod footprint;
pub mod mapping;
pub mod octree;
pub mod screening;

pub use batch::{make_batches, Batch, BatchPoint};
pub use farfield::{farfield_tol, ClusterNode, ClusterTree, FarField};
pub use footprint::{FootprintReport, RankFootprint};
pub use mapping::{LoadBalancingMapping, LocalityEnhancingMapping, MortonMapping, TaskMapping};
pub use screening::{BatchScreen, NeighborList};
