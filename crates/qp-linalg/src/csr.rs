//! Compressed sparse row matrices.
//!
//! §3.1.1 of the paper identifies the *large sparse Hamiltonian in CSR
//! format* as the memory-explosion obstacle of the baseline load-balancing
//! task mapping: fetching one element `H(φi, φj)` needs at least three
//! memory accesses (`row`, `col`, `val`).  This type reproduces that storage
//! scheme faithfully, including the per-element access-count bookkeeping that
//! the Fig. 9(b) experiment relies on.

use crate::dense::DMatrix;
use crate::{LinalgError, Result};

/// CSR sparse matrix (`f64` values, `usize` indices like the Fortran original
/// uses default integers).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry.
    col_idx: Vec<usize>,
    /// Stored values.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from unordered `(row, col, value)` triplets; duplicate entries
    /// are summed (the natural semantics for grid-batch accumulation).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for (r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "CsrMatrix::from_triplets",
                    dims: vec![rows, cols, r, c],
                });
            }
            by_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in by_row.iter_mut() {
            row.sort_by_key(|&(c, _)| c);
            let mut last_col = usize::MAX;
            for &(c, v) in row.iter() {
                if c == last_col {
                    *values.last_mut().expect("entry exists") += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                    last_col = c;
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Convert a dense matrix, dropping entries with `|v| <= threshold`.
    pub fn from_dense(m: &DMatrix, threshold: f64) -> Self {
        let triplets = (0..m.rows()).flat_map(|i| {
            (0..m.cols()).filter_map(move |j| {
                let v = m[(i, j)];
                (v.abs() > threshold).then_some((i, j, v))
            })
        });
        CsrMatrix::from_triplets(m.rows(), m.cols(), triplets).expect("dense dims are consistent")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `nnz / (rows*cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Exact heap footprint in bytes: `row_ptr` + `col_idx` + `values`.
    ///
    /// This is the quantity that explodes in Fig. 9(a) under the baseline
    /// mapping (21 373 KB per process for the 9 210-basis RBD system).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Fetch element `(i, j)`, performing the CSR walk.  Returns the value
    /// and the number of memory accesses the walk needed (≥ 3 for a hit, as
    /// the paper's Fig. 3(a) annotation states).
    pub fn get_counted(&self, i: usize, j: usize) -> (f64, usize) {
        // 1 access for row_ptr[i], 1 for row_ptr[i+1].
        let mut accesses = 2usize;
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        let slice = &self.col_idx[lo..hi];
        // Binary search over col_idx: each probe is one memory access.
        let mut left = 0usize;
        let mut right = slice.len();
        while left < right {
            let mid = (left + right) / 2;
            accesses += 1;
            match slice[mid].cmp(&j) {
                std::cmp::Ordering::Equal => {
                    accesses += 1; // the value load
                    return (self.values[lo + mid], accesses);
                }
                std::cmp::Ordering::Less => left = mid + 1,
                std::cmp::Ordering::Greater => right = mid,
            }
        }
        (0.0, accesses)
    }

    /// Fetch element `(i, j)` without instrumentation.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.get_counted(i, j).0
    }

    /// Sparse matrix–vector product.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "spmv",
                dims: vec![self.rows, self.cols, x.len()],
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Expand back to dense storage.
    pub fn to_dense(&self) -> DMatrix {
        let mut m = DMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Iterate over stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.row_ptr[i]..self.row_ptr[i + 1])
                .map(move |k| (i, self.col_idx[k], self.values[k]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            vec![(0, 1, 2.0), (0, 3, 4.0), (1, 0, -1.0), (2, 2, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let m = sample();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 3), 4.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m =
            CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn get_counted_needs_at_least_three_accesses() {
        let m = sample();
        let (v, acc) = m.get_counted(0, 1);
        assert_eq!(v, 2.0);
        assert!(acc >= 3, "CSR hit should cost >= 3 accesses, got {acc}");
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(m, back);
    }

    #[test]
    fn spmv_matches_dense_matvec() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let sparse = m.spmv(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn memory_accounting() {
        let m = sample();
        // row_ptr: 4 usize, col_idx: 4 usize, values: 4 f64.
        assert_eq!(m.memory_bytes(), 4 * 8 + 4 * 8 + 4 * 8);
    }

    #[test]
    fn density_fraction() {
        let m = sample();
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-14);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
    }

    #[test]
    fn iter_yields_all_entries_in_row_order() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 1, 2.0), (0, 3, 4.0), (1, 0, -1.0), (2, 2, 5.0)]
        );
    }
}
