//! Cache-blocked, register-tiled GEMM (the BLIS/GotoBLAS decomposition).
//!
//! `C += A·B` is decomposed into three cache-blocking loops (NC columns of
//! B in L3, KC×NC packed B panel in L2, MC×KC packed A block in L1) around
//! an MR×NR register microkernel over zero-padded packed panels. The same
//! kernel serves `DMatrix::matmul` (serial) and `DMatrix::par_matmul`
//! (parallel over MC row blocks): a given C element is owned by exactly one
//! row block and accumulates its k-contributions in the same fixed order
//! (ascending `pc` blocks, ascending `k` within a block) on every path, so
//! serial and parallel results are **bit-identical** — the determinism
//! contract the SCF/DFPT drivers and qp-resil's bit-exact recovery rely on.
//!
//! Dense means dense: there is no zero-skip branch anywhere (the old
//! `matmul` skipped `aik == 0.0`, silently changing flop counts between
//! dense and sparse-ish inputs); sparsity belongs to the CSR path.
//!
//! The MR×NR microkernel is runtime-dispatched: an AVX2 `std::arch` path
//! on x86_64 hosts that support it, and the portable scalar loop
//! everywhere else (`QP_GEMM_KERNEL=scalar|avx2|auto` overrides, and
//! [`set_microkernel`] switches at runtime for tests/benches). The AVX2
//! kernel deliberately uses separate `mul`/`add` — **no FMA** — and seeds
//! its vector accumulators from `acc`, so every C element sees the exact
//! same IEEE operation sequence as the scalar kernel: SIMD and scalar
//! results are bit-identical, which keeps the determinism contract
//! microkernel-independent.

use std::sync::atomic::{AtomicU8, Ordering};

/// Rows of the packed A block held in L1/L2 per iteration.
const MC: usize = 128;
/// Depth of the packed panels (k-extent per blocking step).
const KC: usize = 256;
/// Columns of the packed B panel held in L2/L3 per iteration.
const NC: usize = 1024;
/// Microkernel register tile rows.
const MR: usize = 4;
/// Microkernel register tile columns.
const NR: usize = 8;

/// Pack the `mc × kc` block of `a` starting at `(ic, pc)` into MR-row
/// strips: strip `ir` stores `a[ic+ir*MR+m][pc+k]` at `[k*MR + m]`,
/// zero-padded where `ir*MR + m >= mc`.
fn pack_a(a: &[f64], lda: usize, ic: usize, pc: usize, mc: usize, kc: usize, out: &mut Vec<f64>) {
    let n_strips = mc.div_ceil(MR);
    out.clear();
    out.resize(n_strips * kc * MR, 0.0);
    for ir in 0..n_strips {
        let strip = &mut out[ir * kc * MR..(ir + 1) * kc * MR];
        let m_eff = (mc - ir * MR).min(MR);
        for m in 0..m_eff {
            let row = &a[(ic + ir * MR + m) * lda + pc..][..kc];
            for (k, &v) in row.iter().enumerate() {
                strip[k * MR + m] = v;
            }
        }
    }
}

/// Pack the `kc × nc` panel of `b` starting at `(pc, jc)` into NR-column
/// strips: strip `jr` stores `b[pc+k][jc+jr*NR+n]` at `[k*NR + n]`,
/// zero-padded where `jr*NR + n >= nc`.
fn pack_b(b: &[f64], ldb: usize, pc: usize, jc: usize, kc: usize, nc: usize, out: &mut Vec<f64>) {
    let n_strips = nc.div_ceil(NR);
    out.clear();
    out.resize(n_strips * kc * NR, 0.0);
    for jr in 0..n_strips {
        let strip = &mut out[jr * kc * NR..(jr + 1) * kc * NR];
        let n_eff = (nc - jr * NR).min(NR);
        for k in 0..kc {
            let row = &b[(pc + k) * ldb + jc + jr * NR..][..n_eff];
            strip[k * NR..k * NR + n_eff].copy_from_slice(row);
        }
    }
}

/// Microkernel selector: resolved once from `QP_GEMM_KERNEL` + CPUID on
/// first use, switchable afterwards via [`set_microkernel`].
const KERNEL_UNINIT: u8 = 0;
const KERNEL_SCALAR: u8 = 1;
const KERNEL_AVX2: u8 = 2;

static KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNINIT);

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

fn resolve_kernel(choice: &str) -> u8 {
    match choice {
        "scalar" => KERNEL_SCALAR,
        // "avx2" silently falls back when the host can't run it: an env
        // override must never turn into an illegal-instruction crash.
        "avx2" | "auto" | "" => {
            if avx2_available() {
                KERNEL_AVX2
            } else {
                KERNEL_SCALAR
            }
        }
        _ => KERNEL_SCALAR,
    }
}

fn kernel_kind() -> u8 {
    let k = KERNEL.load(Ordering::Relaxed);
    if k != KERNEL_UNINIT {
        return k;
    }
    let choice = std::env::var("QP_GEMM_KERNEL").unwrap_or_default();
    let resolved = resolve_kernel(choice.trim());
    KERNEL.store(resolved, Ordering::Relaxed);
    resolved
}

fn kernel_name(kind: u8) -> &'static str {
    if kind == KERNEL_AVX2 {
        "avx2"
    } else {
        "scalar"
    }
}

/// Name of the microkernel GEMM calls currently dispatch to
/// (`"avx2"` or `"scalar"`).
pub fn active_microkernel() -> &'static str {
    kernel_name(kernel_kind())
}

/// Force the microkernel (`"scalar"`, `"avx2"`, `"auto"`). Returns the
/// kernel actually in effect; `Err` if `"avx2"` is requested on a host
/// without it or the name is unknown. Safe to flip at any time — both
/// kernels produce bit-identical results, so in-flight GEMMs are
/// unaffected. Intended for tests and benches.
pub fn set_microkernel(choice: &str) -> Result<&'static str, String> {
    let kind = match choice {
        "scalar" => KERNEL_SCALAR,
        "avx2" => {
            if !avx2_available() {
                return Err("avx2 microkernel unavailable on this host".to_string());
            }
            KERNEL_AVX2
        }
        "auto" => resolve_kernel("auto"),
        other => return Err(format!("unknown microkernel {other:?}")),
    };
    KERNEL.store(kind, Ordering::Relaxed);
    Ok(kernel_name(kind))
}

/// MR×NR register microkernel (portable scalar form):
/// `acc[m][n] += Σ_k ap[k*MR+m] · bp[k*NR+n]` over one packed-A strip and
/// one packed-B strip of depth `kc`.
#[inline]
fn microkernel_scalar(ap: &[f64], bp: &[f64], kc: usize, acc: &mut [f64; MR * NR]) {
    for k in 0..kc {
        let av = &ap[k * MR..k * MR + MR];
        let bv = &bp[k * NR..k * NR + NR];
        for m in 0..MR {
            let a = av[m];
            let row = &mut acc[m * NR..m * NR + NR];
            for n in 0..NR {
                row[n] += a * bv[n];
            }
        }
    }
}

/// AVX2 form of the same kernel: each 4×8 tile is held in eight `__m256d`
/// accumulators seeded from `acc` (not zero — a trailing `acc + 0.0`-style
/// merge could flip signed-zero bits) and updated with separate
/// `_mm256_mul_pd`/`_mm256_add_pd`. No FMA: fusing would change rounding
/// versus the scalar kernel and break SIMD/scalar bit-identity. Per C
/// element the operation sequence — ascending-`k` multiply, then add —
/// is exactly the scalar kernel's, so the results match bit for bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(ap: &[f64], bp: &[f64], kc: usize, acc: &mut [f64; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR);
    debug_assert!(bp.len() >= kc * NR);
    let pa = ap.as_ptr();
    let pb = bp.as_ptr();
    let pacc = acc.as_mut_ptr();
    let mut c: [[__m256d; 2]; MR] = [[_mm256_setzero_pd(); 2]; MR];
    for (m, cm) in c.iter_mut().enumerate() {
        cm[0] = _mm256_loadu_pd(pacc.add(m * NR));
        cm[1] = _mm256_loadu_pd(pacc.add(m * NR + 4));
    }
    for k in 0..kc {
        let b0 = _mm256_loadu_pd(pb.add(k * NR));
        let b1 = _mm256_loadu_pd(pb.add(k * NR + 4));
        for (m, cm) in c.iter_mut().enumerate() {
            let a = _mm256_set1_pd(*pa.add(k * MR + m));
            cm[0] = _mm256_add_pd(cm[0], _mm256_mul_pd(a, b0));
            cm[1] = _mm256_add_pd(cm[1], _mm256_mul_pd(a, b1));
        }
    }
    for (m, cm) in c.iter().enumerate() {
        _mm256_storeu_pd(pacc.add(m * NR), cm[0]);
        _mm256_storeu_pd(pacc.add(m * NR + 4), cm[1]);
    }
}

/// Dispatch one microkernel call to the active implementation.
#[inline]
fn microkernel(kind: u8, ap: &[f64], bp: &[f64], kc: usize, acc: &mut [f64; MR * NR]) {
    #[cfg(target_arch = "x86_64")]
    if kind == KERNEL_AVX2 {
        // SAFETY: KERNEL_AVX2 is only ever selected after a positive
        // `is_x86_feature_detected!("avx2")` check.
        unsafe { microkernel_avx2(ap, bp, kc, acc) };
        return;
    }
    let _ = kind;
    microkernel_scalar(ap, bp, kc, acc);
}

/// One MC×KC block of A against the current packed-B panel, accumulating
/// into the C rows owned by this block (disjoint across blocks — this is
/// the parallel unit).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    a: &[f64],
    lda: usize,
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    ic: usize,
    jc: usize,
    pc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    let mut ap = Vec::new();
    pack_a(a, lda, ic, pc, mc, kc, &mut ap);
    let kernel = kernel_kind();
    let m_strips = mc.div_ceil(MR);
    let n_strips = nc.div_ceil(NR);
    let mut acc = [0.0f64; MR * NR];
    for jr in 0..n_strips {
        let bstrip = &bp[jr * kc * NR..(jr + 1) * kc * NR];
        let n_eff = (nc - jr * NR).min(NR);
        for ir in 0..m_strips {
            let astrip = &ap[ir * kc * MR..(ir + 1) * kc * MR];
            let m_eff = (mc - ir * MR).min(MR);
            acc.fill(0.0);
            microkernel(kernel, astrip, bstrip, kc, &mut acc);
            for m in 0..m_eff {
                let ci = ic + ir * MR + m;
                let cj = jc + jr * NR;
                for n in 0..n_eff {
                    // SAFETY: (ci, cj+n) lies inside this block's disjoint
                    // row range [ic, ic+mc) — no other block writes it.
                    unsafe {
                        *c.add(ci * ldc + cj + n) += acc[m * NR + n];
                    }
                }
            }
        }
    }
}

/// Raw-pointer wrapper so the parallel closure can write its disjoint C
/// rows without aliasing checks the borrow checker cannot express.
struct CPtr(*mut f64);
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

impl CPtr {
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// Depth of one k-accumulation group: each C element is accumulated as
/// `c += chain(k-segment)` per ascending KC-aligned segment. Restricted
/// contractions that skip exact-zero k ranges (the screened Sternheimer
/// path) must align their gemm calls to this grid — a call per aligned
/// segment reproduces the dense grouping and therefore the dense bits.
pub const K_GROUP: usize = KC;

/// `c += a·b` for row-major `a` (`m×k`), `b` (`k×n`), `c` (`m×n`).
///
/// `parallel` fans the MC row blocks out over the qp-par pool; the result
/// is bit-identical either way (see module docs).
pub fn gemm(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64], parallel: bool) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    record_roofline(m, n, k);
    let n_row_blocks = m.div_ceil(MC);
    let mut bp = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = (n - jc).min(NC);
        // Ascending pc keeps each C element's accumulation order fixed.
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            pack_b(b, n, pc, jc, kc, nc, &mut bp);
            let cptr = CPtr(c.as_mut_ptr());
            let run_block = |blk: usize| {
                let ic = blk * MC;
                let mc = (m - ic).min(MC);
                macro_kernel(a, k, &bp, cptr.get(), n, ic, jc, pc, mc, nc, kc);
            };
            if parallel && n_row_blocks > 1 {
                qp_par::for_each_index(n_row_blocks, run_block);
            } else {
                (0..n_row_blocks).for_each(run_block);
            }
        }
    }
}

/// Roofline accounting: count this GEMM's flops and compulsory traffic
/// against the submitting thread's phase label, so the profiler can report
/// achieved GFLOP/s and arithmetic intensity per pipeline phase. The flop
/// count is the algebraic `2mnk`; bytes are the compulsory reads/writes
/// (`A + B` read, `C` read-modify-written), i.e. an upper bound on
/// intensity, not measured cache traffic. Gated on the trace recorder:
/// one relaxed load when profiling is off.
pub(crate) fn record_roofline(m: usize, n: usize, k: usize) {
    if !qp_trace::enabled() {
        return;
    }
    let phase = qp_par::telemetry::current_label();
    let labels: &[(&str, &str)] = &[("phase", phase)];
    let reg = qp_trace::global_metrics();
    reg.counter("linalg.gemm.flops", labels)
        .add(2 * (m as u64) * (n as u64) * (k as u64));
    reg.counter("linalg.gemm.bytes", labels)
        .add(8 * ((m * k) as u64 + (k * n) as u64 + 2 * (m * n) as u64));
    reg.counter("linalg.gemm.calls", labels).inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn pseudo(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        let mut seed = 7u64;
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 8, 16),
            (5, 9, 7),
            (17, 33, 129),
            (130, 70, 300),
        ] {
            let a: Vec<f64> = (0..m * k).map(|_| pseudo(&mut seed)).collect();
            let b: Vec<f64> = (0..k * n).map(|_| pseudo(&mut seed)).collect();
            let mut c = vec![0.0; m * n];
            gemm(m, n, k, &a, &b, &mut c, false);
            let r = reference(m, n, k, &a, &b);
            for (x, y) in c.iter().zip(r.iter()) {
                assert!((x - y).abs() < 1e-12 * (1.0 + y.abs()), "{m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn parallel_bit_identical_to_serial() {
        let _g = qp_par::ThreadLease::at_least(4);
        let mut seed = 99u64;
        let (m, n, k) = (300, 257, 190);
        let a: Vec<f64> = (0..m * k).map(|_| pseudo(&mut seed)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| pseudo(&mut seed)).collect();
        let mut c_serial = vec![0.0; m * n];
        let mut c_par = vec![0.0; m * n];
        gemm(m, n, k, &a, &b, &mut c_serial, false);
        gemm(m, n, k, &a, &b, &mut c_par, true);
        assert_eq!(c_serial, c_par, "parallel GEMM must be bit-identical");
    }

    #[test]
    fn simd_and_scalar_microkernels_are_bit_identical() {
        if set_microkernel("avx2").is_err() {
            // Host without AVX2: dispatch already pins scalar; nothing to
            // compare.
            return;
        }
        let mut seed = 4242u64;
        // Ragged shape: exercises the zero-padded strip tails too.
        let (m, n, k) = (97, 61, 143);
        let a: Vec<f64> = (0..m * k).map(|_| pseudo(&mut seed)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| pseudo(&mut seed)).collect();
        let mut c_simd = vec![0.0; m * n];
        gemm(m, n, k, &a, &b, &mut c_simd, false);
        set_microkernel("scalar").unwrap();
        let mut c_scalar = vec![0.0; m * n];
        gemm(m, n, k, &a, &b, &mut c_scalar, false);
        set_microkernel("auto").unwrap();
        let same = c_simd
            .iter()
            .zip(c_scalar.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "avx2 and scalar microkernels must agree bit-for-bit");
    }

    #[test]
    fn microkernel_override_reports_active_kernel() {
        assert_eq!(set_microkernel("scalar").unwrap(), "scalar");
        assert!(set_microkernel("neon").is_err());
        // Restore auto-dispatch for the rest of the suite.
        let auto = set_microkernel("auto").unwrap();
        assert!(auto == "avx2" || auto == "scalar");
        assert_eq!(active_microkernel(), auto);
    }

    #[test]
    fn accumulates_into_nonzero_c() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        gemm(2, 2, 2, &a, &b, &mut c, false);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }
}
