//! # qp-linalg
//!
//! Linear-algebra substrate for the `qperturb` workspace: the Rust
//! reproduction of *"Portable and Scalable All-Electron Quantum Perturbation
//! Simulations on Exascale Supercomputers"* (SC '23).
//!
//! The paper's DFPT code relies on ScaLAPACK-style dense linear algebra for
//! the per-process Hamiltonian/overlap blocks and on compressed sparse row
//! (CSR) storage for the *global* sparse Hamiltonian kept by the baseline
//! (non-locality-enhanced) task mapping.  This crate provides both storage
//! schemes plus the solvers the ground-state and response cycles need:
//!
//! * [`DMatrix`] — row-major dense matrix with the BLAS-level operations used
//!   by the SCF and DFPT phases (`gemm`, `symm` products, transposes, …).
//! * [`CsrMatrix`] — CSR sparse matrix with exact byte-footprint accounting,
//!   used to quantify the memory-explosion obstacle of §3.1.1.
//! * [`eigen`] — a dense symmetric eigensolver (Householder tridiagonal
//!   reduction + implicit QL) and the generalized solver
//!   `H C = ε S C` via Cholesky reduction, replacing ScaLAPACK.
//! * [`cholesky`] — Cholesky factorization and triangular solves.
//!
//! Everything is `f64`; quantum-chemistry response properties are far too
//! ill-conditioned for `f32`.

pub mod block_sparse;
pub mod cholesky;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod gemm;
pub mod vecops;

pub use block_sparse::{BlockPartition, BlockSparseMatrix};
pub use cholesky::Cholesky;
pub use csr::CsrMatrix;
pub use dense::DMatrix;
pub use eigen::{generalized_symmetric_eigen, symmetric_eigen, EigenDecomposition};

/// Errors produced by the linear-algebra layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions do not match the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions observed, in operation-specific order.
        dims: Vec<usize>,
    },
    /// A matrix expected to be positive definite was not.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Description of the algorithm.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, dims } => {
                write!(f, "dimension mismatch in {op}: {dims:?}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
            LinalgError::NoConvergence { what, iterations } => {
                write!(f, "{what} failed to converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, LinalgError>;
