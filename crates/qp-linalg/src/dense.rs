//! Row-major dense matrices.
//!
//! The locality-enhancing task mapping of the paper (§3.1.2) turns each MPI
//! process's Hamiltonian block into a *small dense* matrix; this type is that
//! block. It deliberately stays simple — contiguous `Vec<f64>`, row-major —
//! so the per-element access cost is one load, which is exactly the property
//! Figure 3(b) of the paper credits for the 7.5–26.4 % speedups of the
//! `n¹(r)` / `H¹` phases.

use crate::{LinalgError, Result};

/// A dense, row-major, `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Create a zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "DMatrix::from_vec",
                dims: vec![rows, cols, data.len()],
            });
        }
        Ok(DMatrix { rows, cols, data })
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Exact heap footprint in bytes (the quantity plotted in Fig. 9a).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Transpose.
    pub fn transpose(&self) -> DMatrix {
        let mut t = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// `self * other` via the cache-blocked, register-tiled GEMM
    /// ([`crate::gemm`]), executed serially. Branch-free on values — dense
    /// inputs and sparse-ish inputs run the same flops (sparsity belongs to
    /// the CSR path). Bit-identical to [`Self::par_matmul`].
    pub fn matmul(&self, other: &DMatrix) -> Result<DMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                dims: vec![self.rows, self.cols, other.rows, other.cols],
            });
        }
        let mut out = DMatrix::zeros(self.rows, other.cols);
        crate::gemm::gemm(
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            false,
        );
        Ok(out)
    }

    /// `self * other` via the same blocked GEMM, with MC row blocks fanned
    /// out over the qp-par pool. Every C element accumulates in the same
    /// fixed k-order as the serial path, so the result is bit-identical to
    /// [`Self::matmul`] for any thread count.
    pub fn par_matmul(&self, other: &DMatrix) -> Result<DMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "par_matmul",
                dims: vec![self.rows, self.cols, other.rows, other.cols],
            });
        }
        let mut out = DMatrix::zeros(self.rows, other.cols);
        crate::gemm::gemm(
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            true,
        );
        Ok(out)
    }

    /// The pre-blocking i-k-j triple loop (with its value-dependent
    /// zero-skip), retained only as the baseline for the GEMM benchmarks.
    pub fn matmul_unblocked(&self, other: &DMatrix) -> Result<DMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_unblocked",
                dims: vec![self.rows, self.cols, other.rows, other.cols],
            });
        }
        let mut out = DMatrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &other.data[k * n..(k + 1) * n];
                for j in 0..n {
                    orow[j] += aik * brow[j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x`, rows fanned out over the pool.
    /// Each row's dot product runs in fixed k-order on one thread, so the
    /// result is bit-identical for any thread count.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                dims: vec![self.rows, self.cols, x.len()],
            });
        }
        // A matvec is a degenerate GEMM (n = 1); same roofline books.
        crate::gemm::record_roofline(self.rows, 1, self.cols);
        // One mul-add per column ≈ `cols` ns per row: small matvecs run
        // inline via the grain-size heuristic instead of paying region
        // setup for sub-setup-cost work.
        let mut out = vec![0.0f64; self.rows];
        qp_par::fill_slice_hinted(&mut out, self.cols as u64, |i| {
            self.row(i)
                .iter()
                .zip(x.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>()
        });
        Ok(out)
    }

    /// Symmetric rank-k update `self += alpha * a * aᵀ` through the blocked
    /// parallel GEMM (the density-matrix build `P = 2 C_occ C_occᵀ` is this
    /// operation).
    pub fn rank_k_update(&mut self, alpha: f64, a: &DMatrix) -> Result<()> {
        if self.rows != a.rows || self.cols != a.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "rank_k_update",
                dims: vec![self.rows, self.cols, a.rows, a.cols],
            });
        }
        let at = a.transpose();
        let prod = a.par_matmul(&at)?;
        self.axpy(alpha, &prod)
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &DMatrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                dims: vec![self.rows, self.cols, other.rows, other.cols],
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scale every element in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute difference to `other` (`inf`-norm of the difference).
    pub fn max_abs_diff(&self, other: &DMatrix) -> f64 {
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Symmetrize in place: `A <- (A + A^T)/2`. Grid-integrated operator
    /// matrices pick up tiny asymmetries from floating-point reduction order;
    /// the physics requires exact symmetry before the eigensolver runs.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// Trace of the product `self * other` without forming it:
    /// `sum_ij A_ij B_ji`. Used for energy-like contractions
    /// (e.g. `Tr[P¹ H¹]`).
    pub fn trace_product(&self, other: &DMatrix) -> Result<f64> {
        if self.cols != other.rows || self.rows != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "trace_product",
                dims: vec![self.rows, self.cols, other.rows, other.cols],
            });
        }
        let mut t = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                t += self[(i, j)] * other[(j, i)];
            }
        }
        Ok(t)
    }

    /// Trace.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Extract the square sub-matrix with the given (sorted or unsorted)
    /// index set, `out[(a, b)] = self[(idx[a], idx[b])]`.
    ///
    /// This is exactly the "small dense Hamiltonian" extraction of Fig. 3(b):
    /// the per-process basis-function subset gathers into a dense block.
    pub fn gather_square(&self, idx: &[usize]) -> DMatrix {
        assert!(self.is_square());
        let k = idx.len();
        let mut out = DMatrix::zeros(k, k);
        for (a, &ia) in idx.iter().enumerate() {
            for (b, &ib) in idx.iter().enumerate() {
                out[(a, b)] = self[(ia, ib)];
            }
        }
        out
    }

    /// Scatter-add a square sub-matrix back: `self[(idx[a], idx[b])] += block[(a, b)]`.
    pub fn scatter_add_square(&mut self, idx: &[usize], block: &DMatrix) {
        assert!(self.is_square());
        assert_eq!(block.rows(), idx.len());
        for (a, &ia) in idx.iter().enumerate() {
            for (b, &ib) in idx.iter().enumerate() {
                self[(ia, ib)] += block[(a, b)];
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (DMatrix, DMatrix) {
        let a = DMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = DMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        (a, b)
    }

    #[test]
    fn matmul_known_product() {
        let (a, b) = abc();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn par_matmul_matches_serial() {
        let (a, b) = abc();
        assert_eq!(a.matmul(&b).unwrap(), a.par_matmul(&b).unwrap());
    }

    #[test]
    fn par_matmul_bit_identical_at_scale() {
        let _g = qp_par::ThreadLease::at_least(4);
        let a = DMatrix::from_fn(150, 170, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
        let b = DMatrix::from_fn(170, 140, |i, j| ((i * 5 + j * 11) % 17) as f64 - 8.0);
        assert_eq!(a.matmul(&b).unwrap(), a.par_matmul(&b).unwrap());
    }

    #[test]
    fn blocked_matches_unblocked_numerically() {
        let a = DMatrix::from_fn(37, 53, |i, j| (i as f64 - j as f64) * 0.01);
        let b = DMatrix::from_fn(53, 29, |i, j| (i as f64 + j as f64).sin());
        let blocked = a.matmul(&b).unwrap();
        let unblocked = a.matmul_unblocked(&b).unwrap();
        assert!(blocked.max_abs_diff(&unblocked) < 1e-10);
    }

    #[test]
    fn rank_k_update_matches_explicit_product() {
        let c = DMatrix::from_fn(9, 4, |i, j| (i * 4 + j) as f64 * 0.1 - 1.0);
        let mut p = DMatrix::zeros(9, 9);
        p.rank_k_update(2.0, &c).unwrap();
        let mut expect = c.matmul(&c.transpose()).unwrap();
        expect.scale(2.0);
        assert!(p.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let (a, _) = abc();
        let bad = DMatrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&bad),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_round_trip() {
        let (a, _) = abc();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = abc();
        let i3 = DMatrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let (a, _) = abc();
        let x = vec![1.0, -1.0, 2.0];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, vec![1.0 - 2.0 + 6.0, 4.0 - 5.0 + 12.0]);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut m = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 4.0, 3.0]).unwrap();
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let m = DMatrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let idx = [1usize, 3, 4];
        let blk = m.gather_square(&idx);
        assert_eq!(blk[(0, 0)], m[(1, 1)]);
        assert_eq!(blk[(2, 1)], m[(4, 3)]);
        let mut acc = DMatrix::zeros(5, 5);
        acc.scatter_add_square(&idx, &blk);
        assert_eq!(acc[(4, 3)], m[(4, 3)]);
        assert_eq!(acc[(0, 0)], 0.0);
    }

    #[test]
    fn trace_product_matches_explicit() {
        let (a, b) = abc();
        let tp = a.trace_product(&b).unwrap();
        let explicit = a.matmul(&b).unwrap().trace();
        assert!((tp - explicit).abs() < 1e-12);
    }

    #[test]
    fn memory_bytes_counts_payload() {
        let m = DMatrix::zeros(10, 20);
        assert_eq!(m.memory_bytes(), 10 * 20 * 8);
    }

    #[test]
    fn axpy_and_scale() {
        let (a, _) = abc();
        let mut b = a.clone();
        b.axpy(2.0, &a).unwrap();
        b.scale(1.0 / 3.0);
        assert!(b.max_abs_diff(&a) < 1e-12);
    }
}

/// Solve the general square system `A x = b` by Gaussian elimination with
/// partial pivoting. `A` need not be symmetric or definite (used for the
/// DIIS/Pulay KKT systems, which are symmetric indefinite).
pub fn lu_solve(a: &DMatrix, b: &[f64]) -> crate::Result<Vec<f64>> {
    if !a.is_square() || a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "lu_solve",
            dims: vec![a.rows(), a.cols(), b.len()],
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[(r, col)].abs()))
            .max_by(|p, q| p.1.partial_cmp(&q.1).expect("finite"))
            .expect("non-empty");
        if pivot_val < 1e-14 {
            return Err(LinalgError::NotPositiveDefinite { pivot: col });
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        for r in (col + 1)..n {
            let factor = m[(r, col)] / m[(col, col)];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(r, j)] -= factor * v;
            }
            x[r] -= factor * x[col];
        }
    }
    for col in (0..n).rev() {
        x[col] /= m[(col, col)];
        for r in 0..col {
            let f = m[(r, col)];
            x[r] -= f * x[col];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod lu_tests {
    use super::*;

    #[test]
    fn solves_general_system() {
        let a =
            DMatrix::from_vec(3, 3, vec![0.0, 2.0, 1.0, 1.0, -1.0, 0.5, 3.0, 0.0, -2.0]).unwrap();
        let x_true = vec![1.5, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = lu_solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_symmetric_indefinite_kkt() {
        // The DIIS shape: [[B, 1], [1, 0]].
        let a = DMatrix::from_vec(3, 3, vec![2.0, 0.5, 1.0, 0.5, 1.0, 1.0, 1.0, 1.0, 0.0]).unwrap();
        let b = vec![0.0, 0.0, 1.0];
        let x = lu_solve(&a, &b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (p, q) in back.iter().zip(b.iter()) {
            assert!((p - q).abs() < 1e-10);
        }
        assert!((x[0] + x[1] - 1.0).abs() < 1e-10, "constraint row");
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(lu_solve(&a, &[1.0, 2.0]).is_err());
    }
}
