//! Small vector kernels shared across the workspace.

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Maximum absolute element.
#[inline]
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// Euclidean distance between two 3-vectors.
#[inline]
pub fn dist3(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_scale_maxabs() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, -0.5]);
        assert_eq!(max_abs(&y), 1.5);
    }

    #[test]
    fn dist3_pythagorean() {
        assert_eq!(dist3([0.0; 3], [1.0, 2.0, 2.0]), 3.0);
    }
}
