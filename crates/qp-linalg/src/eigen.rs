//! Dense symmetric eigensolvers.
//!
//! The Kohn-Sham equations in a finite basis (Eq. 5 of the paper) are a
//! generalized symmetric eigenproblem `H C = ε S C`, solved in the original
//! code by ScaLAPACK. Here we implement the classic dense path:
//! Householder tridiagonalization followed by implicit-shift QL iteration,
//! with the generalized problem reduced to standard form via Cholesky.

use crate::cholesky::Cholesky;
use crate::dense::DMatrix;
use crate::{LinalgError, Result};

/// Raw-pointer wrapper so a parallel row sweep can write its disjoint rows
/// without aliasing checks the borrow checker cannot express (each row is
/// touched by exactly one chunk executor).
struct RowsPtr(*mut f64);
unsafe impl Send for RowsPtr {}
unsafe impl Sync for RowsPtr {}

impl RowsPtr {
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// Eigenvalues (ascending) and eigenvectors (columns) of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// `eigenvectors.col(k)` is the eigenvector of `eigenvalues[k]`.
    pub eigenvectors: DMatrix,
}

/// Householder reduction of a symmetric matrix to tridiagonal form.
///
/// Returns `(d, e, q)` where `d` is the diagonal, `e` the sub-diagonal
/// (`e[0]` unused) and `q` the accumulated orthogonal transform such that
/// `qᵀ a q = tridiag(d, e)`.
///
/// This is numerical-recipes `tred2` with its two O(n²)-per-step inner
/// nests restructured for parallel execution: read-only reductions become
/// parallel maps, row updates become disjoint parallel row sweeps. Every
/// restructured expression evaluates the identical floating-point sequence
/// per element as the classic serial loop (the maps preserve index order
/// and each row is updated by one thread), so the decomposition is
/// bit-identical between 1 and N threads.
///
/// Each of the four per-column fan-outs carries a flop-count cost hint:
/// at typical basis sizes (n ≈ 150) a single Householder step is a few
/// tens of µs of O(n²) work — below the scheduling break-even — so the
/// hints collapse the former ~4·n-region-per-factorization storm into
/// inline execution, and only genuinely large matrices fan out.
fn tridiagonalize(a: &DMatrix) -> (Vec<f64>, Vec<f64>, DMatrix) {
    let n = a.rows();
    let mut v = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| v[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = v[(i, l)];
            } else {
                for k in 0..=l {
                    v[(i, k)] /= scale;
                    h += v[(i, k)] * v[(i, k)];
                }
                let f = v[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                v[(i, l)] = f - g;
                // g_j = Σ_{k≤j} v[j][k]·v[i][k] + Σ_{j<k≤l} v[k][j]·v[i][k]
                // reads only rows ≤ l and row i — independent across j, so
                // it fans out as a read-only parallel map (the subsequent
                // column-i writes are hoisted out, they never feed the g's).
                let vrow_i = v.row(i).to_vec();
                let mut g_vals = vec![0.0f64; l + 1];
                // ~(l+1) mul-adds per item ≈ that many ns: hint lets tiny
                // columns run inline instead of paying region setup.
                qp_par::fill_slice_hinted(&mut g_vals, (l + 1) as u64, |j| {
                    let mut g = 0.0;
                    let vrow_j = v.row(j);
                    for k in 0..=j {
                        g += vrow_j[k] * vrow_i[k];
                    }
                    for k in (j + 1)..=l {
                        g += v[(k, j)] * vrow_i[k];
                    }
                    g
                });
                let mut tau = 0.0;
                for (j, &g) in g_vals.iter().enumerate() {
                    v[(j, i)] = v[(i, j)] / h;
                    e[j] = g / h;
                    tau += e[j] * v[(i, j)];
                }
                let hh = tau / (h + h);
                // Finalize e first (serial, j-ascending as before), then the
                // symmetric rank-2 update touches disjoint rows j ≤ l — one
                // parallel sweep with row i snapshotted to avoid aliasing.
                for j in 0..=l {
                    e[j] -= hh * v[(i, j)];
                }
                let vi: Vec<f64> = (0..=l).map(|j| v[(i, j)]).collect();
                let cols = v.cols();
                let base = RowsPtr(v.as_mut_slice().as_mut_ptr());
                qp_par::for_each_index_hinted(l + 1, l.div_ceil(2).max(1) as u64, |j| {
                    // SAFETY: row `j` of the leading (l+1)×cols block is
                    // written by exactly this index; `e` and `vi` are only
                    // read.
                    let row =
                        unsafe { std::slice::from_raw_parts_mut(base.get().add(j * cols), cols) };
                    let f = vi[j];
                    let g = e[j];
                    for k in 0..=j {
                        row[k] -= f * e[k] + g * vi[k];
                    }
                });
            }
        } else {
            e[i] = v[(i, l)];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            // Accumulate Q: columns j < i update independently. Phase A
            // computes every g_j from pristine data (the serial loop also
            // read column j strictly before writing it); phase B applies the
            // rank-1 update row-wise so each row is owned by one thread.
            let mut g_vals = vec![0.0f64; i];
            qp_par::fill_slice_hinted(&mut g_vals, i as u64, |j| {
                let mut g = 0.0;
                for k in 0..i {
                    g += v[(i, k)] * v[(k, j)];
                }
                g
            });
            let cols = v.cols();
            let base = RowsPtr(v.as_mut_slice().as_mut_ptr());
            qp_par::for_each_index_hinted(i, i as u64, |r| {
                // SAFETY: row `r` of the leading i×cols block is written by
                // exactly this index; `g_vals` is only read.
                let row = unsafe { std::slice::from_raw_parts_mut(base.get().add(r * cols), cols) };
                let vki = row[i];
                for (j, &g) in g_vals.iter().enumerate() {
                    row[j] -= g * vki;
                }
            });
        }
        d[i] = v[(i, i)];
        v[(i, i)] = 1.0;
        for j in 0..i {
            v[(j, i)] = 0.0;
            v[(i, j)] = 0.0;
        }
    }
    (d, e, v)
}

/// Implicit-shift QL iteration on a tridiagonal matrix, accumulating the
/// rotations into `z` (numerical-recipes style `tqli`).
fn tql_implicit(d: &mut [f64], e: &mut [f64], z: &mut DMatrix) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    const MAX_ITER: usize = 64;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_ITER {
                return Err(LinalgError::NoConvergence {
                    what: "tridiagonal QL",
                    iterations: MAX_ITER,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut i = m - 1;
            loop {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
                if i == l {
                    break;
                }
                i -= 1;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Full eigendecomposition of a symmetric matrix.
///
/// The input is symmetrized defensively (`(A + Aᵀ)/2` is implied by reading
/// only the lower triangle) — grid-integrated operators are symmetric only to
/// integration tolerance.
pub fn symmetric_eigen(a: &DMatrix) -> Result<EigenDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "symmetric_eigen",
            dims: vec![a.rows(), a.cols()],
        });
    }
    let mut sym = a.clone();
    sym.symmetrize();
    let (mut d, mut e, mut z) = tridiagonalize(&sym);
    tql_implicit(&mut d, &mut e, &mut z)?;

    // Sort ascending, permuting eigenvector columns accordingly.
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&k| d[k]).collect();
    let eigenvectors = DMatrix::from_fn(n, n, |i, j| z[(i, order[j])]);
    Ok(EigenDecomposition {
        eigenvalues,
        eigenvectors,
    })
}

/// Generalized symmetric eigenproblem `A x = λ B x` with `B` positive
/// definite (for us: `H C = ε S C`, Eq. 5).
///
/// Reduction: `B = L Lᵀ`, solve `(L⁻¹ A L⁻ᵀ) y = λ y`, back-transform
/// `x = L⁻ᵀ y`.  Returned eigenvectors are `B`-orthonormal
/// (`xᵢᵀ B xⱼ = δᵢⱼ`), exactly the normalization the density matrix (Eq. 6)
/// assumes.
pub fn generalized_symmetric_eigen(a: &DMatrix, b: &DMatrix) -> Result<EigenDecomposition> {
    if a.rows() != b.rows() || a.cols() != b.cols() || !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "generalized_symmetric_eigen",
            dims: vec![a.rows(), a.cols(), b.rows(), b.cols()],
        });
    }
    let chol = Cholesky::new(b)?;
    // C = L^-1 A L^-T  (apply L^-1 on the left, then L^-1 on the left of the
    // transpose — legal because A is symmetric).
    let linv_a = chol.solve_lower_matrix(a);
    let linv_a_t = linv_a.transpose();
    let mut c = chol.solve_lower_matrix(&linv_a_t);
    c.symmetrize();
    let std = symmetric_eigen(&c)?;
    let x = chol.solve_lower_transpose_matrix(&std.eigenvectors);
    Ok(EigenDecomposition {
        eigenvalues: std.eigenvalues,
        eigenvectors: x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eigen(a: &DMatrix, dec: &EigenDecomposition, tol: f64) {
        let n = a.rows();
        for k in 0..n {
            let x = dec.eigenvectors.col(k);
            let ax = a.matvec(&x).unwrap();
            for i in 0..n {
                assert!(
                    (ax[i] - dec.eigenvalues[k] * x[i]).abs() < tol,
                    "residual too large for eigenpair {k}"
                );
            }
        }
    }

    #[test]
    fn two_by_two_known() {
        let a = DMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let dec = symmetric_eigen(&a).unwrap();
        assert!((dec.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((dec.eigenvalues[1] - 3.0).abs() < 1e-12);
        check_eigen(&a, &dec, 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a =
            DMatrix::from_vec(3, 3, vec![5.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let dec = symmetric_eigen(&a).unwrap();
        assert_eq!(dec.eigenvalues.len(), 3);
        assert!((dec.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((dec.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((dec.eigenvalues[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_symmetric_residuals_small() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 12;
        let mut seed = 42u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rand();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let dec = symmetric_eigen(&a).unwrap();
        check_eigen(&a, &dec, 1e-8);
        // Eigenvectors orthonormal.
        let vt_v = dec
            .eigenvectors
            .transpose()
            .matmul(&dec.eigenvectors)
            .unwrap();
        assert!(vt_v.max_abs_diff(&DMatrix::identity(n)) < 1e-8);
        // Trace preserved.
        let tr: f64 = dec.eigenvalues.iter().sum();
        assert!((tr - a.trace()).abs() < 1e-8);
    }

    #[test]
    fn generalized_reduces_to_standard_for_identity_b() {
        let a = DMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let b = DMatrix::identity(2);
        let dec = generalized_symmetric_eigen(&a, &b).unwrap();
        assert!((dec.eigenvalues[0] - 1.0).abs() < 1e-10);
        assert!((dec.eigenvalues[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn generalized_b_orthonormality() {
        let n = 6;
        let mut a = DMatrix::zeros(n, n);
        let mut b = DMatrix::identity(n);
        for i in 0..n {
            a[(i, i)] = (i as f64) - 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = 0.5;
                a[(i + 1, i)] = 0.5;
                b[(i, i + 1)] = 0.2;
                b[(i + 1, i)] = 0.2;
            }
        }
        let dec = generalized_symmetric_eigen(&a, &b).unwrap();
        // Check A x = lambda B x.
        for k in 0..n {
            let x = dec.eigenvectors.col(k);
            let ax = a.matvec(&x).unwrap();
            let bx = b.matvec(&x).unwrap();
            for i in 0..n {
                assert!((ax[i] - dec.eigenvalues[k] * bx[i]).abs() < 1e-9);
            }
        }
        // Check x_i^T B x_j = delta_ij.
        for i in 0..n {
            for j in 0..n {
                let xi = dec.eigenvectors.col(i);
                let bxj = b.matvec(&dec.eigenvectors.col(j)).unwrap();
                let dot: f64 = xi.iter().zip(bxj.iter()).map(|(p, q)| p * q).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "B-orthonormality ({i},{j})");
            }
        }
    }

    #[test]
    fn eigen_bit_identical_across_thread_counts() {
        let n = 40;
        let mut seed = 7u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rand();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let serial = {
            let _g = qp_par::ThreadLease::exactly(1);
            symmetric_eigen(&a).unwrap()
        };
        let parallel = {
            let _g = qp_par::ThreadLease::exactly(8);
            symmetric_eigen(&a).unwrap()
        };
        assert_eq!(serial.eigenvalues, parallel.eigenvalues);
        assert_eq!(
            serial.eigenvectors.as_slice(),
            parallel.eigenvectors.as_slice(),
            "tridiagonalization must be bit-identical across thread counts"
        );
    }

    #[test]
    fn one_by_one() {
        let a = DMatrix::from_vec(1, 1, vec![7.0]).unwrap();
        let dec = symmetric_eigen(&a).unwrap();
        assert_eq!(dec.eigenvalues, vec![7.0]);
    }

    #[test]
    fn non_square_rejected() {
        let a = DMatrix::zeros(2, 3);
        assert!(symmetric_eigen(&a).is_err());
    }
}
