//! Cholesky factorization and triangular solves.
//!
//! Used to reduce the generalized eigenproblem `H C = ε S C` (Eq. 5 of the
//! paper) to standard form: with `S = L Lᵀ`, solve
//! `(L⁻¹ H L⁻ᵀ) y = ε y`, then back-transform `C = L⁻ᵀ y`.

use crate::dense::DMatrix;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMatrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    pub fn new(a: &DMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                dims: vec![a.rows(), a.cols()],
            });
        }
        let n = a.rows();
        let mut l = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &DMatrix {
        &self.l
    }

    /// Solve `L x = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                let lik = self.l[(i, k)];
                x[i] -= lik * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }

    /// Solve `Lᵀ x = b` (backward substitution).
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let lki = self.l[(k, i)];
                x[i] -= lki * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_lower_transpose(&y)
    }

    /// Compute `L⁻¹ M` column-by-column.
    pub fn solve_lower_matrix(&self, m: &DMatrix) -> DMatrix {
        let n = self.l.rows();
        assert_eq!(m.rows(), n);
        let mut out = DMatrix::zeros(n, m.cols());
        for j in 0..m.cols() {
            let col: Vec<f64> = (0..n).map(|i| m[(i, j)]).collect();
            let x = self.solve_lower(&col);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Compute `L⁻ᵀ M` column-by-column.
    pub fn solve_lower_transpose_matrix(&self, m: &DMatrix) -> DMatrix {
        let n = self.l.rows();
        assert_eq!(m.rows(), n);
        let mut out = DMatrix::zeros(n, m.cols());
        for j in 0..m.cols() {
            let col: Vec<f64> = (0..n).map(|i| m[(i, j)]).collect();
            let x = self.solve_lower_transpose(&col);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DMatrix {
        DMatrix::from_vec(
            3,
            3,
            vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0],
        )
        .unwrap()
    }

    #[test]
    fn factor_known_matrix() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let llt = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(llt.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let m = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn matrix_solves_match_vector_solves() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let m = DMatrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let linv_m = c.solve_lower_matrix(&m);
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| m[(i, j)]).collect();
            let x = c.solve_lower(&col);
            for i in 0..3 {
                assert!((linv_m[(i, j)] - x[i]).abs() < 1e-12);
            }
        }
    }
}
