//! Block-sparse matrices over an atom partition.
//!
//! The screening pass (`qp-grid`) proves that operator matrices assembled
//! from strictly-finite-support NAO basis functions are *exactly* zero
//! outside the atom-pair neighbor list.  This type stores only the
//! surviving blocks: block rows/columns are atoms (each atom owns a
//! contiguous run of basis functions), the pair structure is CSR over
//! atoms, and each stored pair holds a dense row-major `|I| × |J|` block
//! that the existing blocked GEMM (and its AVX2 microkernel) operates on.
//!
//! Determinism contract: every operation visits stored pairs in CSR order
//! (rows ascending, columns ascending within a row) and accumulates with
//! [`crate::gemm::gemm`], so results are bit-identical across thread counts
//! and — because skipped blocks correspond to exact `+0.0` contributions —
//! bit-identical to the equivalent dense computation on masked inputs.

use crate::dense::DMatrix;
use crate::gemm::gemm;
use crate::{LinalgError, Result};

/// Contiguous function ranges per atom block: block `i` owns functions
/// `offsets[i]..offsets[i + 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPartition {
    offsets: Vec<usize>,
}

impl BlockPartition {
    /// Build from cumulative offsets (`n_blocks + 1` entries, ascending,
    /// starting at 0).
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty() && offsets[0] == 0);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        BlockPartition { offsets }
    }

    /// Build from per-block sizes.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0;
        offsets.push(0);
        for &s in sizes {
            acc += s;
            offsets.push(acc);
        }
        BlockPartition { offsets }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total partitioned dimension.
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// First function of block `i`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Size of block `i`.
    pub fn size(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }
}

/// Square block-sparse matrix: atom-block rows, CSR over stored atom pairs,
/// dense row-major blocks.
#[derive(Debug, Clone)]
pub struct BlockSparseMatrix {
    part: BlockPartition,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    /// Offset of each stored block in `data` (`cols.len() + 1` entries).
    data_off: Vec<usize>,
    data: Vec<f64>,
}

impl BlockSparseMatrix {
    /// Zero matrix with the given pair structure.  `row_ptr`/`cols` is CSR
    /// over atom pairs (columns ascending per row), e.g. straight from
    /// `qp_grid::NeighborList`.
    pub fn zeros(part: BlockPartition, row_ptr: &[usize], cols: &[u32]) -> Self {
        assert_eq!(row_ptr.len(), part.n_blocks() + 1);
        let mut data_off = Vec::with_capacity(cols.len() + 1);
        let mut acc = 0usize;
        data_off.push(0);
        for i in 0..part.n_blocks() {
            for &j in &cols[row_ptr[i]..row_ptr[i + 1]] {
                acc += part.size(i) * part.size(j as usize);
                data_off.push(acc);
            }
        }
        BlockSparseMatrix {
            part,
            row_ptr: row_ptr.to_vec(),
            cols: cols.to_vec(),
            data_off,
            data: vec![0.0; acc],
        }
    }

    /// Copy the supported blocks out of a dense matrix (the masking oracle:
    /// `from_dense(d).to_dense()` zeroes exactly the off-support entries).
    pub fn from_dense(
        dense: &DMatrix,
        part: BlockPartition,
        row_ptr: &[usize],
        cols: &[u32],
    ) -> Result<Self> {
        if dense.rows() != part.total() || dense.cols() != part.total() {
            return Err(LinalgError::DimensionMismatch {
                op: "block_sparse::from_dense",
                dims: vec![dense.rows(), dense.cols(), part.total()],
            });
        }
        let mut m = Self::zeros(part, row_ptr, cols);
        let n = m.part.total();
        let src = dense.as_slice();
        for i in 0..m.part.n_blocks() {
            let (ro, rs) = (m.part.offset(i), m.part.size(i));
            for p in m.row_ptr[i]..m.row_ptr[i + 1] {
                let j = m.cols[p] as usize;
                let (co, cs) = (m.part.offset(j), m.part.size(j));
                let dst = &mut m.data[m.data_off[p]..m.data_off[p + 1]];
                for r in 0..rs {
                    dst[r * cs..(r + 1) * cs]
                        .copy_from_slice(&src[(ro + r) * n + co..(ro + r) * n + co + cs]);
                }
            }
        }
        Ok(m)
    }

    /// Dense-conversion oracle: materialize with exact `+0.0` off support.
    pub fn to_dense(&self) -> DMatrix {
        let n = self.part.total();
        let mut out = DMatrix::zeros(n, n);
        let dst = out.as_mut_slice();
        for i in 0..self.part.n_blocks() {
            let (ro, rs) = (self.part.offset(i), self.part.size(i));
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.cols[p] as usize;
                let (co, cs) = (self.part.offset(j), self.part.size(j));
                let blk = &self.data[self.data_off[p]..self.data_off[p + 1]];
                for r in 0..rs {
                    dst[(ro + r) * n + co..(ro + r) * n + co + cs]
                        .copy_from_slice(&blk[r * cs..(r + 1) * cs]);
                }
            }
        }
        out
    }

    /// Partition shared by rows and columns.
    pub fn partition(&self) -> &BlockPartition {
        &self.part
    }

    /// Stored pair index of `(i, j)`, if on the support.
    pub fn find(&self, i: usize, j: usize) -> Option<usize> {
        let row = &self.cols[self.row_ptr[i]..self.row_ptr[i + 1]];
        row.binary_search(&(j as u32))
            .ok()
            .map(|k| self.row_ptr[i] + k)
    }

    /// Stored block `(i, j)` as a row-major `|I| × |J|` slice.
    pub fn block(&self, pair: usize) -> &[f64] {
        &self.data[self.data_off[pair]..self.data_off[pair + 1]]
    }

    /// Mutable stored block.
    pub fn block_mut(&mut self, pair: usize) -> &mut [f64] {
        &mut self.data[self.data_off[pair]..self.data_off[pair + 1]]
    }

    /// Number of stored blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.cols.len()
    }

    /// Stored scalar entries / dense entries.
    pub fn fill_ratio(&self) -> f64 {
        let n = self.part.total();
        if n == 0 {
            return 0.0;
        }
        self.data.len() as f64 / (n * n) as f64
    }

    /// Heap bytes of the storage.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.cols.len() * 4 + self.data_off.len() * 8 + self.data.len() * 8
    }

    /// Block-sparse product `A · B`.  The result support is the exact
    /// pair-graph product (row `i` of `C` holds the union of `B`'s rows
    /// reachable through `A`'s row `i`), so no nonzero is dropped; each
    /// block product runs through the blocked GEMM microkernel with the
    /// inner atom index `k` ascending, so the result is deterministic at
    /// any thread count.  Values agree with the dense product of the
    /// masked operands to rounding: the dense path groups each element's
    /// k-chain by [`crate::gemm::K_GROUP`] segments while this path groups
    /// it by atom blocks, so the low bits may differ (regrouping of the
    /// same exact terms), never the support.
    pub fn matmul(&self, other: &BlockSparseMatrix) -> Result<BlockSparseMatrix> {
        if self.part != other.part {
            return Err(LinalgError::DimensionMismatch {
                op: "block_sparse::matmul",
                dims: vec![self.part.total(), other.part.total()],
            });
        }
        let nb = self.part.n_blocks();
        // Support closure: merge the sorted B-rows selected by each A-row.
        let mut row_ptr = Vec::with_capacity(nb + 1);
        let mut cols: Vec<u32> = Vec::new();
        row_ptr.push(0);
        let mut mark = vec![false; nb];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..nb {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let k = self.cols[p] as usize;
                for &j in &other.cols[other.row_ptr[k]..other.row_ptr[k + 1]] {
                    if !mark[j as usize] {
                        mark[j as usize] = true;
                        touched.push(j);
                    }
                }
            }
            touched.sort_unstable();
            cols.extend_from_slice(&touched);
            for &j in &touched {
                mark[j as usize] = false;
            }
            touched.clear();
            row_ptr.push(cols.len());
        }
        let mut out = BlockSparseMatrix::zeros(self.part.clone(), &row_ptr, &cols);
        for i in 0..nb {
            let rs = self.part.size(i);
            // k ascending preserves the dense accumulation order per entry.
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let k = self.cols[p] as usize;
                let ks = self.part.size(k);
                let a_blk = &self.data[self.data_off[p]..self.data_off[p + 1]];
                for q in other.row_ptr[k]..other.row_ptr[k + 1] {
                    let j = other.cols[q] as usize;
                    let js = self.part.size(j);
                    let b_blk = &other.data[other.data_off[q]..other.data_off[q + 1]];
                    let pair = out.find(i, j).expect("closure covers product support");
                    let off = out.data_off[pair];
                    gemm(
                        rs,
                        js,
                        ks,
                        a_blk,
                        b_blk,
                        &mut out.data[off..off + rs * js],
                        false,
                    );
                }
            }
        }
        Ok(out)
    }

    /// Rank-k update on the stored support: for every stored pair `(I, J)`,
    /// `M_IJ += α · C_I · C_Jᵀ` where `C_I` is the row slice of `factor`
    /// belonging to block `I`.  This is the screened density-matrix build
    /// (`P = Σ_occ f |c⟩⟨c|` evaluated only where basis supports overlap):
    /// cost `O(pairs · block² · k)` instead of the dense `O(n² · k)`.
    /// Block rows own disjoint contiguous ranges of `data`, so the parallel
    /// sweep is deterministic at any thread count.
    pub fn rank_k_update(&mut self, alpha: f64, factor: &DMatrix, parallel: bool) -> Result<()> {
        let mut scaled = factor.clone();
        for v in scaled.as_mut_slice().iter_mut() {
            *v *= alpha;
        }
        self.rank_k_update_ab(&scaled, factor, parallel)
    }

    /// Two-factor rank-k update on the stored support: for every stored
    /// pair `(I, J)`, `M_IJ += L_I · R_Jᵀ`.  This is the occupation-scaled
    /// density-matrix build (`L = f·C`, `R = C` over occupied columns);
    /// [`Self::rank_k_update`] is the `L = α·R` special case.
    pub fn rank_k_update_ab(
        &mut self,
        left: &DMatrix,
        right: &DMatrix,
        parallel: bool,
    ) -> Result<()> {
        if left.rows() != self.part.total()
            || right.rows() != self.part.total()
            || left.cols() != right.cols()
        {
            return Err(LinalgError::DimensionMismatch {
                op: "block_sparse::rank_k_update",
                dims: vec![left.rows(), right.rows(), left.cols(), right.cols()],
            });
        }
        let k = left.cols();
        let nb = self.part.n_blocks();
        let fl = left.as_slice();
        let fr = right.as_slice();
        struct DataPtr(*mut f64);
        unsafe impl Send for DataPtr {}
        unsafe impl Sync for DataPtr {}
        let dp = DataPtr(self.data.as_mut_ptr());
        let part = &self.part;
        let (row_ptr, cols, data_off) = (&self.row_ptr, &self.cols, &self.data_off);
        let est = self
            .data
            .len()
            .checked_div(nb)
            .map_or(1, |per_row| (per_row * k).max(1) as u64);
        let body = |i: usize| {
            let _ = &dp;
            let (ro, rs) = (part.offset(i), part.size(i));
            // a = L_I (rs × k), contiguous copy once per block row.
            let mut a = vec![0.0; rs * k];
            a.copy_from_slice(&fl[ro * k..(ro + rs) * k]);
            for p in row_ptr[i]..row_ptr[i + 1] {
                let j = cols[p] as usize;
                let (co, cs) = (part.offset(j), part.size(j));
                // b = R_Jᵀ (k × cs), packed per pair.
                let mut b = vec![0.0; k * cs];
                for c in 0..cs {
                    for kk in 0..k {
                        b[kk * cs + c] = fr[(co + c) * k + kk];
                    }
                }
                let out = unsafe { std::slice::from_raw_parts_mut(dp.0.add(data_off[p]), rs * cs) };
                gemm(rs, cs, k, &a, &b, out, false);
            }
        };
        if parallel {
            qp_par::for_each_index_hinted(nb, est, body);
        } else {
            for i in 0..nb {
                body(i);
            }
        }
        Ok(())
    }

    /// Scale every stored entry.
    pub fn scale(&mut self, alpha: f64) {
        for v in self.data.iter_mut() {
            *v *= alpha;
        }
    }

    /// [`Self::rank_k_update_ab`] with locally truncated k-segments: the
    /// factors are scanned once for per-(block row, [`K_GROUP`]-aligned
    /// k-segment) activity, and each stored pair contracts only the
    /// segments where *both* factors have a nonzero — the linear-scaling
    /// response-density-matrix contraction (Shang et al.), where `L = C¹`
    /// and `R = C` columns vanish outside each atom's screened
    /// neighbourhood.
    ///
    /// Bit-identity with the dense-k update: `gemm` accumulates every C
    /// element per ascending KC-aligned segment as `c += chain(segment)`,
    /// with the chain seeded at `+0.0`. A segment whose products are all
    /// `±0.0` therefore contributes exactly `c += +0.0` — invisible as
    /// long as `c` is never `−0.0`, which holds here because stored
    /// entries start at `+0.0` and segment chains seeded at `+0.0` can
    /// never round to `−0.0`. One `gemm` call per surviving aligned
    /// segment reproduces the dense grouping, hence the dense bits.
    pub fn rank_k_update_ab_screened(
        &mut self,
        left: &DMatrix,
        right: &DMatrix,
        parallel: bool,
    ) -> Result<()> {
        if left.rows() != self.part.total()
            || right.rows() != self.part.total()
            || left.cols() != right.cols()
        {
            return Err(LinalgError::DimensionMismatch {
                op: "block_sparse::rank_k_update_screened",
                dims: vec![left.rows(), right.rows(), left.cols(), right.cols()],
            });
        }
        const KG: usize = crate::gemm::K_GROUP;
        let k = left.cols();
        let nb = self.part.n_blocks();
        if k == 0 {
            return Ok(());
        }
        let n_seg = k.div_ceil(KG);
        let fl = left.as_slice();
        let fr = right.as_slice();
        // Per-(block row, segment) nonzero bitmaps: one O(n·k) scan of each
        // factor, amortized over O(pairs) block products.
        let activity = |f: &[f64]| -> Vec<bool> {
            let mut act = vec![false; nb * n_seg];
            for i in 0..nb {
                let (ro, rs) = (self.part.offset(i), self.part.size(i));
                for r in 0..rs {
                    let row = &f[(ro + r) * k..(ro + r + 1) * k];
                    for s in 0..n_seg {
                        if !act[i * n_seg + s]
                            && row[s * KG..((s + 1) * KG).min(k)].iter().any(|&v| v != 0.0)
                        {
                            act[i * n_seg + s] = true;
                        }
                    }
                }
            }
            act
        };
        let la = activity(fl);
        let ra = activity(fr);
        struct DataPtr(*mut f64);
        unsafe impl Send for DataPtr {}
        unsafe impl Sync for DataPtr {}
        let dp = DataPtr(self.data.as_mut_ptr());
        let part = &self.part;
        let (row_ptr, cols, data_off) = (&self.row_ptr, &self.cols, &self.data_off);
        let est = self
            .data
            .len()
            .checked_div(nb)
            .map_or(1, |per_row| (per_row * k).max(1) as u64);
        let (la, ra) = (&la, &ra);
        let body = |i: usize| {
            let _ = &dp;
            let (ro, rs) = (part.offset(i), part.size(i));
            // Pack L_I's surviving segments once per block row.
            let row_segs: Vec<usize> = (0..n_seg).filter(|&s| la[i * n_seg + s]).collect();
            let a_segs: Vec<Vec<f64>> = row_segs
                .iter()
                .map(|&s| {
                    let (ks, ke) = (s * KG, ((s + 1) * KG).min(k));
                    let kk = ke - ks;
                    let mut a = vec![0.0; rs * kk];
                    for r in 0..rs {
                        a[r * kk..(r + 1) * kk]
                            .copy_from_slice(&fl[(ro + r) * k + ks..(ro + r) * k + ke]);
                    }
                    a
                })
                .collect();
            for p in row_ptr[i]..row_ptr[i + 1] {
                let j = cols[p] as usize;
                let (co, cs) = (part.offset(j), part.size(j));
                let out = unsafe { std::slice::from_raw_parts_mut(dp.0.add(data_off[p]), rs * cs) };
                // Ascending segments preserve the dense accumulation order.
                for (si, &s) in row_segs.iter().enumerate() {
                    if !ra[j * n_seg + s] {
                        continue;
                    }
                    let (ks, ke) = (s * KG, ((s + 1) * KG).min(k));
                    let kk = ke - ks;
                    // b = R_Jᵀ restricted to the segment (kk × cs).
                    let mut b = vec![0.0; kk * cs];
                    for c in 0..cs {
                        for (kkk, bk) in (ks..ke).enumerate() {
                            b[kkk * cs + c] = fr[(co + c) * k + bk];
                        }
                    }
                    gemm(rs, cs, kk, &a_segs[si], &b, out, false);
                }
            }
        };
        if parallel {
            qp_par::for_each_index_hinted(nb, est, body);
        } else {
            for i in 0..nb {
                body(i);
            }
        }
        Ok(())
    }

    /// [`Self::rank_k_update_ab_screened`] with caller-supplied structure:
    /// the factors are delivered as element accessors (`*_elem(row, kc)`)
    /// and per-(block row, [`K_GROUP`]-segment) activity oracles
    /// (`*_active(block, seg)`) instead of dense matrices. Segments are
    /// packed straight from the accessors, so when activity comes from an
    /// a-priori sparsity structure (a screening plan) the whole update is
    /// `O(surviving (pair, segment) blocks)` — no `O(n·k)` dense factor
    /// copy and no `O(n·k)` activity scan.
    ///
    /// Bit-identity contract: the result matches
    /// [`Self::rank_k_update_ab_screened`] on the dense factors
    /// `L[(r,c)] = left_elem(r, c)`, `R[(r,c)] = right_elem(r, c)`
    /// **provided each activity oracle covers every segment where its
    /// factor has a nonzero** (an over-claimed all-zero segment contributes
    /// an exact `+0.0` per the segment lemma above; an under-claimed
    /// nonzero segment silently drops contributions).
    pub fn rank_k_update_ab_packed<LA, RA, LE, RE>(
        &mut self,
        k: usize,
        left_active: LA,
        right_active: RA,
        left_elem: LE,
        right_elem: RE,
        parallel: bool,
    ) -> Result<()>
    where
        LA: Fn(usize, usize) -> bool + Sync,
        RA: Fn(usize, usize) -> bool + Sync,
        LE: Fn(usize, usize) -> f64 + Sync,
        RE: Fn(usize, usize) -> f64 + Sync,
    {
        const KG: usize = crate::gemm::K_GROUP;
        let nb = self.part.n_blocks();
        if k == 0 {
            return Ok(());
        }
        let n_seg = k.div_ceil(KG);
        struct DataPtr(*mut f64);
        unsafe impl Send for DataPtr {}
        unsafe impl Sync for DataPtr {}
        let dp = DataPtr(self.data.as_mut_ptr());
        let part = &self.part;
        let (row_ptr, cols, data_off) = (&self.row_ptr, &self.cols, &self.data_off);
        let est = self
            .data
            .len()
            .checked_div(nb)
            .map_or(1, |per_row| (per_row * k).max(1) as u64);
        let (left_active, right_active) = (&left_active, &right_active);
        let (left_elem, right_elem) = (&left_elem, &right_elem);
        let body = |i: usize| {
            let _ = &dp;
            let (ro, rs) = (part.offset(i), part.size(i));
            let row_segs: Vec<usize> = (0..n_seg).filter(|&s| left_active(i, s)).collect();
            let a_segs: Vec<Vec<f64>> = row_segs
                .iter()
                .map(|&s| {
                    let (ks, ke) = (s * KG, ((s + 1) * KG).min(k));
                    let kk = ke - ks;
                    let mut a = vec![0.0; rs * kk];
                    for r in 0..rs {
                        for (t, kc) in (ks..ke).enumerate() {
                            a[r * kk + t] = left_elem(ro + r, kc);
                        }
                    }
                    a
                })
                .collect();
            for p in row_ptr[i]..row_ptr[i + 1] {
                let j = cols[p] as usize;
                let (co, cs) = (part.offset(j), part.size(j));
                let out = unsafe { std::slice::from_raw_parts_mut(dp.0.add(data_off[p]), rs * cs) };
                // Ascending segments preserve the dense accumulation order.
                for (si, &s) in row_segs.iter().enumerate() {
                    if !right_active(j, s) {
                        continue;
                    }
                    let (ks, ke) = (s * KG, ((s + 1) * KG).min(k));
                    let kk = ke - ks;
                    // b = R_Jᵀ restricted to the segment (kk × cs).
                    let mut b = vec![0.0; kk * cs];
                    for c in 0..cs {
                        for (kkk, bk) in (ks..ke).enumerate() {
                            b[kkk * cs + c] = right_elem(co + c, bk);
                        }
                    }
                    gemm(rs, cs, kk, &a_segs[si], &b, out, false);
                }
            }
        };
        if parallel {
            qp_par::for_each_index_hinted(nb, est, body);
        } else {
            for i in 0..nb {
                body(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tridiagonal-of-blocks structure over `sizes`, plus self pairs.
    fn banded(sizes: &[usize], band: usize) -> (BlockPartition, Vec<usize>, Vec<u32>) {
        let nb = sizes.len();
        let mut row_ptr = vec![0usize];
        let mut cols = Vec::new();
        for i in 0..nb {
            for j in 0..nb {
                if i.abs_diff(j) <= band {
                    cols.push(j as u32);
                }
            }
            row_ptr.push(cols.len());
        }
        (BlockPartition::from_sizes(sizes), row_ptr, cols)
    }

    fn lcg_matrix(n: usize, m: usize, seed: u64) -> DMatrix {
        let mut s = seed;
        let mut out = DMatrix::zeros(n, m);
        for v in out.as_mut_slice().iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((s >> 33) as f64) / (u32::MAX as f64) - 0.5;
        }
        out
    }

    #[test]
    fn dense_roundtrip_masks_off_support() {
        let sizes = [3usize, 1, 4, 2];
        let (part, row_ptr, cols) = banded(&sizes, 1);
        let d = lcg_matrix(10, 10, 7);
        let b = BlockSparseMatrix::from_dense(&d, part.clone(), &row_ptr, &cols).unwrap();
        let back = b.to_dense();
        // Supported entries survive bit-for-bit; others are exactly +0.0.
        let offsets: Vec<usize> = (0..sizes.len()).map(|i| part.offset(i)).collect();
        let block_of = |f: usize| offsets.iter().rposition(|&o| o <= f).unwrap();
        for r in 0..10 {
            for c in 0..10 {
                let (bi, bj) = (block_of(r), block_of(c));
                if bi.abs_diff(bj) <= 1 {
                    assert_eq!(back[(r, c)].to_bits(), d[(r, c)].to_bits());
                } else {
                    assert_eq!(back[(r, c)].to_bits(), 0.0f64.to_bits());
                }
            }
        }
        assert!(b.fill_ratio() < 1.0);
        assert!(b.memory_bytes() > 0);
    }

    #[test]
    fn matmul_matches_masked_dense() {
        let sizes = [2usize, 3, 2, 4, 1];
        let (part, row_ptr, cols) = banded(&sizes, 1);
        let n = part.total();
        let da = lcg_matrix(n, n, 11);
        let db = lcg_matrix(n, n, 23);
        let a = BlockSparseMatrix::from_dense(&da, part.clone(), &row_ptr, &cols).unwrap();
        let b = BlockSparseMatrix::from_dense(&db, part.clone(), &row_ptr, &cols).unwrap();
        let product = a.matmul(&b).unwrap();
        let sparse = product.to_dense();
        let dense = a.to_dense().matmul(&b.to_dense()).unwrap();
        // Same exact terms per element, grouped differently (atom blocks vs
        // K_GROUP segments): values match to rounding, support exactly.
        for (i, (s, d)) in sparse.as_slice().iter().zip(dense.as_slice()).enumerate() {
            assert!(
                (s - d).abs() <= 1e-13 * d.abs().max(1.0),
                "entry {i}: {s} vs {d}"
            );
            if *d == 0.0 && product.find(0, 0).is_some() {
                // Off the product support, to_dense emits exact +0.0.
                continue;
            }
        }
        // Entries outside the closed support are exactly +0.0 in both.
        for bi in 0..sizes.len() {
            for bj in 0..sizes.len() {
                if bi.abs_diff(bj) > 2 {
                    let (ro, co) = (part.offset(bi), part.offset(bj));
                    assert!(product.find(bi, bj).is_none());
                    assert_eq!(sparse[(ro, co)].to_bits(), 0.0f64.to_bits());
                    assert_eq!(dense[(ro, co)].to_bits(), 0.0f64.to_bits());
                }
            }
        }
    }

    #[test]
    fn matmul_widens_support() {
        let sizes = [1usize, 1, 1, 1];
        let (part, row_ptr, cols) = banded(&sizes, 1);
        let mut a = BlockSparseMatrix::zeros(part, &row_ptr, &cols);
        for p in 0..a.nnz_blocks() {
            a.block_mut(p)[0] = 1.0;
        }
        let sq = a.matmul(&a).unwrap();
        // Band 1 squared reaches band 2.
        assert!(sq.find(0, 2).is_some());
        assert!(sq.find(0, 3).is_none());
    }

    #[test]
    fn rank_k_matches_masked_dense_bitwise() {
        let sizes = [3usize, 2, 3, 1, 2];
        let (part, row_ptr, cols) = banded(&sizes, 1);
        let n = part.total();
        let c = lcg_matrix(n, 4, 31);
        let mut m = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        m.rank_k_update(2.0, &c, false).unwrap();
        // Dense oracle with identical per-entry accumulation: α·C·Cᵀ via
        // the same gemm, masked afterwards.
        let mut ct = DMatrix::zeros(4, n);
        for i in 0..n {
            for k in 0..4 {
                ct[(k, i)] = c[(i, k)];
            }
        }
        let mut scaled = c.clone();
        for v in scaled.as_mut_slice().iter_mut() {
            *v *= 2.0;
        }
        let mut dense = DMatrix::zeros(n, n);
        gemm(
            n,
            n,
            4,
            scaled.as_slice(),
            ct.as_slice(),
            dense.as_mut_slice(),
            false,
        );
        let masked = BlockSparseMatrix::from_dense(&dense, part, &row_ptr, &cols)
            .unwrap()
            .to_dense();
        for (s, d) in m.to_dense().as_slice().iter().zip(masked.as_slice()) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn rank_k_parallel_bit_identical_to_serial() {
        let sizes = [4usize, 3, 2, 5, 1, 3];
        let (part, row_ptr, cols) = banded(&sizes, 2);
        let c = lcg_matrix(part.total(), 6, 97);
        let mut serial = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        serial.rank_k_update(1.0, &c, false).unwrap();
        let mut parallel = BlockSparseMatrix::zeros(part, &row_ptr, &cols);
        parallel.rank_k_update(1.0, &c, true).unwrap();
        for (s, p) in serial
            .to_dense()
            .as_slice()
            .iter()
            .zip(parallel.to_dense().as_slice())
        {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn screened_rank_k_bit_identical_to_dense_k() {
        // k spans multiple K_GROUP segments; factors carry a block-local
        // zero structure (each block row supports only a k-window), so the
        // screened path actually skips segments — and must still match the
        // full-k update bit for bit.
        let sizes = [5usize, 3, 4, 2, 6, 3];
        let (part, row_ptr, cols) = banded(&sizes, 2);
        let n = part.total();
        let k = 2 * crate::gemm::K_GROUP + 57;
        let dense_l = lcg_matrix(n, k, 5);
        let dense_r = lcg_matrix(n, k, 17);
        let window = |bi: usize, kk: usize| -> bool {
            // Block bi supports roughly one third of the k range.
            let lo = (bi * k) / (sizes.len() + 2);
            kk >= lo && kk < lo + k / 3
        };
        let block_of = |f: usize| (0..sizes.len()).rfind(|&b| part.offset(b) <= f).unwrap();
        let mask = |m: &DMatrix| -> DMatrix {
            DMatrix::from_fn(n, k, |r, c| {
                if window(block_of(r), c) {
                    m[(r, c)]
                } else {
                    0.0
                }
            })
        };
        let (l, r) = (mask(&dense_l), mask(&dense_r));
        let mut full = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        full.rank_k_update_ab(&l, &r, false).unwrap();
        let mut screened = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        screened.rank_k_update_ab_screened(&l, &r, false).unwrap();
        for (f, s) in full
            .to_dense()
            .as_slice()
            .iter()
            .zip(screened.to_dense().as_slice())
        {
            assert_eq!(f.to_bits(), s.to_bits());
        }
        // Fully dense factors: every segment survives, still identical.
        let mut full2 = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        full2.rank_k_update_ab(&dense_l, &dense_r, false).unwrap();
        let mut scr2 = BlockSparseMatrix::zeros(part, &row_ptr, &cols);
        scr2.rank_k_update_ab_screened(&dense_l, &dense_r, false)
            .unwrap();
        for (f, s) in full2
            .to_dense()
            .as_slice()
            .iter()
            .zip(scr2.to_dense().as_slice())
        {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn screened_rank_k_parallel_bit_identical_to_serial() {
        let sizes = [4usize, 3, 2, 5, 1, 3, 4];
        let (part, row_ptr, cols) = banded(&sizes, 2);
        let k = crate::gemm::K_GROUP + 31;
        let l = lcg_matrix(part.total(), k, 3);
        let r = lcg_matrix(part.total(), k, 9);
        let mut serial = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        serial.rank_k_update_ab_screened(&l, &r, false).unwrap();
        let mut parallel = BlockSparseMatrix::zeros(part, &row_ptr, &cols);
        parallel.rank_k_update_ab_screened(&l, &r, true).unwrap();
        for (s, p) in serial
            .to_dense()
            .as_slice()
            .iter()
            .zip(parallel.to_dense().as_slice())
        {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn packed_rank_k_bit_identical_to_screened() {
        // Same window-masked factors as the screened test, but structure
        // delivered through the oracle/accessor API — including an
        // over-claimed activity oracle (whole window rounded out to
        // segment granularity), which must be invisible per the segment
        // lemma.
        let sizes = [5usize, 3, 4, 2, 6, 3];
        let (part, row_ptr, cols) = banded(&sizes, 2);
        let n = part.total();
        const KG: usize = crate::gemm::K_GROUP;
        let k = 2 * KG + 57;
        let dense_l = lcg_matrix(n, k, 5);
        let dense_r = lcg_matrix(n, k, 17);
        let nb = sizes.len();
        let window = |bi: usize, kk: usize| -> bool {
            let lo = (bi * k) / (nb + 2);
            kk >= lo && kk < lo + k / 3
        };
        let block_of = |f: usize| (0..nb).rfind(|&b| part.offset(b) <= f).unwrap();
        let mask = |m: &DMatrix| -> DMatrix {
            DMatrix::from_fn(n, k, |r, c| {
                if window(block_of(r), c) {
                    m[(r, c)]
                } else {
                    0.0
                }
            })
        };
        let (l, r) = (mask(&dense_l), mask(&dense_r));
        let mut screened = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        screened.rank_k_update_ab_screened(&l, &r, false).unwrap();
        // Segment active iff the window touches it — a superset of the
        // scanned nonzero segments.
        let seg_active =
            |bi: usize, s: usize| (s * KG..((s + 1) * KG).min(k)).any(|kk| window(bi, kk));
        for par in [false, true] {
            let mut packed = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
            packed
                .rank_k_update_ab_packed(
                    k,
                    seg_active,
                    seg_active,
                    |row, kc| l[(row, kc)],
                    |row, kc| r[(row, kc)],
                    par,
                )
                .unwrap();
            for (a, b) in screened
                .to_dense()
                .as_slice()
                .iter()
                .zip(packed.to_dense().as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn scale_and_dimension_errors() {
        let (part, row_ptr, cols) = banded(&[2, 2], 0);
        let mut m = BlockSparseMatrix::zeros(part.clone(), &row_ptr, &cols);
        m.block_mut(0)[0] = 3.0;
        m.scale(0.5);
        assert_eq!(m.block(0)[0], 1.5);
        let bad = lcg_matrix(5, 2, 1);
        assert!(m.rank_k_update(1.0, &bad, false).is_err());
        let other = BlockSparseMatrix::zeros(BlockPartition::from_sizes(&[1, 1]), &row_ptr, &cols);
        assert!(m.matmul(&other).is_err());
    }
}
