//! Span recorder: nestable RAII guards, thread-local buffers, global sink.
//!
//! Hot path when disabled: one relaxed atomic load (a compile-time `false`
//! with the `disabled` cargo feature), no clock read, no allocation. When
//! enabled, closing a span pushes one event into a thread-local `Vec`;
//! buffers drain into the global sink when they reach [`DRAIN_AT`] events
//! and when the thread exits, so rank threads spawned by `qp-mpi::run_spmd`
//! flush themselves without cooperation.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Which stage of the pipeline a span belongs to. Drives Perfetto coloring
/// and lets exporters group DM/Sumup/Rho/H/Sternheimer work per rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Density-matrix update kernels.
    Dm,
    /// Sum-up of the electrostatic multipole potential.
    Sumup,
    /// Charge-density (rho) accumulation.
    Rho,
    /// Response-Hamiltonian integration.
    H,
    /// Sternheimer solve inside a DFPT iteration.
    Sternheimer,
    /// SCF driver iterations.
    Scf,
    /// DFPT driver iterations.
    Dfpt,
    /// MPI collectives and point-to-point traffic.
    Comm,
    /// Device kernel launches (qp-cl).
    Kernel,
    /// Grid partitioning / footprint analysis.
    Grid,
    /// File and exporter I/O.
    Io,
    /// Resilience machinery: fault injection, checkpointing, recovery.
    Resil,
    /// Anything else.
    Other,
}

impl Phase {
    /// Stable lower-case tag used as the trace-event category.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Dm => "dm",
            Phase::Sumup => "sumup",
            Phase::Rho => "rho",
            Phase::H => "h",
            Phase::Sternheimer => "sternheimer",
            Phase::Scf => "scf",
            Phase::Dfpt => "dfpt",
            Phase::Comm => "comm",
            Phase::Kernel => "kernel",
            Phase::Grid => "grid",
            Phase::Io => "io",
            Phase::Resil => "resil",
            Phase::Other => "other",
        }
    }

    /// Reserved Chrome-trace color name, so each phase renders in a
    /// consistent hue in Perfetto / chrome://tracing.
    pub fn color(self) -> &'static str {
        match self {
            Phase::Dm => "thread_state_running",
            Phase::Sumup => "thread_state_iowait",
            Phase::Rho => "thread_state_runnable",
            Phase::H => "thread_state_unknown",
            Phase::Sternheimer => "light_memory_dump",
            Phase::Scf => "background_memory_dump",
            Phase::Dfpt => "detailed_memory_dump",
            Phase::Comm => "generic_work",
            Phase::Kernel => "good",
            Phase::Grid => "bad",
            Phase::Io => "terrible",
            Phase::Resil => "yellow",
            Phase::Other => "grey",
        }
    }
}

/// Which timeline an event lives on: measured host time or the
/// `qp-machine` cost model's simulated exascale time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// Wall-clock time measured in this process.
    Host,
    /// Simulated seconds from the machine model.
    Simulated,
}

/// One closed span, ready for export.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Human-readable span name.
    pub name: String,
    /// Pipeline phase (becomes the trace category + color).
    pub phase: Phase,
    /// Simulated MPI rank the work belongs to (trace `tid`).
    pub rank: usize,
    /// OS-thread ordinal the span was recorded on (nesting is only
    /// meaningful within one thread — the tree builder groups by this).
    pub thread: u64,
    /// Timeline this event belongs to (trace `pid`).
    pub track: Track,
    /// Start, in microseconds since the recorder epoch (host track) or
    /// since simulated t=0 (simulated track).
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Extra key/value payload shown in the trace viewer's args pane.
    pub args: Vec<(&'static str, String)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static OBSERVED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static OBSERVER: Mutex<Option<SpanObserver>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_THREAD: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Callback invoked with every closed span while an observer is installed.
pub type SpanObserver = std::sync::Arc<dyn Fn(&SpanEvent) + Send + Sync>;

/// Events buffered per thread before draining into the global sink.
const DRAIN_AT: usize = 256;

thread_local! {
    static RANK: Cell<usize> = const { Cell::new(0) };
    static THREAD: Cell<u64> = const { Cell::new(u64::MAX) };
    static BUFFER: RefCell<DrainOnExit> = const { RefCell::new(DrainOnExit(Vec::new())) };
}

/// Stable ordinal of the calling OS thread (assigned on first use).
pub fn thread_ordinal() -> u64 {
    THREAD.with(|t| {
        if t.get() == u64::MAX {
            t.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Thread-local buffer wrapper that flushes itself when the thread exits.
struct DrainOnExit(Vec<SpanEvent>);

impl Drop for DrainOnExit {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            SINK.lock().unwrap().append(&mut self.0);
        }
    }
}

/// Is the recorder armed? Compile-time `false` under the `disabled`
/// feature. Spans are live when either the buffering recorder is enabled
/// or a live observer is installed (observer-only mode records nothing —
/// events stream to the callback and are dropped, so a long-running
/// subscriber like the `qp-serve` progress streamer never grows the sink).
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "disabled") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed) || OBSERVED.load(Ordering::Relaxed)
}

/// Install a live span observer: `f` is invoked synchronously with every
/// span closed from now on (on the closing thread), whether or not the
/// buffering recorder is enabled. Replaces any previous observer.
pub fn set_span_observer(f: SpanObserver) {
    *OBSERVER.lock().unwrap() = Some(f);
    // Pin the epoch like set_enabled does, so observed timestamps are sane.
    EPOCH.get_or_init(Instant::now);
    OBSERVED.store(true, Ordering::Relaxed);
}

/// Remove the live span observer (span recording reverts to the
/// `set_enabled` flag alone).
pub fn clear_span_observer() {
    OBSERVED.store(false, Ordering::Relaxed);
    *OBSERVER.lock().unwrap() = None;
}

/// Arm or disarm the recorder at runtime.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps are positive.
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Tag the current thread with its simulated MPI rank; spans opened without
/// an explicit rank inherit it. `qp-mpi::run_spmd` calls this per rank thread.
pub fn set_thread_rank(rank: usize) {
    RANK.with(|r| r.set(rank));
}

/// The rank the current thread is tagged with (0 if never set).
pub fn thread_rank() -> usize {
    RANK.with(|r| r.get())
}

fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

fn push_event(ev: SpanEvent) {
    if OBSERVED.load(Ordering::Relaxed) {
        let observer = OBSERVER.lock().unwrap().clone();
        if let Some(f) = observer {
            f(&ev);
        }
    }
    // Buffer for export only when the recorder proper is enabled — an
    // observer alone streams and drops.
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    BUFFER.with(|b| {
        // Re-entrancy guard: if the TLS buffer is somehow borrowed (e.g. a
        // span closing inside a drain), drop the event rather than panic.
        if let Ok(mut buf) = b.try_borrow_mut() {
            buf.0.push(ev);
            if buf.0.len() >= DRAIN_AT {
                SINK.lock().unwrap().append(&mut buf.0);
            }
        }
    });
}

/// Flush the current thread's buffer into the global sink.
pub fn flush_thread() {
    BUFFER.with(|b| {
        if let Ok(mut buf) = b.try_borrow_mut() {
            if !buf.0.is_empty() {
                SINK.lock().unwrap().append(&mut buf.0);
            }
        }
    });
}

/// Drain everything recorded so far (current thread's buffer included).
/// Threads still running keep their unflushed tails; call after joins.
pub fn take_events() -> Vec<SpanEvent> {
    flush_thread();
    std::mem::take(&mut *SINK.lock().unwrap())
}

/// Number of events currently retained (buffered on this thread + sunk).
pub fn retained_events() -> usize {
    let local = BUFFER.with(|b| b.try_borrow().map(|buf| buf.0.len()).unwrap_or(0));
    local + SINK.lock().unwrap().len()
}

/// Record a span on the **simulated** timeline directly — used where time
/// comes from the `qp-machine` cost model rather than a host clock.
/// `start_s`/`dur_s` are simulated seconds since simulated t=0.
pub fn sim_span(
    rank: usize,
    phase: Phase,
    name: impl Into<String>,
    start_s: f64,
    dur_s: f64,
    args: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    push_event(SpanEvent {
        name: name.into(),
        phase,
        rank,
        thread: thread_ordinal(),
        track: Track::Simulated,
        start_us: start_s * 1e6,
        dur_us: dur_s * 1e6,
        args,
    });
}

/// RAII span: created by [`SpanGuard::begin`] (or the `span!` macro), closed
/// on drop. Inert (a `None` payload) when the recorder is disabled.
#[must_use = "a span guard closes its span when dropped"]
pub struct SpanGuard(Option<OpenSpan>);

struct OpenSpan {
    name: String,
    phase: Phase,
    rank: usize,
    start_us: f64,
    args: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// Open a span for `rank`. Returns an inert guard when disabled.
    #[inline]
    pub fn begin(rank: usize, phase: Phase, name: impl Into<String>) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        SpanGuard(Some(OpenSpan {
            name: name.into(),
            phase,
            rank,
            start_us: now_us(),
            args: Vec::new(),
        }))
    }

    /// Attach a key/value payload (shown in the viewer's args pane).
    /// No-op on an inert guard.
    pub fn arg(&mut self, key: &'static str, value: impl std::fmt::Display) -> &mut Self {
        if let Some(open) = &mut self.0 {
            open.args.push((key, value.to_string()));
        }
        self
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let end = now_us();
            push_event(SpanEvent {
                name: open.name,
                phase: open.phase,
                rank: open.rank,
                thread: thread_ordinal(),
                track: Track::Host,
                start_us: open.start_us,
                dur_us: (end - open.start_us).max(0.0),
                args: open.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share global recorder state; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_clean_recorder(f: impl FnOnce()) {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _ = take_events();
        f();
        set_enabled(false);
        let _ = take_events();
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let _ = take_events();
        {
            let mut s = SpanGuard::begin(3, Phase::Dm, "should-vanish");
            s.arg("k", 1);
            assert!(!s.is_recording());
        }
        sim_span(0, Phase::Comm, "also-vanishes", 0.0, 1.0, Vec::new());
        assert_eq!(retained_events(), 0);
        assert!(take_events().is_empty());
    }

    #[test]
    fn nested_spans_are_ordered_and_contained() {
        with_clean_recorder(|| {
            {
                let _outer = SpanGuard::begin(1, Phase::Scf, "outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = SpanGuard::begin(1, Phase::Dm, "inner");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            let events = take_events();
            assert_eq!(events.len(), 2);
            // Spans close innermost-first.
            assert_eq!(events[0].name, "inner");
            assert_eq!(events[1].name, "outer");
            let (inner, outer) = (&events[0], &events[1]);
            // Containment: inner starts after outer and ends no later.
            assert!(inner.start_us >= outer.start_us);
            assert!(
                inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1.0,
                "inner span must nest within outer"
            );
            assert_eq!(outer.rank, 1);
            assert_eq!(outer.track, Track::Host);
        });
    }

    #[test]
    fn thread_rank_is_inherited_and_buffers_drain_on_exit() {
        with_clean_recorder(|| {
            let h = std::thread::spawn(|| {
                set_thread_rank(7);
                let _s = SpanGuard::begin(thread_rank(), Phase::Comm, "worker");
            });
            h.join().unwrap();
            let events = take_events();
            assert_eq!(events.len(), 1, "thread exit must flush its buffer");
            assert_eq!(events[0].rank, 7);
        });
    }

    #[test]
    fn sim_spans_land_on_simulated_track() {
        with_clean_recorder(|| {
            sim_span(
                4,
                Phase::Sumup,
                "modeled",
                1.5,
                0.25,
                vec![("bytes", "42".into())],
            );
            let events = take_events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].track, Track::Simulated);
            assert_eq!(events[0].start_us, 1.5e6);
            assert_eq!(events[0].dur_us, 0.25e6);
            assert_eq!(events[0].args, vec![("bytes", "42".to_string())]);
        });
    }

    #[test]
    fn args_are_recorded() {
        with_clean_recorder(|| {
            {
                let mut s = SpanGuard::begin(0, Phase::Kernel, "k");
                s.arg("flops", 123).arg("name", "dm_update");
            }
            let events = take_events();
            assert_eq!(
                events[0].args,
                vec![
                    ("flops", "123".to_string()),
                    ("name", "dm_update".to_string())
                ]
            );
        });
    }

    #[test]
    fn observer_streams_without_buffering() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let _ = take_events();
        let seen = std::sync::Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        set_span_observer(std::sync::Arc::new(move |ev: &SpanEvent| {
            sink.lock()
                .unwrap()
                .push(format!("{}:{}", ev.rank, ev.name));
        }));
        {
            let _s = SpanGuard::begin(9, Phase::Dfpt, "observed-only");
        }
        sim_span(2, Phase::Comm, "observed-sim", 0.0, 1.0, Vec::new());
        clear_span_observer();
        // The observer saw both events live...
        assert_eq!(
            *seen.lock().unwrap(),
            vec!["9:observed-only".to_string(), "2:observed-sim".to_string()]
        );
        // ...but nothing was retained for export: observer-only mode must
        // not grow the sink of a long-running process.
        assert_eq!(retained_events(), 0);
        assert!(take_events().is_empty());
        // And once cleared, spans are inert again.
        {
            let _s = SpanGuard::begin(0, Phase::Dfpt, "after-clear");
        }
        assert!(seen.lock().unwrap().len() == 2);
    }

    #[test]
    fn observer_and_recorder_compose() {
        with_clean_recorder(|| {
            let count = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let c = count.clone();
            set_span_observer(std::sync::Arc::new(move |_ev: &SpanEvent| {
                c.fetch_add(1, Ordering::Relaxed);
            }));
            {
                let _s = SpanGuard::begin(1, Phase::Scf, "both-modes");
            }
            clear_span_observer();
            assert_eq!(count.load(Ordering::Relaxed), 1);
            let events = take_events();
            assert_eq!(events.len(), 1, "recorder must still buffer when enabled");
            assert_eq!(events[0].name, "both-modes");
        });
    }
}
