//! Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing) and
//! flat JSON / CSV metrics dumps. JSON is emitted by hand — the crate is
//! dependency-free — with full string escaping, plus a small validating
//! parser used by tests (and callers who want a well-formedness check).

use crate::metrics::{MetricSample, MetricValue};
use crate::span::{SpanEvent, Track};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Trace `pid` for measured host time.
const PID_HOST: u64 = 1;
/// Trace `pid` for the machine model's simulated timeline.
const PID_SIMULATED: u64 = 2;

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_json(s, &mut out);
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Inf; clamp to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn pid_of(track: Track) -> u64 {
    match track {
        Track::Host => PID_HOST,
        Track::Simulated => PID_SIMULATED,
    }
}

fn push_meta(out: &mut Vec<String>, pid: u64, tid: Option<u64>, name: &str) {
    let (ev, tid_field) = match tid {
        Some(t) => ("thread_name", format!(",\"tid\":{t}")),
        None => ("process_name", String::new()),
    };
    out.push(format!(
        "{{\"name\":{},\"ph\":\"M\",\"pid\":{}{},\"args\":{{\"name\":{}}}}}",
        json_string(ev),
        pid,
        tid_field,
        json_string(name)
    ));
}

/// Render spans as a Chrome trace-event JSON document: complete (`"X"`)
/// events, one process per timeline (host pid 1, simulated pid 2), one
/// thread per rank, categories/colors from [`crate::Phase`]. Load the
/// output in Perfetto (<https://ui.perfetto.dev>) or chrome://tracing.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(events.len() + 8);

    // Metadata: name the processes and one thread per (track, rank).
    let mut tracks: BTreeSet<u64> = BTreeSet::new();
    let mut threads: BTreeSet<(u64, usize)> = BTreeSet::new();
    for ev in events {
        let pid = pid_of(ev.track);
        tracks.insert(pid);
        threads.insert((pid, ev.rank));
    }
    for pid in &tracks {
        let name = if *pid == PID_HOST {
            "host wall-clock"
        } else {
            "simulated machine (qp-machine)"
        };
        push_meta(&mut rows, *pid, None, name);
    }
    for (pid, rank) in &threads {
        push_meta(&mut rows, *pid, Some(*rank as u64), &format!("rank {rank}"));
    }

    for ev in events {
        let mut row = String::with_capacity(128);
        let _ = write!(
            row,
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"cname\":{}",
            json_string(&ev.name),
            json_string(ev.phase.as_str()),
            json_f64(ev.start_us),
            json_f64(ev.dur_us),
            pid_of(ev.track),
            ev.rank,
            json_string(ev.phase.color()),
        );
        if !ev.args.is_empty() {
            row.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    row.push(',');
                }
                let _ = write!(row, "{}:{}", json_string(k), json_string(v));
            }
            row.push('}');
        }
        row.push('}');
        rows.push(row);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn metric_value_json(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => format!("{{\"type\":\"counter\",\"value\":{c}}}"),
        MetricValue::Gauge(g) => format!("{{\"type\":\"gauge\",\"value\":{}}}", json_f64(*g)),
        MetricValue::Histogram {
            count,
            sum,
            min,
            max,
        } => format!(
            "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
            count,
            json_f64(*sum),
            json_f64(*min),
            json_f64(*max)
        ),
    }
}

/// Render a metrics snapshot as a JSON array of
/// `{name, labels: {..}, type, ...}` objects.
pub fn metrics_json(samples: &[MetricSample]) -> String {
    let mut rows = Vec::with_capacity(samples.len());
    for s in samples {
        let mut row = String::with_capacity(96);
        let _ = write!(row, "{{\"name\":{},\"labels\":{{", json_string(&s.key.name));
        for (i, (k, v)) in s.key.labels.iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            let _ = write!(row, "{}:{}", json_string(k), json_string(v));
        }
        // Splice the metric payload's fields into this object.
        let payload = metric_value_json(&s.value);
        let _ = write!(row, "}},{}", &payload[1..]);
        rows.push(row);
    }
    format!("[\n{}\n]\n", rows.join(",\n"))
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a metrics snapshot as flat CSV:
/// `name,labels,type,value,count,sum,min,max` (unused columns empty).
pub fn metrics_csv(samples: &[MetricSample]) -> String {
    let mut out = String::from("name,labels,type,value,count,sum,min,max\n");
    for s in samples {
        let labels = s
            .key
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";");
        let row = match &s.value {
            MetricValue::Counter(c) => format!("counter,{c},,,,"),
            MetricValue::Gauge(g) => format!("gauge,{g},,,,"),
            MetricValue::Histogram {
                count,
                sum,
                min,
                max,
            } => format!("histogram,,{count},{sum},{min},{max}"),
        };
        let _ = writeln!(
            out,
            "{},{},{}",
            csv_field(&s.key.name),
            csv_field(&labels),
            row
        );
    }
    out
}

/// Minimal recursive-descent JSON well-formedness check (no data model —
/// just syntax). Used by the exporter tests; handy for asserting that a
/// written trace will load in Perfetto.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos:?}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos:?}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricKey, MetricSample};
    use crate::span::Phase;

    fn event(name: &str, rank: usize, track: Track) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            phase: Phase::Dm,
            rank,
            thread: 0,
            track,
            start_us: 1.0,
            dur_us: 2.5,
            args: vec![("bytes", "17".to_string())],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks() {
        let events = vec![
            event("a \"quoted\"\nname", 0, Track::Host),
            event("b", 3, Track::Simulated),
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json).unwrap();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("rank 3"));
        assert!(json.contains("a \\\"quoted\\\"\\nname"));
    }

    #[test]
    fn empty_trace_is_valid() {
        validate_json(&chrome_trace_json(&[])).unwrap();
    }

    fn sample(name: &str, value: MetricValue) -> MetricSample {
        MetricSample {
            key: MetricKey {
                name: name.to_string(),
                labels: vec![("kind".to_string(), "AllReduce".to_string())],
            },
            value,
        }
    }

    #[test]
    fn metrics_json_and_csv_render() {
        let samples = vec![
            sample("bytes", MetricValue::Counter(42)),
            sample("residual", MetricValue::Gauge(1e-8)),
            sample(
                "lat,weird",
                MetricValue::Histogram {
                    count: 2,
                    sum: 3.0,
                    min: 1.0,
                    max: 2.0,
                },
            ),
        ];
        let json = metrics_json(&samples);
        validate_json(&json).unwrap();
        assert!(json.contains("\"type\":\"counter\",\"value\":42"));
        let csv = metrics_csv(&samples);
        assert!(csv.starts_with("name,labels,type,value,count,sum,min,max\n"));
        assert!(csv.contains("bytes,kind=AllReduce,counter,42"));
        assert!(csv.contains("\"lat,weird\""), "comma fields must be quoted");
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("{\"a\":[1,2.5e-3,true,null,\"s\"]}").is_ok());
    }
}
