//! Span attribution: exclusive-time (self-time) trees and collapsed stacks.
//!
//! A span's *duration* includes everything nested inside it, so summing
//! durations per phase double-counts (an SCF iteration span contains its DM
//! and Rho spans). This module rebuilds the nesting forest from closed
//! [`SpanEvent`]s and charges each span only its **self time** — duration
//! minus the durations of its direct children — which partitions wall time
//! exactly: the self times of a (sub)tree sum to the root's duration.
//!
//! Nesting is reconstructed per `(rank, thread)` from timestamp containment;
//! spans on different threads never nest into each other. Only `Track::Host`
//! events participate — simulated-timeline spans are cost-model output, not
//! measured wall time.

use crate::span::{SpanEvent, Track};
use std::collections::BTreeMap;

/// One span in the reconstructed nesting forest.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (as recorded).
    pub name: String,
    /// Phase tag, e.g. `"rho"` (see [`crate::Phase::as_str`]).
    pub phase: &'static str,
    /// Simulated rank the span was attributed to.
    pub rank: usize,
    /// Start, µs since the recorder epoch.
    pub start_us: f64,
    /// Inclusive duration, µs.
    pub dur_us: f64,
    /// Exclusive duration, µs: `dur_us` minus direct children's `dur_us`,
    /// clamped at 0 (clock jitter can make children overshoot slightly).
    pub self_us: f64,
    /// Directly nested spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(ev: &SpanEvent) -> SpanNode {
        SpanNode {
            name: ev.name.clone(),
            phase: ev.phase.as_str(),
            rank: ev.rank,
            start_us: ev.start_us,
            dur_us: ev.dur_us,
            self_us: ev.dur_us,
            children: Vec::new(),
        }
    }

    fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// Rebuild the nesting forest from closed host-track spans.
///
/// Roots are ordered by `(rank, thread, start)`; within a parent, children
/// are in start order. A span becomes a child of the innermost same-thread
/// span whose `[start, end]` interval contains it (with a small epsilon for
/// clock jitter at the edges).
pub fn build_forest(events: &[SpanEvent]) -> Vec<SpanNode> {
    // Tolerance for "ends no later than parent": drop-order timing means a
    // child's recorded end can exceed its parent's by the cost of a clock
    // read or two.
    const EDGE_EPS_US: f64 = 5.0;

    // Group by (rank, thread): nesting is only meaningful within one thread,
    // and rank keeps SPMD timelines apart even when rank threads are reused.
    let mut groups: BTreeMap<(usize, u64), Vec<&SpanEvent>> = BTreeMap::new();
    for ev in events {
        if ev.track == Track::Host {
            groups.entry((ev.rank, ev.thread)).or_default().push(ev);
        }
    }

    let mut forest = Vec::new();
    for (_, mut evs) in groups {
        // Start ascending; ties broken longest-first so a parent that opened
        // in the same clock tick as its child sorts before it.
        evs.sort_by(|a, b| {
            a.start_us
                .total_cmp(&b.start_us)
                .then(b.dur_us.total_cmp(&a.dur_us))
        });
        let mut stack: Vec<SpanNode> = Vec::new();
        for ev in evs {
            let node = SpanNode::new(ev);
            // Pop completed ancestors: anything that ends before this span
            // starts cannot contain it.
            while let Some(top) = stack.last() {
                if node.start_us < top.end_us() - EDGE_EPS_US.min(top.dur_us) {
                    break;
                }
                attach(&mut stack, &mut forest);
            }
            stack.push(node);
        }
        while !stack.is_empty() {
            attach(&mut stack, &mut forest);
        }
    }
    forest
}

/// Pop the top of `stack` and attach it to its parent (or the forest),
/// charging its duration against the parent's self time.
fn attach(stack: &mut Vec<SpanNode>, forest: &mut Vec<SpanNode>) {
    let done = stack.pop().expect("attach on empty stack");
    match stack.last_mut() {
        Some(parent) => {
            parent.self_us = (parent.self_us - done.dur_us).max(0.0);
            parent.children.push(done);
        }
        None => forest.push(done),
    }
}

/// Total self time per phase tag, in µs, summed over the whole forest.
/// Because self times partition each tree, the map's values sum to the
/// roots' total duration.
pub fn self_time_by_phase(forest: &[SpanNode]) -> BTreeMap<&'static str, f64> {
    let mut acc = BTreeMap::new();
    fn walk(node: &SpanNode, acc: &mut BTreeMap<&'static str, f64>) {
        *acc.entry(node.phase).or_insert(0.0) += node.self_us;
        for c in &node.children {
            walk(c, acc);
        }
    }
    for root in forest {
        walk(root, &mut acc);
    }
    acc
}

/// Flamegraph-compatible collapsed stacks: one `a;b;c <self_us>` line per
/// distinct call path, self time in integer µs, paths sorted for
/// deterministic output. Feed straight into `flamegraph.pl` /
/// `inferno-flamegraph`.
pub fn collapsed_stacks(events: &[SpanEvent]) -> String {
    let forest = build_forest(events);
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    fn walk(node: &SpanNode, prefix: &str, lines: &mut BTreeMap<String, u64>) {
        // Frame names must not contain the format's separators.
        let frame = node.name.replace([';', ' '], "_");
        let path = if prefix.is_empty() {
            frame
        } else {
            format!("{prefix};{frame}")
        };
        *lines.entry(path.clone()).or_insert(0) += node.self_us.round().max(0.0) as u64;
        for c in &node.children {
            walk(c, &path, lines);
        }
    }
    for root in &forest {
        walk(root, "", &mut lines);
    }
    let mut out = String::new();
    for (path, us) in lines {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn ev(name: &str, phase: Phase, thread: u64, start_us: f64, dur_us: f64) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            phase,
            rank: 0,
            thread,
            track: Track::Host,
            start_us,
            dur_us,
            args: Vec::new(),
        }
    }

    #[test]
    fn parent_self_time_is_total_minus_children() {
        // outer [0, 100] containing inner1 [10, 30] and inner2 [40, 90].
        let events = vec![
            ev("inner1", Phase::Dm, 0, 10.0, 20.0),
            ev("outer", Phase::Scf, 0, 0.0, 100.0),
            ev("inner2", Phase::Rho, 0, 40.0, 50.0),
        ];
        let forest = build_forest(&events);
        assert_eq!(forest.len(), 1);
        let outer = &forest[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "inner1");
        assert_eq!(outer.children[1].name, "inner2");
        // The satellite contract: self = total − Σ children.
        assert!((outer.self_us - (100.0 - 20.0 - 50.0)).abs() < 1e-9);
        assert!((outer.children[0].self_us - 20.0).abs() < 1e-9);

        // Self times partition the tree: they sum to the root duration.
        let by_phase = self_time_by_phase(&forest);
        let total: f64 = by_phase.values().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((by_phase["scf"] - 30.0).abs() < 1e-9);
        assert!((by_phase["dm"] - 20.0).abs() < 1e-9);
        assert!((by_phase["rho"] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn deep_nesting_chains_self_times() {
        let events = vec![
            ev("a", Phase::Scf, 0, 0.0, 100.0),
            ev("b", Phase::Dfpt, 0, 10.0, 80.0),
            ev("c", Phase::Sternheimer, 0, 20.0, 30.0),
        ];
        let forest = build_forest(&events);
        assert_eq!(forest.len(), 1);
        let a = &forest[0];
        let b = &a.children[0];
        let c = &b.children[0];
        assert!((a.self_us - 20.0).abs() < 1e-9);
        assert!((b.self_us - 50.0).abs() < 1e-9);
        assert!((c.self_us - 30.0).abs() < 1e-9);
    }

    #[test]
    fn threads_do_not_nest_into_each_other() {
        // Identical intervals on two threads: two roots, not containment.
        let events = vec![
            ev("t0", Phase::Rho, 0, 0.0, 50.0),
            ev("t1", Phase::Rho, 1, 0.0, 50.0),
        ];
        let forest = build_forest(&events);
        assert_eq!(forest.len(), 2);
        assert!(forest.iter().all(|n| n.children.is_empty()));
    }

    #[test]
    fn simulated_track_is_excluded() {
        let mut sim = ev("sim", Phase::Comm, 0, 0.0, 10.0);
        sim.track = Track::Simulated;
        let events = vec![sim, ev("host", Phase::Dm, 0, 0.0, 10.0)];
        let forest = build_forest(&events);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "host");
    }

    #[test]
    fn sibling_spans_stay_siblings() {
        // Back-to-back spans where the second starts exactly at the first's
        // end must not become parent/child.
        let events = vec![
            ev("first", Phase::Dm, 0, 0.0, 10.0),
            ev("second", Phase::Rho, 0, 10.0, 10.0),
        ];
        let forest = build_forest(&events);
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn collapsed_stacks_format_and_determinism() {
        let events = vec![
            ev("outer", Phase::Scf, 0, 0.0, 100.0),
            ev("inner one", Phase::Dm, 0, 10.0, 20.0),
            ev("inner one", Phase::Dm, 0, 40.0, 25.0),
        ];
        let folded = collapsed_stacks(&events);
        // Repeated paths merge; spaces in names are sanitized.
        assert_eq!(folded, "outer 55\nouter;inner_one 45\n");
        assert_eq!(folded, collapsed_stacks(&events));
    }
}
