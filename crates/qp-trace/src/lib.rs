//! # qp-trace
//!
//! Unified observability for the whole DFPT stack: one span recorder, one
//! metrics registry, one set of exporters, one leveled logger — replacing
//! the former islands (`qp-cl` kernel counters, `qp-mpi` traffic records,
//! `qp-grid` footprints, ad-hoc `println!` chatter) with a single substrate
//! every layer reports into. This is the per-phase / per-rank accounting the
//! paper's whole evaluation (Figs. 9–16) is built on, made first-class.
//!
//! * [`span`] — `span!(rank, phase, name)` guards capturing wall-clock
//!   microseconds (and optionally `qp-machine` simulated seconds), nestable,
//!   recorded into thread-local buffers drained into a global sink. When
//!   tracing is disabled the guard is inert: one relaxed atomic load, no
//!   allocation, no clock read (and with the `disabled` cargo feature the
//!   check is a compile-time constant).
//! * [`metrics`] — labeled `Counter` / `Gauge` / `Histogram` registry with
//!   structured snapshots; a process-global registry plus instantiable
//!   per-subsystem ones (e.g. each `qp-mpi` world's traffic mirror).
//! * [`attrib`] — span attribution: rebuilds the nesting forest from closed
//!   spans, computes exclusive (self) time per span and per phase, and
//!   emits flamegraph-compatible collapsed stacks.
//! * [`export`] — Chrome trace-event JSON (loadable in Perfetto: one track
//!   per rank, phase-colored spans, a second process for simulated time)
//!   and flat JSON/CSV metrics dumps.
//! * [`log`] — `QP_LOG={error,warn,info,debug}` leveled logging macros;
//!   `info`/`debug` go to stdout, `warn`/`error` to stderr, matching the
//!   CLI's historical output at the default `info` level.
//!
//! ## Environment hooks
//!
//! [`init_from_env`] arms the recorder when `QP_TRACE=<path>` is set (and
//! notes `QP_METRICS=<path>`); [`finish`] writes the pending trace/metrics
//! files. Binaries call the pair around their run; libraries only ever emit.

pub mod attrib;
pub mod export;
pub mod log;
pub mod metrics;
pub mod span;

pub use attrib::{build_forest, collapsed_stacks, self_time_by_phase, SpanNode};
pub use export::{chrome_trace_json, metrics_csv, metrics_json, validate_json};
pub use metrics::{global_metrics, Counter, Gauge, Histogram, MetricValue, MetricsRegistry};
pub use span::{
    clear_span_observer, enabled, set_enabled, set_span_observer, set_thread_rank, sim_span,
    thread_rank, Phase, SpanEvent, SpanGuard, SpanObserver,
};

use std::sync::Mutex;

static OUT_PATHS: Mutex<(Option<String>, Option<String>)> = Mutex::new((None, None));

/// Arm tracing from the environment: `QP_TRACE=<path>` enables the span
/// recorder and schedules a Chrome-trace write to `<path>` at [`finish`];
/// `QP_METRICS=<path>` schedules a metrics JSON (or CSV, by extension) dump.
/// Returns whether tracing was enabled.
pub fn init_from_env() -> bool {
    let trace = std::env::var("QP_TRACE").ok().filter(|p| !p.is_empty());
    let metrics = std::env::var("QP_METRICS").ok().filter(|p| !p.is_empty());
    let mut paths = OUT_PATHS.lock().unwrap();
    if let Some(p) = &trace {
        set_enabled(true);
        paths.0 = Some(p.clone());
    }
    if let Some(p) = &metrics {
        paths.1 = Some(p.clone());
    }
    trace.is_some()
}

/// Override the trace output path programmatically (e.g. `--trace` flags).
pub fn set_trace_path(path: impl Into<String>) {
    set_enabled(true);
    OUT_PATHS.lock().unwrap().0 = Some(path.into());
}

/// Override the metrics output path programmatically.
pub fn set_metrics_path(path: impl Into<String>) {
    OUT_PATHS.lock().unwrap().1 = Some(path.into());
}

/// Drain every recorded span and write the scheduled output files. Call
/// once, at the end of the program, after worker threads have exited.
/// Returns the trace path written, if any.
pub fn finish() -> std::io::Result<Option<String>> {
    let (trace_path, metrics_path) = {
        let mut paths = OUT_PATHS.lock().unwrap();
        (paths.0.take(), paths.1.take())
    };
    if let Some(path) = &trace_path {
        let events = span::take_events();
        std::fs::write(path, chrome_trace_json(&events))?;
    }
    if let Some(path) = &metrics_path {
        let snap = global_metrics().snapshot();
        let body = if path.ends_with(".csv") {
            metrics_csv(&snap)
        } else {
            metrics_json(&snap)
        };
        std::fs::write(path, body)?;
    }
    Ok(trace_path)
}

/// Open a span: `span!(phase, name)` on the current thread's rank, or
/// `span!(rank, phase, name)` with an explicit rank. Binds the returned
/// guard to `_span`-style lets; the span closes when the guard drops.
#[macro_export]
macro_rules! span {
    ($phase:expr, $name:expr) => {
        $crate::SpanGuard::begin($crate::thread_rank(), $phase, $name)
    };
    ($rank:expr, $phase:expr, $name:expr) => {
        $crate::SpanGuard::begin($rank, $phase, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_writes_scheduled_files() {
        let dir = std::env::temp_dir().join("qp-trace-test-finish");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        let metrics = dir.join("m.csv");
        set_trace_path(trace.to_str().unwrap());
        set_metrics_path(metrics.to_str().unwrap());
        {
            let _s = span!(0, Phase::Other, "file-test");
        }
        finish().unwrap();
        set_enabled(false);
        let body = std::fs::read_to_string(&trace).unwrap();
        validate_json(&body).unwrap();
        assert!(body.contains("file-test"));
        assert!(std::fs::read_to_string(&metrics)
            .unwrap()
            .starts_with("name,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
