//! Labeled Counter / Gauge / Histogram registry.
//!
//! Handles are cheap `Arc`-backed clones; registration takes a lock, but
//! incrementing is a single atomic op, so hot loops should hoist the handle
//! (`let c = reg.counter(...); for .. { c.add(n) }`). A process-global
//! registry ([`global_metrics`]) unifies the per-subsystem counter islands;
//! subsystems that need isolated accounting (e.g. each `qp-mpi` world's
//! traffic mirror) embed their own `MetricsRegistry`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// `(name, sorted labels)` identity of one time series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated by convention (`mpi.collective.bytes`).
    pub name: String,
    /// Label pairs, sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Monotonically increasing integer metric.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point metric (residuals, occupancies, ...).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct HistState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Streaming distribution summary: count / sum / min / max.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<HistState>>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let mut h = self.0.lock().unwrap();
        if h.count == 0 {
            h.min = v;
            h.max = v;
        } else {
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h.count += 1;
        h.sum += v;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.lock().unwrap().count
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        self.0.lock().unwrap().sum
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Point-in-time value of one metric, as captured by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram summary: `count`, `sum`, `min`, `max`.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Smallest observation (0 when empty).
        min: f64,
        /// Largest observation (0 when empty).
        max: f64,
    },
}

/// One `(key, value)` row of a snapshot.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Series identity.
    pub key: MetricKey,
    /// Captured value.
    pub value: MetricValue,
}

/// Registry of labeled metrics. `Default`-constructible for embedding;
/// use [`global_metrics`] for the process-wide instance.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `(name, labels)`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or register the gauge `(name, labels)`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or register the histogram `(name, labels)`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(Mutex::new(HistState::default()))))
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Capture every registered series, sorted by key.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(key, metric)| MetricSample {
                key: key.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let s = *h.0.lock().unwrap();
                        MetricValue::Histogram {
                            count: s.count,
                            sum: s.sum,
                            min: s.min,
                            max: s.max,
                        }
                    }
                },
            })
            .collect()
    }

    /// Reading of one counter, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        match self.inner.lock().unwrap().get(&key) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Drop every registered series (tests / between runs).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

/// The process-wide registry all subsystems report into by default.
pub fn global_metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("bytes", &[("kind", "AllReduce")]);
        let b = reg.counter("bytes", &[("kind", "AllReduce")]);
        let other = reg.counter("bytes", &[("kind", "Broadcast")]);
        a.add(10);
        b.add(5);
        other.inc();
        assert_eq!(a.get(), 15);
        assert_eq!(
            reg.counter_value("bytes", &[("kind", "AllReduce")]),
            Some(15)
        );
        assert_eq!(
            reg.counter_value("bytes", &[("kind", "Broadcast")]),
            Some(1)
        );
    }

    #[test]
    fn labels_are_order_insensitive() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauge_and_histogram() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("residual", &[("phase", "scf")]);
        g.set(1e-6);
        assert_eq!(g.get(), 1e-6);
        let h = reg.histogram("lat", &[]);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 6.0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        let hist = snap.iter().find(|s| s.key.name == "lat").unwrap();
        assert_eq!(
            hist.value,
            MetricValue::Histogram {
                count: 2,
                sum: 6.0,
                min: 2.0,
                max: 4.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("clash", &[]);
        let _ = reg.gauge("clash", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_clear_empties() {
        let reg = MetricsRegistry::new();
        reg.counter("b", &[]).inc();
        reg.counter("a", &[]).inc();
        let names: Vec<_> = reg.snapshot().into_iter().map(|s| s.key.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        reg.clear();
        assert!(reg.snapshot().is_empty());
    }
}
