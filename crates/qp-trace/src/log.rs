//! Leveled logging controlled by `QP_LOG={error,warn,info,debug}`.
//!
//! The default level is `info`, and `info`/`debug` write to stdout while
//! `warn`/`error` write to stderr — so at the default level the CLI's
//! output is byte-identical to its historical `println!`/`eprintln!` form,
//! and `QP_LOG=error` silences progress chatter for scripted runs.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or wrong-answer conditions (stderr).
    Error = 0,
    /// Suspicious but non-fatal conditions (stderr).
    Warn = 1,
    /// Normal progress output (stdout) — the default.
    Info = 2,
    /// Verbose internals (stdout).
    Debug = 3,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 4 = "uninitialized, read QP_LOG on first use".
const UNSET: u8 = 4;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The active log level (initialized from `QP_LOG` on first call).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => {
            let lvl = std::env::var("QP_LOG")
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Info);
            LEVEL.store(lvl as u8, Ordering::Relaxed);
            lvl
        }
    }
}

/// Override the log level programmatically (wins over `QP_LOG`).
pub fn set_level(lvl: Level) {
    LEVEL.store(lvl as u8, Ordering::Relaxed);
}

/// Would a message at `lvl` be emitted?
#[inline]
pub fn log_enabled(lvl: Level) -> bool {
    lvl <= level()
}

/// Log at `error` level (stderr).
#[macro_export]
macro_rules! qp_error {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Error) {
            eprintln!($($arg)*);
        }
    };
}

/// Log at `warn` level (stderr).
#[macro_export]
macro_rules! qp_warn {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Warn) {
            eprintln!($($arg)*);
        }
    };
}

/// Log at `info` level (stdout) — the default progress stream.
#[macro_export]
macro_rules! qp_info {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Info) {
            println!($($arg)*);
        }
    };
}

/// Log at `debug` level (stdout); silent unless `QP_LOG=debug`.
#[macro_export]
macro_rules! qp_debug {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Debug) {
            println!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_known_levels() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn set_level_gates_macros() {
        set_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
        // Restore the default so other tests see stock behavior.
        set_level(Level::Info);
    }
}
