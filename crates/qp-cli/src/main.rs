//! `qperturb` — command-line all-electron DFPT, the analog of the paper's
//! `aims.191127.scalapack.mpi.x` workflow: read a geometry, run the DFT
//! phase, run the DFPT phase, report polarizability and derived properties.
//!
//! ```text
//! qperturb geometry.in                 # FHI-aims format (Å)
//! qperturb molecule.xyz --basis tier2  # XYZ format
//! qperturb --builtin water --dfpt-tol 1e-8
//! qperturb --builtin water --trace trace.json --metrics metrics.csv
//! ```
//!
//! Output verbosity follows `QP_LOG={error,warn,info,debug}` (default
//! `info`, which matches the historical output exactly). `--trace` /
//! `--metrics` (or the `QP_TRACE` / `QP_METRICS` environment variables)
//! write a Chrome trace-event timeline and a metrics dump on exit.

mod control;

use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_core::{dfpt, properties, scf, DfptOptions, ScfOptions, System};
use qp_trace::{qp_error, qp_info, qp_warn};
use std::process::ExitCode;

struct Args {
    input: Option<String>,
    control: Option<String>,
    builtin: Option<String>,
    basis: BasisSettings,
    grid: GridSettings,
    scf: ScfOptions,
    dfpt_opts: DfptOptions,
    skip_dfpt: bool,
    trace: Option<String>,
    metrics: Option<String>,
}

fn usage() -> ! {
    qp_error!(
        "usage: qperturb <geometry.in|molecule.xyz> [options]
       qperturb --builtin <water|ligand|polymer:N|helix:N> [options]

options:
  --control <control.in>   FHI-aims control deck (xc, tolerances, mixer,
                           occupation_type, DFPT keyword)
  --basis <light|tier2>    NAO basis setting          (default light)
  --grid <light|coarse>    integration grid           (default light)
  --scf-tol <x>            SCF density tolerance      (default 1e-8)
  --scf-mixing <x>         SCF linear-mixing factor   (default 0.35)
  --smearing <kT>          Fermi-Dirac smearing, Ha   (default off)
  --no-pulay               disable DIIS acceleration
  --dfpt-tol <x>           DFPT tolerance             (default 1e-7)
  --dfpt-mixing <x>        DFPT mixing                (default 0.6)
  --no-dfpt                stop after the ground state
  --trace <out.json>       write a Chrome trace-event timeline on exit
  --metrics <out.json|csv> write the metrics registry snapshot on exit

environment:
  QP_LOG=error|warn|info|debug   output verbosity (default info)
  QP_TRACE=<path>, QP_METRICS=<path>   same as --trace / --metrics"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        input: None,
        control: None,
        builtin: None,
        basis: BasisSettings::Light,
        grid: GridSettings::light(),
        scf: ScfOptions::default(),
        dfpt_opts: DfptOptions::default(),
        skip_dfpt: false,
        trace: None,
        metrics: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                qp_error!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--builtin" => args.builtin = Some(value("--builtin")),
            "--control" => args.control = Some(value("--control")),
            "--basis" => {
                args.basis = match value("--basis").as_str() {
                    "light" => BasisSettings::Light,
                    "tier2" => BasisSettings::Tier2,
                    other => {
                        qp_error!("unknown basis '{other}'");
                        usage()
                    }
                }
            }
            "--grid" => {
                args.grid = match value("--grid").as_str() {
                    "light" => GridSettings::light(),
                    "coarse" => GridSettings::coarse(),
                    other => {
                        qp_error!("unknown grid '{other}'");
                        usage()
                    }
                }
            }
            "--scf-tol" => args.scf.tol = value("--scf-tol").parse().unwrap_or_else(|_| usage()),
            "--scf-mixing" => {
                args.scf.mixing = value("--scf-mixing").parse().unwrap_or_else(|_| usage())
            }
            "--smearing" => {
                args.scf.smearing = Some(value("--smearing").parse().unwrap_or_else(|_| usage()))
            }
            "--no-pulay" => args.scf.pulay = None,
            "--dfpt-tol" => {
                args.dfpt_opts.tol = value("--dfpt-tol").parse().unwrap_or_else(|_| usage())
            }
            "--dfpt-mixing" => {
                args.dfpt_opts.mixing = value("--dfpt-mixing").parse().unwrap_or_else(|_| usage())
            }
            "--no-dfpt" => args.skip_dfpt = true,
            "--trace" => args.trace = Some(value("--trace")),
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                qp_error!("unknown option '{other}'");
                usage()
            }
            path => args.input = Some(path.to_string()),
        }
    }
    if args.input.is_none() && args.builtin.is_none() {
        usage()
    }
    args
}

fn load_structure(args: &Args) -> Result<qp_chem::geometry::Structure, String> {
    if let Some(b) = &args.builtin {
        let (name, param) = match b.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (b.as_str(), None),
        };
        return match name {
            "water" => Ok(qp_chem::structures::water()),
            "ligand" => Ok(qp_chem::structures::ligand49()),
            "polymer" => {
                let n: usize = param.unwrap_or("10").parse().map_err(|e| format!("{e}"))?;
                Ok(qp_chem::structures::polyethylene(n))
            }
            "helix" => {
                let n: usize = param.unwrap_or("10").parse().map_err(|e| format!("{e}"))?;
                Ok(qp_chem::structures::helix(n))
            }
            other => Err(format!("unknown builtin '{other}'")),
        };
    }
    let path = args.input.as_ref().expect("input or builtin");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".xyz") {
        qp_chem::io::parse_xyz(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        qp_chem::io::parse_geometry_in(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Flush any scheduled trace/metrics files, logging where they landed.
fn finish_observability() {
    match qp_trace::finish() {
        Ok(Some(path)) => qp_info!("trace written to {path}"),
        Ok(None) => {}
        Err(e) => qp_warn!("failed to write trace/metrics: {e}"),
    }
}

fn run(args: &Args) -> ExitCode {
    let structure = match load_structure(args) {
        Ok(s) => s,
        Err(e) => {
            qp_error!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    qp_info!("qperturb — all-electron DFPT");
    qp_info!(
        "structure: {} atoms, {} electrons",
        structure.len(),
        structure.num_electrons()
    );
    let t0 = std::time::Instant::now();
    let system = System::build(structure, args.basis, &args.grid, 200, 4);
    qp_info!(
        "system: {} basis functions, {} grid points, {} batches  [{:.1?}]",
        system.n_basis(),
        system.n_points(),
        system.batches.len(),
        t0.elapsed()
    );

    let t1 = std::time::Instant::now();
    let ground = match scf(&system, &args.scf) {
        Ok(g) => g,
        Err(e) => {
            qp_error!("SCF failed: {e}");
            qp_error!("hint: try --smearing 0.02 and/or a smaller --scf-mixing");
            return ExitCode::FAILURE;
        }
    };
    let n_occ = system.n_occupied();
    qp_info!(
        "SCF: {} iterations, E = {:.6} Ha, HOMO {:.4}, LUMO {:.4}  [{:.1?}]",
        ground.iterations,
        ground.energy,
        ground.eigenvalues[n_occ - 1],
        ground.eigenvalues[n_occ],
        t1.elapsed()
    );
    let mu = properties::dipole_moment(&system, &ground);
    qp_info!("dipole: [{:.4}, {:.4}, {:.4}] a.u.", mu[0], mu[1], mu[2]);

    if args.skip_dfpt {
        return ExitCode::SUCCESS;
    }

    let t2 = std::time::Instant::now();
    let resp = match dfpt(&system, &ground, &args.dfpt_opts) {
        Ok(r) => r,
        Err(e) => {
            qp_error!("DFPT failed: {e}");
            qp_error!("hint: near-metallic systems need a smaller --dfpt-mixing");
            return ExitCode::FAILURE;
        }
    };
    qp_info!(
        "DFPT: {:?} iterations per direction  [{:.1?}]",
        resp.iterations,
        t2.elapsed()
    );
    qp_info!("polarizability tensor (Bohr^3):");
    for i in 0..3 {
        qp_info!(
            "  [ {:10.4} {:10.4} {:10.4} ]",
            resp.polarizability[(i, 0)],
            resp.polarizability[(i, 1)],
            resp.polarizability[(i, 2)]
        );
    }
    qp_info!(
        "isotropic: {:.4} Bohr^3, anisotropy: {:.4} Bohr^3",
        properties::isotropic_polarizability(&resp.polarizability),
        properties::polarizability_anisotropy(&resp.polarizability)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = parse_args();
    // Environment hooks first, explicit flags override.
    qp_trace::init_from_env();
    if let Some(path) = args.trace.clone() {
        qp_trace::set_enabled(true);
        qp_trace::set_trace_path(&path);
    }
    if let Some(path) = args.metrics.clone() {
        qp_trace::set_metrics_path(&path);
    }
    if let Some(path) = args.control.clone() {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                qp_error!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match control::parse_control(&text) {
            Ok(ctl) => {
                args.scf = ctl.scf;
                args.dfpt_opts = ctl.dfpt;
                args.skip_dfpt = !ctl.run_dfpt;
                for line in &ctl.ignored {
                    qp_warn!("control.in: ignoring '{line}'");
                }
            }
            Err(e) => {
                qp_error!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let code = run(&args);
    finish_observability();
    code
}
