//! `qperturb` — command-line all-electron DFPT, the analog of the paper's
//! `aims.191127.scalapack.mpi.x` workflow: read a geometry, run the DFT
//! phase, run the DFPT phase, report polarizability and derived properties.
//!
//! ```text
//! qperturb geometry.in                 # FHI-aims format (Å)
//! qperturb molecule.xyz --basis tier2  # XYZ format
//! qperturb --builtin water --dfpt-tol 1e-8
//! qperturb --builtin water --trace trace.json --metrics metrics.csv
//! ```
//!
//! Output verbosity follows `QP_LOG={error,warn,info,debug}` (default
//! `info`, which matches the historical output exactly). `--trace` /
//! `--metrics` (or the `QP_TRACE` / `QP_METRICS` environment variables)
//! write a Chrome trace-event timeline and a metrics dump on exit.

mod control;
mod serve_cli;

use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_core::parallel::{CollectiveScheme, MappingKind, ParallelConfig};
use qp_core::resil::scf_checkpointed;
use qp_core::{
    dfpt, properties, scf, DfptOptions, FarFieldMode, ResilienceConfig, ScfOptions, ScfResult,
    ScreeningMode, System,
};
use qp_trace::{qp_error, qp_info, qp_warn};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: Option<String>,
    control: Option<String>,
    builtin: Option<String>,
    basis: BasisSettings,
    grid: GridSettings,
    scf: ScfOptions,
    dfpt_opts: DfptOptions,
    skip_dfpt: bool,
    profile: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    ranks: Option<usize>,
    ranks_per_node: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_interval: usize,
    restart: bool,
    max_restarts: usize,
    result_json: Option<String>,
    screening: ScreeningMode,
    farfield: FarFieldMode,
}

fn usage() -> ! {
    qp_error!(
        "usage: qperturb <geometry.in|molecule.xyz> [options]
       qperturb --builtin <water|ligand|polymer:N|helix:N> [options]

options:
  --control <control.in>   FHI-aims control deck (xc, tolerances, mixer,
                           occupation_type, DFPT keyword)
  --basis <light|tier2>    NAO basis setting          (default light)
  --grid <light|coarse>    integration grid           (default light)
  --scf-tol <x>            SCF density tolerance      (default 1e-8)
  --scf-mixing <x>         SCF linear-mixing factor   (default 0.35)
  --smearing <kT>          Fermi-Dirac smearing, Ha   (default off)
  --no-pulay               disable DIIS acceleration
  --dfpt-tol <x>           DFPT tolerance             (default 1e-7)
  --dfpt-mixing <x>        DFPT mixing                (default 0.6)
  --no-dfpt                stop after the ground state
  --screening <on|off|auto>  cutoff-sphere screened assembly (default auto:
                           on from 16 atoms; bit-identical either way)
  --farfield <direct|tree|auto>  Hartree far-field evaluation: exact
                           per-atom sum or hierarchical cluster-tree
                           multipoles within QP_FARFIELD_TOL (default
                           auto: tree from 96 atoms)
  --profile <base>         parallel-efficiency profile: run a 1-thread
                           reference plus an instrumented parallel leg,
                           print the wall-clock decomposition and write
                           <base>.json + <base>.folded (flamegraph stacks)
  --trace <out.json>       write a Chrome trace-event timeline on exit
  --metrics <out.json|csv> write the metrics registry snapshot on exit
  --result-json <file>     write the run's result record (energy, dipole,
                           polarizability) in the canonical JSON form —
                           byte-comparable with 'qperturb submit --json'

serving (see 'qperturb serve --help' pattern below):
  qperturb serve [--addr A] [--state-dir D] [--workers N] [--slice-ms M]
  qperturb submit [--addr A] (--builtin M | geometry file) [--tenant T]
                  [--basis B] [--grid G] [--scf-tol X] [--dfpt-tol X]
                  [--threads N] [--cache-bypass] [--no-wait] [--stream]
                  [--json]
  qperturb wait --job N [--addr A] [--stream]
  qperturb stats | preempt --job N | shutdown   [--addr A]

resilience (distributed DFPT + checkpoint/restart):
  --ranks <N>              run DFPT over N in-process MPI ranks under a
                           self-recovering supervisor
  --ranks-per-node <M>     ranks per simulated node   (default: all on one)
  --checkpoint-dir <dir>   mirror QPCK checkpoints of the SCF and DFPT
                           state to <dir>
  --checkpoint-interval <k>  checkpoint every k iterations  (default 5)
  --restart                resume from the checkpoints in --checkpoint-dir
  --max-restarts <n>       restart budget on rank failure (default 3)

environment:
  QP_LOG=error|warn|info|debug   output verbosity (default info)
  QP_TRACE=<path>, QP_METRICS=<path>   same as --trace / --metrics
  QP_FAULT=<plan>   seeded deterministic fault injection, e.g.
                    'seed=1;crash:rank=1,iter=3' — see qp-resil for the
                    crash/stall/drop/corrupt grammar"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        input: None,
        control: None,
        builtin: None,
        basis: BasisSettings::Light,
        grid: GridSettings::light(),
        scf: ScfOptions::default(),
        dfpt_opts: DfptOptions::default(),
        skip_dfpt: false,
        profile: None,
        trace: None,
        metrics: None,
        ranks: None,
        ranks_per_node: None,
        checkpoint_dir: None,
        checkpoint_interval: 5,
        restart: false,
        max_restarts: 3,
        result_json: None,
        screening: ScreeningMode::Auto,
        farfield: FarFieldMode::Auto,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                qp_error!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--builtin" => args.builtin = Some(value("--builtin")),
            "--control" => args.control = Some(value("--control")),
            "--basis" => {
                args.basis = match value("--basis").as_str() {
                    "light" => BasisSettings::Light,
                    "tier2" => BasisSettings::Tier2,
                    other => {
                        qp_error!("unknown basis '{other}'");
                        usage()
                    }
                }
            }
            "--grid" => {
                args.grid = match value("--grid").as_str() {
                    "light" => GridSettings::light(),
                    "coarse" => GridSettings::coarse(),
                    other => {
                        qp_error!("unknown grid '{other}'");
                        usage()
                    }
                }
            }
            "--scf-tol" => args.scf.tol = value("--scf-tol").parse().unwrap_or_else(|_| usage()),
            "--scf-mixing" => {
                args.scf.mixing = value("--scf-mixing").parse().unwrap_or_else(|_| usage())
            }
            "--smearing" => {
                args.scf.smearing = Some(value("--smearing").parse().unwrap_or_else(|_| usage()))
            }
            "--no-pulay" => args.scf.pulay = None,
            "--dfpt-tol" => {
                args.dfpt_opts.tol = value("--dfpt-tol").parse().unwrap_or_else(|_| usage())
            }
            "--dfpt-mixing" => {
                args.dfpt_opts.mixing = value("--dfpt-mixing").parse().unwrap_or_else(|_| usage())
            }
            "--no-dfpt" => args.skip_dfpt = true,
            "--screening" => {
                args.screening = value("--screening").parse().unwrap_or_else(|e: String| {
                    qp_error!("{e}");
                    usage()
                })
            }
            "--farfield" => {
                args.farfield = value("--farfield").parse().unwrap_or_else(|e: String| {
                    qp_error!("{e}");
                    usage()
                })
            }
            "--profile" => args.profile = Some(value("--profile")),
            "--trace" => args.trace = Some(value("--trace")),
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--ranks" => args.ranks = Some(value("--ranks").parse().unwrap_or_else(|_| usage())),
            "--ranks-per-node" => {
                args.ranks_per_node = Some(
                    value("--ranks-per-node")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")))
            }
            "--checkpoint-interval" => {
                args.checkpoint_interval = value("--checkpoint-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--restart" => args.restart = true,
            "--result-json" => args.result_json = Some(value("--result-json")),
            "--max-restarts" => {
                args.max_restarts = value("--max-restarts").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                qp_error!("unknown option '{other}'");
                usage()
            }
            path => args.input = Some(path.to_string()),
        }
    }
    if args.input.is_none() && args.builtin.is_none() {
        usage()
    }
    args
}

fn load_structure(args: &Args) -> Result<qp_chem::geometry::Structure, String> {
    if let Some(b) = &args.builtin {
        let (name, param) = match b.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (b.as_str(), None),
        };
        return match name {
            "water" => Ok(qp_chem::structures::water()),
            "ligand" => Ok(qp_chem::structures::ligand49()),
            "polymer" => {
                let n: usize = param.unwrap_or("10").parse().map_err(|e| format!("{e}"))?;
                Ok(qp_chem::structures::polyethylene(n))
            }
            "helix" => {
                let n: usize = param.unwrap_or("10").parse().map_err(|e| format!("{e}"))?;
                Ok(qp_chem::structures::helix(n))
            }
            other => Err(format!("unknown builtin '{other}'")),
        };
    }
    let path = args.input.as_ref().expect("input or builtin");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".xyz") {
        qp_chem::io::parse_xyz(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        qp_chem::io::parse_geometry_in(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Flush any scheduled trace/metrics files, logging where they landed.
fn finish_observability() {
    match qp_trace::finish() {
        Ok(Some(path)) => qp_info!("trace written to {path}"),
        Ok(None) => {}
        Err(e) => qp_warn!("failed to write trace/metrics: {e}"),
    }
}

fn run(args: &Args) -> ExitCode {
    let structure = match load_structure(args) {
        Ok(s) => s,
        Err(e) => {
            qp_error!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    qp_info!("qperturb — all-electron DFPT");
    qp_info!(
        "structure: {} atoms, {} electrons",
        structure.len(),
        structure.num_electrons()
    );
    if let Some(base) = &args.profile {
        return run_profile(args, structure, base);
    }
    let t0 = std::time::Instant::now();
    let system = System::build_with_modes(
        structure,
        args.basis,
        &args.grid,
        200,
        4,
        args.screening,
        args.farfield,
    );
    qp_info!(
        "system: {} basis functions, {} grid points, {} batches  [{:.1?}]",
        system.n_basis(),
        system.n_points(),
        system.batches.len(),
        t0.elapsed()
    );
    if let Some(plan) = system.screen() {
        qp_info!(
            "screening: {} of {} atom pairs survive ({:.1}% fill)",
            plan.neighbours.n_pairs(),
            system.structure.len() * system.structure.len(),
            100.0 * plan.fill_ratio()
        );
    }
    if let Some(tree) = system.farfield_tree() {
        qp_info!(
            "farfield: hierarchical tree, {} cluster nodes over {} atoms \
             (tol {:.1e})",
            tree.nodes.len(),
            tree.natoms(),
            qp_grid::farfield_tol()
        );
    }

    // Resilience layer: QP_FAULT injection, QPCK checkpoints, supervised
    // restart. Any of the knobs routes DFPT through the distributed
    // self-recovering driver.
    let fault = match qp_resil::FaultPlan::from_env() {
        Ok(f) => f,
        Err(e) => {
            qp_error!("QP_FAULT: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.restart && args.checkpoint_dir.is_none() {
        qp_error!("--restart requires --checkpoint-dir");
        return ExitCode::FAILURE;
    }
    if let Some(d) = &args.checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            qp_error!("--checkpoint-dir {}: {e}", d.display());
            return ExitCode::FAILURE;
        }
    }
    let rcfg = ResilienceConfig {
        checkpoint_dir: args.checkpoint_dir.clone(),
        checkpoint_interval: args.checkpoint_interval,
        max_restarts: args.max_restarts,
        restart: args.restart,
        fault: fault
            .clone()
            .map(|p| p as std::sync::Arc<dyn qp_resil::FaultHook>),
        ..ResilienceConfig::default()
    };
    let checkpointing = args.checkpoint_dir.is_some();

    let t1 = std::time::Instant::now();
    let scf_out = if checkpointing {
        scf_checkpointed(&system, &args.scf, &rcfg).map(|(g, stats)| (g, Some(stats)))
    } else {
        scf(&system, &args.scf).map(|g| (g, None))
    };
    let (ground, scf_stats): (ScfResult, Option<qp_resil::RecoveryStats>) = match scf_out {
        Ok(g) => g,
        Err(e) => {
            qp_error!("SCF failed: {e}");
            qp_error!("hint: try --smearing 0.02 and/or a smaller --scf-mixing");
            return ExitCode::FAILURE;
        }
    };
    let n_occ = system.n_occupied();
    qp_info!(
        "SCF: {} iterations, E = {:.6} Ha, HOMO {:.4}, LUMO {:.4}  [{:.1?}]",
        ground.iterations,
        ground.energy,
        ground.eigenvalues[n_occ - 1],
        ground.eigenvalues[n_occ],
        t1.elapsed()
    );
    if let Some(stats) = &scf_stats {
        if stats.checkpoints_written > 0 {
            qp_info!(
                "SCF checkpoints: {} written ({} bytes)",
                stats.checkpoints_written,
                stats.checkpoint_bytes
            );
        }
    }
    let mu = properties::dipole_moment(&system, &ground);
    qp_info!("dipole: [{:.4}, {:.4}, {:.4}] a.u.", mu[0], mu[1], mu[2]);

    if args.skip_dfpt {
        if args.result_json.is_some() {
            qp_error!("--result-json requires the DFPT phase (drop --no-dfpt)");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let resilient_dfpt = args.ranks.is_some() || fault.is_some() || checkpointing;
    let t2 = std::time::Instant::now();
    let (alpha, iterations) = if resilient_dfpt {
        let n_ranks = args.ranks.unwrap_or(4);
        let cfg = ParallelConfig {
            n_ranks,
            ranks_per_node: args.ranks_per_node.unwrap_or(n_ranks).min(n_ranks),
            mapping: MappingKind::LocalityEnhancing,
            collectives: CollectiveScheme::Packed,
        };
        qp_info!(
            "DFPT: supervised, {} ranks ({} per node), checkpoint every {}, restart budget {}",
            cfg.n_ranks,
            cfg.ranks_per_node,
            args.checkpoint_interval,
            args.max_restarts
        );
        match dfpt_resilient(&system, &ground, &args.dfpt_opts, &cfg, &rcfg) {
            Ok(out) => out,
            Err(e) => {
                qp_error!("DFPT failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match dfpt(&system, &ground, &args.dfpt_opts) {
            Ok(r) => (r.polarizability, r.iterations),
            Err(e) => {
                qp_error!("DFPT failed: {e}");
                qp_error!("hint: near-metallic systems need a smaller --dfpt-mixing");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(plan) = &fault {
        for ev in plan.events() {
            qp_info!("injected fault fired: {ev}");
        }
    }
    qp_info!(
        "DFPT: {:?} iterations per direction  [{:.1?}]",
        iterations,
        t2.elapsed()
    );
    qp_info!("polarizability tensor (Bohr^3):");
    for i in 0..3 {
        qp_info!(
            "  [ {:10.4} {:10.4} {:10.4} ]",
            alpha[(i, 0)],
            alpha[(i, 1)],
            alpha[(i, 2)]
        );
    }
    qp_info!(
        "isotropic: {:.4} Bohr^3, anisotropy: {:.4} Bohr^3",
        properties::isotropic_polarizability(&alpha),
        properties::polarizability_anisotropy(&alpha)
    );
    if let Some(path) = &args.result_json {
        let isotropic = properties::isotropic_polarizability(&alpha);
        let anisotropy = properties::polarizability_anisotropy(&alpha);
        let record = qp_serve::JobResultData {
            energy: ground.energy,
            scf_iterations: ground.iterations,
            dipole: mu,
            alpha,
            dfpt_iterations: iterations,
            isotropic,
            anisotropy,
        };
        let body = record.to_json().to_string() + "\n";
        if let Err(e) = std::fs::write(path, body) {
            qp_error!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        qp_info!("result record written to {path}");
    }
    ExitCode::SUCCESS
}

/// `--profile <base>`: run the parallel-efficiency profiler on the loaded
/// structure and write `<base>.json` (qp-profile/v1 attribution report) and
/// `<base>.folded` (flamegraph-compatible collapsed stacks).
fn run_profile(args: &Args, structure: qp_chem::geometry::Structure, base: &str) -> ExitCode {
    let opts = qp_core::ProfileOptions {
        dirs: if args.skip_dfpt {
            Vec::new()
        } else {
            vec![0, 1, 2]
        },
        scf: args.scf,
        dfpt: args.dfpt_opts,
        ..qp_core::ProfileOptions::new()
    };
    let name = args
        .builtin
        .clone()
        .or_else(|| args.input.clone())
        .unwrap_or_else(|| "case".to_string());
    qp_info!(
        "profiling '{name}': serial reference + {}-thread instrumented leg \
         ({} GEMM microkernel)",
        opts.threads,
        qp_linalg::gemm::active_microkernel()
    );
    let basis = args.basis;
    let grid = args.grid;
    let report = qp_core::profile_case(
        &name,
        &move || System::build(structure.clone(), basis, &grid, 200, 4),
        &opts,
    );
    print!("{}", report.render_text());
    let json_path = format!("{base}.json");
    let folded_path = format!("{base}.folded");
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        qp_error!("failed to write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&folded_path, &report.folded) {
        qp_error!("failed to write {folded_path}: {e}");
        return ExitCode::FAILURE;
    }
    qp_info!("profile written to {json_path} and {folded_path}");
    ExitCode::SUCCESS
}

/// All three field directions through the supervised distributed driver,
/// with the recovery story reported on the way out.
fn dfpt_resilient(
    system: &System,
    ground: &ScfResult,
    opts: &DfptOptions,
    cfg: &ParallelConfig,
    rcfg: &ResilienceConfig,
) -> Result<(qp_linalg::DMatrix, [usize; 3]), qp_core::CoreError> {
    let dips: Vec<_> = (0..3)
        .map(|i| qp_core::operators::dipole_matrix(system, i))
        .collect();
    let mut alpha = qp_linalg::DMatrix::zeros(3, 3);
    let mut iterations = [0usize; 3];
    let mut restarts = 0;
    let mut checkpoints = 0;
    for j in 0..3 {
        let out = qp_core::parallel_dfpt_direction_resilient(system, ground, j, opts, cfg, rcfg)?;
        for i in 0..3 {
            alpha[(i, j)] = out.direction.p1.trace_product(&dips[i])?;
        }
        iterations[j] = out.direction.iterations;
        restarts += out.stats.restarts;
        checkpoints += out.stats.checkpoints_written;
        for ev in &out.stats.events {
            qp_warn!("direction {j}: {ev}");
        }
    }
    if restarts > 0 {
        qp_info!("recovered from {restarts} rank failure(s) via checkpoint restart");
    }
    if checkpoints > 0 {
        qp_info!("DFPT checkpoints: {checkpoints} written");
    }
    Ok((alpha, iterations))
}

fn main() -> ExitCode {
    // Serving subcommands route around the classic single-run argument
    // grammar entirely.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(cmd) = argv.first().map(String::as_str) {
        if matches!(
            cmd,
            "serve" | "submit" | "wait" | "stats" | "preempt" | "shutdown"
        ) {
            qp_trace::init_from_env();
            let code = serve_cli::run(cmd, &argv[1..]);
            finish_observability();
            return code;
        }
    }
    let mut args = parse_args();
    // Environment hooks first, explicit flags override.
    qp_trace::init_from_env();
    if let Some(path) = args.trace.clone() {
        qp_trace::set_enabled(true);
        qp_trace::set_trace_path(&path);
    }
    if let Some(path) = args.metrics.clone() {
        qp_trace::set_metrics_path(&path);
    }
    if let Some(path) = args.control.clone() {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                qp_error!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match control::parse_control(&text) {
            Ok(ctl) => {
                args.scf = ctl.scf;
                args.dfpt_opts = ctl.dfpt;
                args.skip_dfpt = !ctl.run_dfpt;
                args.screening = ctl.screening;
                for line in &ctl.ignored {
                    qp_warn!("control.in: ignoring '{line}'");
                }
            }
            Err(e) => {
                qp_error!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let code = run(&args);
    finish_observability();
    code
}
