//! The serving subcommands: `qperturb serve | submit | wait | stats |
//! preempt | shutdown` — thin drivers over `qp_serve::{server, client}`.
//!
//! ```text
//! qperturb serve --addr 127.0.0.1:7878 --state-dir /tmp/qp-state
//! qperturb submit --builtin ligand --tenant alice --json
//! qperturb submit molecule.xyz --no-wait
//! qperturb wait --job 3 --stream
//! qperturb stats
//! qperturb shutdown
//! ```
//!
//! `submit --json` prints the result in the canonical JSON form — the same
//! writer the server and `--result-json` use — so served and direct
//! results can be compared byte-for-byte.

use qp_serve::json::{obj, Json};
use qp_serve::{Client, ServerConfig};
use qp_trace::{qp_error, qp_info};
use std::process::ExitCode;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn fail(msg: &str) -> ExitCode {
    qp_error!("error: {msg}");
    ExitCode::FAILURE
}

/// Dispatch a serving subcommand; `args` excludes the subcommand word.
pub fn run(cmd: &str, args: &[String]) -> ExitCode {
    match cmd {
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "wait" => cmd_wait(args),
        "stats" => cmd_stats(args),
        "preempt" => cmd_preempt(args),
        "shutdown" => cmd_shutdown(args),
        _ => unreachable!("dispatcher only routes known subcommands"),
    }
}

fn take_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("missing value for {flag}"))
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut cfg = ServerConfig {
        addr: DEFAULT_ADDR.to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let r = match arg.as_str() {
            "--addr" => take_value(&mut it, "--addr").map(|v| cfg.addr = v.clone()),
            "--state-dir" => take_value(&mut it, "--state-dir")
                .map(|v| cfg.state_dir = Some(std::path::PathBuf::from(v))),
            "--workers" => take_value(&mut it, "--workers").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| cfg.workers = n)
                    .map_err(|_| "--workers must be an integer".to_string())
            }),
            "--slice-ms" => take_value(&mut it, "--slice-ms").and_then(|v| {
                v.parse::<u64>()
                    .map(|ms| cfg.slice = Duration::from_millis(ms))
                    .map_err(|_| "--slice-ms must be an integer".to_string())
            }),
            other => Err(format!("unknown option '{other}'")),
        };
        if let Err(e) = r {
            return fail(&e);
        }
    }
    let handle = match qp_serve::server::start(cfg) {
        Ok(h) => h,
        Err(e) => return fail(&e.to_string()),
    };
    // The bound address line is the machine-readable startup handshake the
    // CI smoke leg (and any supervisor) scrapes; keep its shape stable.
    println!("qp-serve listening on {}", handle.addr());
    qp_info!("serving until a 'shutdown' op arrives");
    handle.join();
    qp_info!("server drained");
    ExitCode::SUCCESS
}

/// Shared client-side options: address + job id.
struct ClientArgs {
    addr: String,
    job: Option<u64>,
    stream: bool,
}

fn parse_client_args(args: &[String]) -> Result<ClientArgs, String> {
    let mut out = ClientArgs {
        addr: DEFAULT_ADDR.to_string(),
        job: None,
        stream: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = take_value(&mut it, "--addr")?.clone(),
            "--job" => {
                out.job = Some(
                    take_value(&mut it, "--job")?
                        .parse()
                        .map_err(|_| "--job must be an integer".to_string())?,
                )
            }
            "--stream" => out.stream = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(out)
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut tenant: Option<String> = None;
    let mut builtin: Option<String> = None;
    let mut input: Option<String> = None;
    let mut basis: Option<String> = None;
    let mut grid: Option<String> = None;
    let mut scf: Vec<(&str, Json)> = Vec::new();
    let mut dfpt: Vec<(&str, Json)> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut cache_bypass = false;
    let mut wait = true;
    let mut stream = false;
    let mut as_json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => addr = take_value(&mut it, "--addr")?.clone(),
                "--tenant" => tenant = Some(take_value(&mut it, "--tenant")?.clone()),
                "--builtin" => builtin = Some(take_value(&mut it, "--builtin")?.clone()),
                "--basis" => basis = Some(take_value(&mut it, "--basis")?.clone()),
                "--grid" => grid = Some(take_value(&mut it, "--grid")?.clone()),
                "--scf-tol" => scf.push(("tol", num(take_value(&mut it, "--scf-tol")?)?)),
                "--scf-mixing" => scf.push(("mixing", num(take_value(&mut it, "--scf-mixing")?)?)),
                "--smearing" => scf.push(("smearing", num(take_value(&mut it, "--smearing")?)?)),
                "--dfpt-tol" => dfpt.push(("tol", num(take_value(&mut it, "--dfpt-tol")?)?)),
                "--dfpt-mixing" => {
                    dfpt.push(("mixing", num(take_value(&mut it, "--dfpt-mixing")?)?))
                }
                "--threads" => {
                    threads = Some(
                        take_value(&mut it, "--threads")?
                            .parse()
                            .map_err(|_| "--threads must be an integer".to_string())?,
                    )
                }
                "--cache-bypass" => cache_bypass = true,
                "--no-wait" => wait = false,
                "--stream" => stream = true,
                "--json" => as_json = true,
                other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
                path => input = Some(path.to_string()),
            }
            Ok(())
        })();
        if let Err(e) = r {
            return fail(&e);
        }
    }

    let molecule = match (&builtin, &input) {
        (Some(b), None) => obj(vec![("builtin", Json::Str(b.clone()))]),
        (None, Some(path)) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail(&format!("{path}: {e}")),
            };
            if path.ends_with(".xyz") {
                obj(vec![("xyz", Json::Str(text))])
            } else {
                obj(vec![("geometry_in", Json::Str(text))])
            }
        }
        _ => return fail("submit needs exactly one of --builtin or a geometry file"),
    };

    let mut request = vec![("molecule", molecule)];
    if let Some(t) = tenant {
        request.push(("tenant", Json::Str(t)));
    }
    if let Some(b) = basis {
        request.push(("basis", Json::Str(b)));
    }
    if let Some(g) = grid {
        request.push(("grid", obj(vec![("preset", Json::Str(g))])));
    }
    if !scf.is_empty() {
        request.push(("scf", obj(scf)));
    }
    if !dfpt.is_empty() {
        request.push(("dfpt", obj(dfpt)));
    }
    if let Some(t) = threads {
        request.push(("threads", Json::Num(t as f64)));
    }
    if cache_bypass {
        request.push(("cache", Json::Str("bypass".to_string())));
    }

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let outcome = client.submit(obj(request), wait, stream, |line| {
        qp_info!("[progress] {line}");
    });
    match outcome {
        Ok(out) => {
            if let Some(result) = &out.result {
                if as_json {
                    println!("{}", result.to_json());
                } else {
                    print_result(out.job, out.cached, result);
                }
            } else {
                qp_info!(
                    "job {} queued (use 'qperturb wait --job {}')",
                    out.job,
                    out.job
                );
                if as_json {
                    println!("{}", obj(vec![("job", Json::Num(out.job as f64))]));
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn num(s: &str) -> Result<Json, String> {
    s.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("'{s}' is not a finite number"))
}

fn print_result(job: u64, cached: bool, r: &qp_serve::JobResultData) {
    qp_info!(
        "job {job}{}: E = {:.10} Ha ({} SCF iterations)",
        if cached { " (cached)" } else { "" },
        r.energy,
        r.scf_iterations
    );
    qp_info!("polarizability tensor (Bohr^3):");
    for i in 0..3 {
        qp_info!(
            "  [ {:10.4} {:10.4} {:10.4} ]",
            r.alpha[(i, 0)],
            r.alpha[(i, 1)],
            r.alpha[(i, 2)]
        );
    }
    qp_info!(
        "isotropic: {:.4} Bohr^3, anisotropy: {:.4} Bohr^3",
        r.isotropic,
        r.anisotropy
    );
}

fn cmd_wait(args: &[String]) -> ExitCode {
    let ca = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let Some(job) = ca.job else {
        return fail("wait requires --job <id>");
    };
    let mut client = match Client::connect(&ca.addr) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    match client.wait(job, ca.stream, |line| qp_info!("[progress] {line}")) {
        Ok(out) => {
            match &out.result {
                Some(r) => println!("{}", r.to_json()),
                None => qp_info!("job {job} finished without a result payload"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let ca = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let mut client = match Client::connect(&ca.addr) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    match client.stats() {
        Ok(v) => {
            println!("{}", v);
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn cmd_preempt(args: &[String]) -> ExitCode {
    let ca = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let Some(job) = ca.job else {
        return fail("preempt requires --job <id>");
    };
    let mut client = match Client::connect(&ca.addr) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    match client.preempt(job) {
        Ok(()) => {
            qp_info!("job {job} asked to yield at its next iteration boundary");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn cmd_shutdown(args: &[String]) -> ExitCode {
    let ca = match parse_client_args(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let mut client = match Client::connect(&ca.addr) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    match client.shutdown() {
        Ok(()) => {
            qp_info!("shutdown requested");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}
