//! `control.in` parsing — the FHI-aims run-control file the paper's
//! artifact consumes next to `geometry.in`.
//!
//! We honor the keywords that map onto this reproduction's options and
//! report (but tolerate) the rest, so existing FHI-aims decks drive
//! `qperturb` unchanged:
//!
//! ```text
//! xc            pw-lda          # only LDA is implemented (the paper's choice)
//! sc_accuracy_rho   1e-6        # SCF density tolerance
//! mixer         linear          # linear | pulay
//! charge_mix_param  0.2         # mixing factor
//! occupation_type   gaussian 0.01   # smearing width (Ha)
//! DFPT          polarizability  # run the DFPT phase
//! dfpt_sc_accuracy  1e-7
//! dfpt_mixer        pulay 6     # DFPT SC accelerator: linear | pulay [depth]
//! ```

use qp_core::{DfptMixer, DfptOptions, ScfOptions, ScreeningMode};

/// Parsed control settings.
#[derive(Debug, Clone)]
pub struct Control {
    /// SCF options assembled from the deck.
    pub scf: ScfOptions,
    /// DFPT options.
    pub dfpt: DfptOptions,
    /// Whether a `DFPT` keyword requested the response calculation.
    pub run_dfpt: bool,
    /// Cutoff-sphere screening control (`screening on|off|auto`;
    /// bit-invisible, so `auto` is the safe default).
    pub screening: ScreeningMode,
    /// Keywords we recognized but do not implement (reported to the user).
    pub ignored: Vec<String>,
}

/// Errors from control parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// Unsupported functional (only LDA variants are implemented).
    UnsupportedXc(String),
    /// Malformed line.
    Malformed(usize, String),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::UnsupportedXc(xc) => {
                write!(
                    f,
                    "unsupported xc '{xc}' (this reproduction implements LDA)"
                )
            }
            ControlError::Malformed(line, what) => write!(f, "control.in line {line}: {what}"),
        }
    }
}

impl std::error::Error for ControlError {}

/// Parse `control.in` text into run options.
pub fn parse_control(text: &str) -> Result<Control, ControlError> {
    let mut ctl = Control {
        scf: ScfOptions::default(),
        dfpt: DfptOptions::default(),
        run_dfpt: false,
        screening: ScreeningMode::Auto,
        ignored: Vec::new(),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        let num = |k: usize| -> Result<f64, ControlError> {
            args.get(k)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ControlError::Malformed(idx + 1, format!("bad value in '{line}'")))
        };
        match keyword {
            "xc" => {
                let xc = args.first().copied().unwrap_or("");
                if !matches!(xc, "pw-lda" | "pz-lda" | "lda") {
                    return Err(ControlError::UnsupportedXc(xc.to_string()));
                }
            }
            "sc_accuracy_rho" => ctl.scf.tol = num(0)?,
            "sc_iter_limit" => ctl.scf.max_iter = num(0)? as usize,
            "charge_mix_param" => ctl.scf.mixing = num(0)?,
            "mixer" => match args.first().copied().unwrap_or("") {
                "linear" => ctl.scf.pulay = None,
                "pulay" => {
                    ctl.scf.pulay = Some(args.get(1).and_then(|t| t.parse().ok()).unwrap_or(6))
                }
                other => {
                    return Err(ControlError::Malformed(
                        idx + 1,
                        format!("unknown mixer '{other}'"),
                    ))
                }
            },
            "occupation_type" => {
                // "occupation_type gaussian 0.01" — any smearing flavour is
                // mapped onto Fermi-Dirac of the same width.
                ctl.scf.smearing = Some(num(1)?);
            }
            "DFPT" => {
                ctl.run_dfpt = true;
                if args.first() != Some(&"polarizability") {
                    ctl.ignored.push(format!("DFPT {}", args.join(" ")));
                }
            }
            "screening" => {
                ctl.screening = args
                    .first()
                    .copied()
                    .unwrap_or("")
                    .parse()
                    .map_err(|e: String| ControlError::Malformed(idx + 1, e))?;
            }
            "dfpt_sc_accuracy" => ctl.dfpt.tol = num(0)?,
            "dfpt_mixing" => ctl.dfpt.mixing = num(0)?,
            "dfpt_mixer" => match args.first().copied().unwrap_or("") {
                "linear" => ctl.dfpt.mixer = DfptMixer::Linear,
                "pulay" => {
                    ctl.dfpt.mixer = DfptMixer::Pulay {
                        depth: args.get(1).and_then(|t| t.parse().ok()).unwrap_or(6),
                    }
                }
                other => {
                    return Err(ControlError::Malformed(
                        idx + 1,
                        format!("unknown dfpt_mixer '{other}'"),
                    ))
                }
            },
            // Recognized FHI-aims keywords without an equivalent here.
            "relativistic" | "spin" | "k_grid" | "output" | "basis_threshold"
            | "sc_accuracy_eev" | "sc_accuracy_etot" => {
                ctl.ignored.push(line.to_string());
            }
            other => ctl.ignored.push(format!("(unknown) {other}")),
        }
    }
    Ok(ctl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_paper_style_deck() {
        let deck = "\
# DFPT polarizability run, light settings
xc                pw-lda
sc_accuracy_rho   1e-6
sc_iter_limit     200
charge_mix_param  0.2
occupation_type   gaussian 0.01
mixer             pulay 8
DFPT              polarizability
dfpt_sc_accuracy  1e-6
relativistic      atomic_zora scalar
";
        let ctl = parse_control(deck).unwrap();
        assert!(ctl.run_dfpt);
        assert_eq!(ctl.scf.tol, 1e-6);
        assert_eq!(ctl.scf.max_iter, 200);
        assert_eq!(ctl.scf.mixing, 0.2);
        assert_eq!(ctl.scf.smearing, Some(0.01));
        assert_eq!(ctl.scf.pulay, Some(8));
        assert_eq!(ctl.dfpt.tol, 1e-6);
        assert_eq!(ctl.ignored, vec!["relativistic      atomic_zora scalar"]);
    }

    #[test]
    fn rejects_non_lda() {
        match parse_control("xc pbe\n") {
            Err(ControlError::UnsupportedXc(xc)) => assert_eq!(xc, "pbe"),
            other => panic!("expected UnsupportedXc, got {other:?}"),
        }
    }

    #[test]
    fn linear_mixer_disables_pulay() {
        let ctl = parse_control("mixer linear\n").unwrap();
        assert_eq!(ctl.scf.pulay, None);
    }

    #[test]
    fn dfpt_mixer_keyword_selects_response_accelerator() {
        let ctl = parse_control("dfpt_mixer linear\n").unwrap();
        assert_eq!(ctl.dfpt.mixer, DfptMixer::Linear);
        let ctl = parse_control("dfpt_mixer pulay 4\n").unwrap();
        assert_eq!(ctl.dfpt.mixer, DfptMixer::Pulay { depth: 4 });
        let ctl = parse_control("dfpt_mixer pulay\n").unwrap();
        assert_eq!(ctl.dfpt.mixer, DfptMixer::Pulay { depth: 6 });
        assert!(parse_control("dfpt_mixer broyden\n").is_err());
    }

    #[test]
    fn malformed_values_reported_with_line() {
        match parse_control("xc lda\nsc_accuracy_rho not_a_number\n") {
            Err(ControlError::Malformed(2, _)) => {}
            other => panic!("expected Malformed(2), got {other:?}"),
        }
    }

    #[test]
    fn screening_keyword_parses_and_rejects() {
        let ctl = parse_control("screening on\n").unwrap();
        assert_eq!(ctl.screening, ScreeningMode::On);
        let ctl = parse_control("screening off\n").unwrap();
        assert_eq!(ctl.screening, ScreeningMode::Off);
        let ctl = parse_control("xc lda\n").unwrap();
        assert_eq!(ctl.screening, ScreeningMode::Auto);
        match parse_control("screening sometimes\n") {
            Err(ControlError::Malformed(1, msg)) => assert!(msg.contains("sometimes")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn defaults_without_dfpt_keyword() {
        let ctl = parse_control("xc lda\n").unwrap();
        assert!(!ctl.run_dfpt);
        assert_eq!(ctl.scf.tol, ScfOptions::default().tol);
    }
}
