//! Shared-memory node windows and the conflict-free chunked accumulation of
//! §3.2.2.
//!
//! "To update an m-process-shared copy of A, we first sliced it into m
//! chunks, and then perform m synthesizations sequenced by local barriers,
//! with each chunk synthesizing its m partial results from m processes in
//! turn without write conflicts."

use crate::comm::{Comm, CommError, NodeWindow};
use std::sync::Arc;

/// Accumulate `data` from every rank of this node into the node's shared
/// window using the m-phase chunk rotation: in phase `t`, local rank `r`
/// adds its contribution to chunk `(r + t) mod m`, with a node barrier
/// between phases. No two ranks ever write the same chunk in the same phase.
///
/// The window must be zeroed (collectively) before the first call of an
/// accumulation round; see [`node_accumulate_fresh`].
pub fn node_accumulate(
    comm: &Comm,
    window: &Arc<NodeWindow>,
    data: &[f64],
) -> Result<(), CommError> {
    assert_eq!(data.len(), window.len, "window/data length mismatch");
    let m = window.chunks.len();
    // Each rank visits every chunk exactly once across the m phases. When the
    // node has at most m ranks the rotation is conflict-free by construction;
    // the chunk mutex additionally covers the degenerate node_size > m case.
    for phase in 0..m {
        let chunk = (comm.local_rank() + phase) % m;
        let range = window.chunk_range(chunk);
        {
            let mut guard = window.chunks[chunk].lock();
            for (o, &v) in guard.iter_mut().zip(data[range].iter()) {
                *o += v;
            }
        }
        comm.node_barrier()?;
    }
    Ok(())
}

/// Zero the window collectively, then accumulate: the full §3.2.2 intra-node
/// stage. Local rank 0 clears; a barrier orders the clear before any adds.
pub fn node_accumulate_fresh(
    comm: &Comm,
    window: &Arc<NodeWindow>,
    data: &[f64],
) -> Result<(), CommError> {
    if comm.local_rank() == 0 {
        window.clear();
    }
    comm.node_barrier()?;
    node_accumulate(comm, window, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    // `i` indexes two rank snapshots at once; a range loop reads clearest.
    #[allow(clippy::needless_range_loop)]
    fn chunked_accumulate_sums_node_contributions() {
        let n = 8;
        let m = 4;
        let len = 10;
        let out = run_spmd(n, m, move |c| {
            let w = c.node_window("acc", len, m);
            let data: Vec<f64> = (0..len).map(|i| (c.rank() * 100 + i) as f64).collect();
            node_accumulate_fresh(c, &w, &data)?;
            c.node_barrier()?;
            Ok(w.snapshot())
        })
        .unwrap();
        // Node 0 = ranks 0..4, node 1 = ranks 4..8.
        for i in 0..len {
            let expect0: f64 = (0..4).map(|r| (r * 100 + i) as f64).sum();
            let expect1: f64 = (4..8).map(|r| (r * 100 + i) as f64).sum();
            assert_eq!(out[0][i], expect0, "node 0 elem {i}");
            assert_eq!(out[7][i], expect1, "node 1 elem {i}");
        }
    }

    #[test]
    fn repeated_rounds_reset_correctly() {
        let out = run_spmd(4, 4, |c| {
            let w = c.node_window("r", 6, 4);
            let mut sums = Vec::new();
            for round in 1..=3 {
                let data = vec![round as f64; 6];
                node_accumulate_fresh(c, &w, &data)?;
                c.node_barrier()?;
                sums.push(w.snapshot()[0]);
                c.node_barrier()?;
            }
            Ok(sums)
        })
        .unwrap();
        for s in out {
            assert_eq!(s, vec![4.0, 8.0, 12.0]); // 4 ranks x round
        }
    }

    #[test]
    fn partial_node_accumulates() {
        // 5 ranks, node width 4: node 1 has one rank.
        let out = run_spmd(5, 4, |c| {
            let w = c.node_window("p", 4, 4);
            node_accumulate_fresh(c, &w, &[1.0; 4])?;
            c.node_barrier()?;
            Ok(w.snapshot())
        })
        .unwrap();
        assert_eq!(out[0], vec![4.0; 4]);
        assert_eq!(out[4], vec![1.0; 4]);
    }

    #[test]
    fn short_buffer_fewer_chunks_than_ranks() {
        let out = run_spmd(4, 4, |c| {
            let w = c.node_window("s", 2, 4); // only 2 chunks possible
            node_accumulate_fresh(c, &w, &[1.0, 2.0])?;
            c.node_barrier()?;
            Ok(w.snapshot())
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![4.0, 8.0]);
        }
    }
}
