//! Collective-traffic metering.
//!
//! The Fig. 10 experiments compare AllReduce *time* across implementations
//! and rank counts; on this substrate the time is produced by the
//! `qp-machine` cost model from exactly these records: which collective ran,
//! over how many ranks, with how many bytes per rank.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The collective operations the runtime meters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Plain N-rank AllReduce.
    AllReduce,
    /// One packed AllReduce carrying several fused payloads (§3.2.1).
    PackedAllReduce,
    /// The inter-node (leaders-only) AllReduce of the hierarchical scheme.
    LeaderAllReduce,
    /// A node-local barrier (§3.2.2's "light-weight local synchronizations").
    LocalBarrier,
    /// Broadcast.
    Broadcast,
    /// AllGather.
    AllGather,
    /// World barrier.
    Barrier,
}

impl CollectiveKind {
    /// Stable name used as the `kind` metric label and span tag.
    pub fn as_str(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "AllReduce",
            CollectiveKind::PackedAllReduce => "PackedAllReduce",
            CollectiveKind::LeaderAllReduce => "LeaderAllReduce",
            CollectiveKind::LocalBarrier => "LocalBarrier",
            CollectiveKind::Broadcast => "Broadcast",
            CollectiveKind::AllGather => "AllGather",
            CollectiveKind::Barrier => "Barrier",
        }
    }
}

/// One metered collective call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficRecord {
    /// What ran.
    pub kind: CollectiveKind,
    /// How many ranks participated.
    pub ranks: usize,
    /// Payload bytes contributed per rank.
    pub bytes_per_rank: usize,
}

/// Aggregated, thread-safe traffic log.
///
/// Every record is mirrored into an embedded [`qp_trace::MetricsRegistry`]
/// (per-kind `mpi.collective.calls` / `mpi.collective.bytes` counters) and
/// into the process-global registry, so the unified metrics dump carries the
/// same per-collective totals the raw records do.
pub struct TrafficLog {
    records: Mutex<Vec<TrafficRecord>>,
    total_calls: AtomicU64,
    total_bytes: AtomicU64,
    metrics: qp_trace::MetricsRegistry,
}

impl TrafficLog {
    /// Fresh empty log.
    pub fn new() -> Self {
        TrafficLog {
            records: Mutex::new(Vec::new()),
            total_calls: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            metrics: qp_trace::MetricsRegistry::new(),
        }
    }

    /// Record one collective (called once per collective, by the completing
    /// rank).
    pub fn record(&self, kind: CollectiveKind, ranks: usize, bytes_per_rank: usize) {
        self.records.lock().push(TrafficRecord {
            kind,
            ranks,
            bytes_per_rank,
        });
        self.total_calls.fetch_add(1, Ordering::Relaxed);
        self.total_bytes
            .fetch_add(bytes_per_rank as u64, Ordering::Relaxed);
        let labels = [("kind", kind.as_str())];
        for reg in [&self.metrics, qp_trace::global_metrics()] {
            reg.counter("mpi.collective.calls", &labels).inc();
            reg.counter("mpi.collective.bytes", &labels)
                .add(bytes_per_rank as u64);
        }
    }

    /// The per-world metrics mirror of this log (one registry per
    /// communicator world, unpolluted by concurrent worlds).
    pub fn metrics(&self) -> &qp_trace::MetricsRegistry {
        &self.metrics
    }

    /// Snapshot all records.
    pub fn snapshot(&self) -> Vec<TrafficRecord> {
        self.records.lock().clone()
    }

    /// Total collective calls.
    pub fn calls(&self) -> u64 {
        self.total_calls.load(Ordering::Relaxed)
    }

    /// Total per-rank payload bytes across calls.
    pub fn bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Calls of one kind.
    pub fn calls_of(&self, kind: CollectiveKind) -> usize {
        self.records
            .lock()
            .iter()
            .filter(|r| r.kind == kind)
            .count()
    }

    /// Clear everything (including the embedded metrics mirror; the global
    /// registry keeps accumulating across worlds by design).
    pub fn reset(&self) {
        self.records.lock().clear();
        self.total_calls.store(0, Ordering::Relaxed);
        self.total_bytes.store(0, Ordering::Relaxed);
        self.metrics.clear();
    }
}

impl Default for TrafficLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let log = TrafficLog::new();
        log.record(CollectiveKind::AllReduce, 8, 1024);
        log.record(CollectiveKind::LocalBarrier, 4, 0);
        assert_eq!(log.calls(), 2);
        assert_eq!(log.bytes(), 1024);
        assert_eq!(log.calls_of(CollectiveKind::AllReduce), 1);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].ranks, 8);
    }

    #[test]
    fn reset_clears() {
        let log = TrafficLog::new();
        log.record(CollectiveKind::Broadcast, 2, 16);
        log.reset();
        assert_eq!(log.calls(), 0);
        assert_eq!(log.bytes(), 0);
        assert!(log.snapshot().is_empty());
        assert!(log.metrics().snapshot().is_empty());
    }

    #[test]
    fn metrics_mirror_matches_records() {
        let log = TrafficLog::new();
        log.record(CollectiveKind::AllReduce, 8, 1024);
        log.record(CollectiveKind::AllReduce, 8, 256);
        log.record(CollectiveKind::Broadcast, 4, 64);
        let m = log.metrics();
        assert_eq!(
            m.counter_value("mpi.collective.bytes", &[("kind", "AllReduce")]),
            Some(1280)
        );
        assert_eq!(
            m.counter_value("mpi.collective.calls", &[("kind", "AllReduce")]),
            Some(2)
        );
        assert_eq!(
            m.counter_value("mpi.collective.bytes", &[("kind", "Broadcast")]),
            Some(64)
        );
    }
}
