//! Fault-injection hook points and SPMD runtime options.
//!
//! The runtime itself stays policy-free: it exposes *where* faults can act
//! (driver iteration boundaries, collective entry, p2p send) through the
//! [`FaultHook`] trait, and `qp-resil` supplies the deterministic plan that
//! decides *whether* one fires. A hooked crash behaves exactly like a real
//! rank death: the world is poisoned, every peer's pending or future
//! communication call returns [`CommError::RankFailed`], and the supervised
//! driver above can restart the region from its last checkpoint.
//!
//! [`CommError::RankFailed`]: crate::CommError::RankFailed

use std::sync::Arc;
use std::time::Duration;

/// What a [`FaultHook`] tells the runtime to do at a hook point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Continue,
    /// Simulate this rank crashing: the runtime poisons the world and the
    /// hooked call returns `CommError::RankFailed` on this rank (and, once
    /// the poison propagates, on every peer).
    Crash,
    /// Stall this rank for the given duration before proceeding (slow-rank
    /// injection; long stalls surface as `CommError::Timeout` on peers).
    Stall(Duration),
}

/// Observer consulted by the runtime at its hook points.
///
/// Implementations must be deterministic functions of their construction
/// input plus the call sequence (the reproducibility contract: the same
/// plan applied to the same program yields the same fault trace).
pub trait FaultHook: Send + Sync {
    /// A driver-level point, e.g. `("dfpt.iter", k)` at the top of DFPT
    /// iteration `k`. Drivers opt in by calling [`Comm::fault_point`].
    ///
    /// [`Comm::fault_point`]: crate::Comm::fault_point
    fn at_point(&self, _rank: usize, _point: &str, _index: u64) -> FaultDecision {
        FaultDecision::Continue
    }

    /// Called as `rank` enters a collective exchange under `key`.
    fn on_collective(&self, _rank: usize, _key: &str) -> FaultDecision {
        FaultDecision::Continue
    }

    /// Called before a p2p send is delivered. May corrupt `data` in place;
    /// returning `false` drops the message entirely (the receiver then
    /// times out with `CommError::Timeout`).
    fn on_send(&self, _src: usize, _dest: usize, _tag: u64, _data: &mut Vec<f64>) -> bool {
        true
    }

    /// Told the world size once, when the hook is installed (lets plans
    /// resolve `rank=any` clauses deterministically).
    fn bind_world(&self, _size: usize) {}
}

/// Options for [`run_spmd_with`]: fault hook and failure-detection deadlines.
///
/// [`run_spmd_with`]: crate::comm::run_spmd_with
#[derive(Clone)]
pub struct SpmdOptions {
    /// Fault hook consulted at every hook point (`None` = no injection).
    pub fault: Option<Arc<dyn FaultHook>>,
    /// Deadline for a blocking `recv` with no matching message; expiry
    /// returns `CommError::Timeout` instead of hanging forever.
    pub recv_timeout: Duration,
    /// Deadline for a collective rendezvous missing participants; expiry
    /// poisons the world and returns `CommError::Timeout`.
    pub collective_timeout: Duration,
}

impl Default for SpmdOptions {
    fn default() -> Self {
        SpmdOptions {
            fault: None,
            // Generous defaults: legitimate workloads never come close, a
            // wedged world unblocks in bounded time.
            recv_timeout: Duration::from_secs(30),
            collective_timeout: Duration::from_secs(30),
        }
    }
}

impl SpmdOptions {
    /// Options with a fault hook installed.
    pub fn with_fault(hook: Arc<dyn FaultHook>) -> Self {
        SpmdOptions {
            fault: Some(hook),
            ..SpmdOptions::default()
        }
    }

    /// Override both failure-detection deadlines.
    pub fn with_timeout(mut self, deadline: Duration) -> Self {
        self.recv_timeout = deadline;
        self.collective_timeout = deadline;
        self
    }
}

impl std::fmt::Debug for SpmdOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmdOptions")
            .field("fault", &self.fault.as_ref().map(|_| "FaultHook"))
            .field("recv_timeout", &self.recv_timeout)
            .field("collective_timeout", &self.collective_timeout)
            .finish()
    }
}
