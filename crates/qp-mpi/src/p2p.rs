//! Point-to-point messaging: `send`/`recv` with tag matching.
//!
//! The collectives cover the DFPT hot paths; point-to-point is the substrate
//! the distributed dense-linear-algebra layer (`qp-core::dist`, the
//! ScaLAPACK stand-in) uses for panel shifts. Semantics follow MPI:
//! `send` is asynchronous (buffered), `recv` blocks until a matching
//! `(source, tag)` message arrives; messages between one (source, dest, tag)
//! triple are non-overtaking (FIFO).

use crate::comm::{Comm, CommError};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One mailbox per (source, dest, tag).
type Key = (usize, usize, u64);

#[derive(Default)]
pub(crate) struct Mailboxes {
    state: Mutex<HashMap<Key, VecDeque<Vec<f64>>>>,
    cond: Condvar,
}

impl Mailboxes {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Mailboxes::default())
    }

    fn post(&self, key: Key, payload: Vec<f64>) {
        self.state.lock().entry(key).or_default().push_back(payload);
        self.cond.notify_all();
    }

    fn take(
        &self,
        key: Key,
        poisoned: &std::sync::atomic::AtomicBool,
    ) -> Result<Vec<f64>, CommError> {
        let mut st = self.state.lock();
        loop {
            if let Some(queue) = st.get_mut(&key) {
                if let Some(payload) = queue.pop_front() {
                    return Ok(payload);
                }
            }
            if poisoned.load(Ordering::SeqCst) {
                return Err(CommError::RankFailed);
            }
            self.cond.wait(&mut st);
        }
    }

    pub(crate) fn notify_all(&self) {
        self.cond.notify_all();
    }
}

impl Comm {
    /// Send `data` to `dest` with `tag` (asynchronous, buffered).
    pub fn send(&self, dest: usize, tag: u64, data: Vec<f64>) -> Result<(), CommError> {
        if dest >= self.size() {
            return Err(CommError::Mismatch("send destination out of range"));
        }
        let mut span = qp_trace::SpanGuard::begin(self.rank(), qp_trace::Phase::Comm, "send");
        if span.is_recording() {
            span.arg("dest", dest)
                .arg("tag", tag)
                .arg("bytes", data.len() * 8);
        }
        self.mailboxes().post((self.rank(), dest, tag), data);
        Ok(())
    }

    /// Receive the next message from `source` with `tag` (blocking).
    pub fn recv(&self, source: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        if source >= self.size() {
            return Err(CommError::Mismatch("recv source out of range"));
        }
        let mut span = qp_trace::SpanGuard::begin(self.rank(), qp_trace::Phase::Comm, "recv");
        let payload = self
            .mailboxes()
            .take((source, self.rank(), tag), self.poison_flag())?;
        if span.is_recording() {
            span.arg("source", source)
                .arg("tag", tag)
                .arg("bytes", payload.len() * 8);
        }
        Ok(payload)
    }

    /// Combined exchange with a partner (deadlock-free: send is buffered).
    pub fn sendrecv(
        &self,
        partner: usize,
        tag: u64,
        data: Vec<f64>,
    ) -> Result<Vec<f64>, CommError> {
        self.send(partner, tag, data)?;
        self.recv(partner, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    fn ping_pong() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0, 2.0, 3.0])?;
                c.recv(1, 8)
            } else {
                let got = c.recv(0, 7)?;
                c.send(0, 8, got.iter().map(|x| x * 10.0).collect())?;
                Ok(vec![])
            }
        })
        .unwrap();
        assert_eq!(out[0], vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn messages_are_fifo_per_channel() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                for i in 0..20 {
                    c.send(1, 1, vec![i as f64])?;
                }
                Ok(vec![])
            } else {
                let mut got = Vec::new();
                for _ in 0..20 {
                    got.push(c.recv(0, 1)?[0]);
                }
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(out[1], (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn tags_do_not_cross() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![5.0])?;
                c.send(1, 6, vec![6.0])?;
                Ok(0.0)
            } else {
                // Receive in reverse tag order.
                let six = c.recv(0, 6)?[0];
                let five = c.recv(0, 5)?[0];
                Ok(six * 10.0 + five)
            }
        })
        .unwrap();
        assert_eq!(out[1], 65.0);
    }

    #[test]
    fn ring_shift() {
        let n = 5;
        let out = run_spmd(n, 5, move |c| {
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            c.send(next, 0, vec![c.rank() as f64])?;
            let got = c.recv(prev, 0)?;
            Ok(got[0])
        })
        .unwrap();
        for (rank, v) in out.iter().enumerate() {
            assert_eq!(*v, ((rank + n - 1) % n) as f64);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                assert!(matches!(c.send(9, 0, vec![]), Err(CommError::Mismatch(_))));
                assert!(matches!(c.recv(9, 0), Err(CommError::Mismatch(_))));
            }
            Ok(())
        });
        out.unwrap();
    }

    #[test]
    fn failure_unblocks_recv() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 1 {
                c.inject_failure();
                return Err(CommError::RankFailed);
            }
            // Rank 0 blocks on a message that never comes.
            c.recv(1, 99)?;
            Ok(())
        });
        assert_eq!(out, Err(CommError::RankFailed));
    }
}
