//! Point-to-point messaging: `send`/`recv` with tag matching.
//!
//! The collectives cover the DFPT hot paths; point-to-point is the substrate
//! the distributed dense-linear-algebra layer (`qp-core::dist`, the
//! ScaLAPACK stand-in) uses for panel shifts. Semantics follow MPI:
//! `send` is asynchronous (buffered), `recv` blocks until a matching
//! `(source, tag)` message arrives; messages between one (source, dest, tag)
//! triple are non-overtaking (FIFO).

use crate::comm::{Comm, CommError};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One mailbox per (source, dest, tag).
type Key = (usize, usize, u64);

#[derive(Default)]
pub(crate) struct Mailboxes {
    state: Mutex<HashMap<Key, VecDeque<Vec<f64>>>>,
    cond: Condvar,
}

impl Mailboxes {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Mailboxes::default())
    }

    fn post(&self, key: Key, payload: Vec<f64>) {
        self.state.lock().entry(key).or_default().push_back(payload);
        self.cond.notify_all();
    }

    fn take(
        &self,
        key: Key,
        poisoned: &std::sync::atomic::AtomicBool,
        deadline: Duration,
    ) -> Result<Vec<f64>, CommError> {
        let start = Instant::now();
        let mut st = self.state.lock();
        loop {
            if let Some(queue) = st.get_mut(&key) {
                if let Some(payload) = queue.pop_front() {
                    return Ok(payload);
                }
            }
            if poisoned.load(Ordering::SeqCst) {
                return Err(CommError::RankFailed);
            }
            // Bounded wait: a failed sender that never poisoned the world
            // (crashed silently, or its message was dropped by fault
            // injection) must not hang this rank forever.
            let remaining = deadline
                .checked_sub(start.elapsed())
                .ok_or(CommError::Timeout)?;
            self.cond.wait_for(&mut st, remaining);
        }
    }

    pub(crate) fn notify_all(&self) {
        self.cond.notify_all();
    }
}

impl Comm {
    /// Send `data` to `dest` with `tag` (asynchronous, buffered).
    ///
    /// Fault injection may drop or corrupt the message in flight; a dropped
    /// message surfaces on the receiver as [`CommError::Timeout`].
    pub fn send(&self, dest: usize, tag: u64, mut data: Vec<f64>) -> Result<(), CommError> {
        if dest >= self.size() {
            return Err(CommError::Mismatch("send destination out of range"));
        }
        let mut span = qp_trace::SpanGuard::begin(self.rank(), qp_trace::Phase::Comm, "send");
        if span.is_recording() {
            span.arg("dest", dest)
                .arg("tag", tag)
                .arg("bytes", data.len() * 8);
        }
        if let Some(hook) = &self.opts().fault {
            if !hook.on_send(self.rank(), dest, tag, &mut data) {
                // Message lost on the wire: successful send on this side,
                // nothing delivered.
                if span.is_recording() {
                    span.arg("dropped", 1u64);
                }
                return Ok(());
            }
        }
        self.mailboxes().post((self.rank(), dest, tag), data);
        Ok(())
    }

    /// Receive the next message from `source` with `tag`, blocking up to the
    /// world's configured recv deadline (default 30 s; see
    /// [`crate::fault::SpmdOptions`]), then failing with
    /// [`CommError::Timeout`].
    pub fn recv(&self, source: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        self.recv_deadline(source, tag, self.opts().recv_timeout)
    }

    /// [`Comm::recv`] with an explicit per-call deadline.
    pub fn recv_deadline(
        &self,
        source: usize,
        tag: u64,
        deadline: Duration,
    ) -> Result<Vec<f64>, CommError> {
        if source >= self.size() {
            return Err(CommError::Mismatch("recv source out of range"));
        }
        let mut span = qp_trace::SpanGuard::begin(self.rank(), qp_trace::Phase::Comm, "recv");
        let payload =
            self.mailboxes()
                .take((source, self.rank(), tag), self.poison_flag(), deadline)?;
        if span.is_recording() {
            span.arg("source", source)
                .arg("tag", tag)
                .arg("bytes", payload.len() * 8);
        }
        Ok(payload)
    }

    /// Combined exchange with a partner (deadlock-free: send is buffered).
    pub fn sendrecv(
        &self,
        partner: usize,
        tag: u64,
        data: Vec<f64>,
    ) -> Result<Vec<f64>, CommError> {
        self.send(partner, tag, data)?;
        self.recv(partner, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    fn ping_pong() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0, 2.0, 3.0])?;
                c.recv(1, 8)
            } else {
                let got = c.recv(0, 7)?;
                c.send(0, 8, got.iter().map(|x| x * 10.0).collect())?;
                Ok(vec![])
            }
        })
        .unwrap();
        assert_eq!(out[0], vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn messages_are_fifo_per_channel() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                for i in 0..20 {
                    c.send(1, 1, vec![i as f64])?;
                }
                Ok(vec![])
            } else {
                let mut got = Vec::new();
                for _ in 0..20 {
                    got.push(c.recv(0, 1)?[0]);
                }
                Ok(got)
            }
        })
        .unwrap();
        assert_eq!(out[1], (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn tags_do_not_cross() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![5.0])?;
                c.send(1, 6, vec![6.0])?;
                Ok(0.0)
            } else {
                // Receive in reverse tag order.
                let six = c.recv(0, 6)?[0];
                let five = c.recv(0, 5)?[0];
                Ok(six * 10.0 + five)
            }
        })
        .unwrap();
        assert_eq!(out[1], 65.0);
    }

    #[test]
    fn ring_shift() {
        let n = 5;
        let out = run_spmd(n, 5, move |c| {
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            c.send(next, 0, vec![c.rank() as f64])?;
            let got = c.recv(prev, 0)?;
            Ok(got[0])
        })
        .unwrap();
        for (rank, v) in out.iter().enumerate() {
            assert_eq!(*v, ((rank + n - 1) % n) as f64);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                assert!(matches!(c.send(9, 0, vec![]), Err(CommError::Mismatch(_))));
                assert!(matches!(c.recv(9, 0), Err(CommError::Mismatch(_))));
            }
            Ok(())
        });
        out.unwrap();
    }

    #[test]
    fn failure_unblocks_recv() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 1 {
                c.inject_failure();
                return Err(CommError::RankFailed);
            }
            // Rank 0 blocks on a message that never comes.
            c.recv(1, 99)?;
            Ok(())
        });
        assert_eq!(out, Err(CommError::RankFailed));
    }

    #[test]
    fn recv_times_out_without_sender() {
        // A sender that dies without poisoning the world: the deadline, not
        // channel disconnection, must unblock the receiver.
        use crate::fault::SpmdOptions;
        use std::time::{Duration, Instant};
        let opts = SpmdOptions::default().with_timeout(Duration::from_millis(50));
        let start = Instant::now();
        let out = crate::comm::run_spmd_with(2, 2, opts, |c| {
            if c.rank() == 0 {
                c.recv(1, 42)?;
            }
            Ok(())
        });
        assert!(
            matches!(out, Err(CommError::Timeout) | Err(CommError::RankFailed)),
            "{out:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(10), "bounded unblock");
    }

    #[test]
    fn recv_deadline_is_per_call() {
        use std::time::Duration;
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 0 {
                // No message for tag 7 ever arrives.
                let r = c.recv_deadline(1, 7, Duration::from_millis(30));
                assert_eq!(r, Err(CommError::Timeout));
            }
            Ok(())
        });
        // The timing-out rank returned Ok, so the world result is Ok.
        out.unwrap();
    }

    #[test]
    fn dropped_message_times_out_receiver() {
        use crate::fault::{FaultHook, SpmdOptions};
        use std::time::Duration;

        struct DropAll;
        impl FaultHook for DropAll {
            fn on_send(&self, _: usize, _: usize, _: u64, _: &mut Vec<f64>) -> bool {
                false
            }
        }
        let opts = SpmdOptions::with_fault(std::sync::Arc::new(DropAll))
            .with_timeout(Duration::from_millis(50));
        let out = crate::comm::run_spmd_with(2, 2, opts, |c| {
            if c.rank() == 1 {
                c.send(0, 3, vec![1.0])?;
                Ok(0.0)
            } else {
                c.recv(0, 3).map(|v| v[0])
            }
        });
        assert!(matches!(
            out,
            Err(CommError::Timeout) | Err(CommError::RankFailed)
        ));
    }

    #[test]
    fn corrupted_message_is_delivered_mutated() {
        use crate::fault::{FaultHook, SpmdOptions};

        struct FlipSign;
        impl FaultHook for FlipSign {
            fn on_send(&self, _: usize, _: usize, _: u64, data: &mut Vec<f64>) -> bool {
                for v in data.iter_mut() {
                    *v = -*v;
                }
                true
            }
        }
        let out = crate::comm::run_spmd_with(
            2,
            2,
            SpmdOptions::with_fault(std::sync::Arc::new(FlipSign)),
            |c| {
                if c.rank() == 0 {
                    c.send(1, 1, vec![2.0, 3.0])?;
                    Ok(vec![])
                } else {
                    c.recv(0, 1)
                }
            },
        )
        .unwrap();
        assert_eq!(out[1], vec![-2.0, -3.0]);
    }
}
