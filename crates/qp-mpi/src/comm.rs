//! Communicators and the SPMD runtime.
//!
//! Ranks are OS threads sharing one [`CommCore`]. Every collective is built
//! on one primitive, [`Comm::exchange`]: all ranks of a *group* deposit their
//! payload, the last arrival publishes the full ordered contribution table,
//! and every rank receives it. Reductions then fold that table in fixed rank
//! order — deterministic and bitwise reproducible regardless of thread
//! scheduling, which is what lets the test suite assert that the packed and
//! hierarchical §3.2 paths produce *identical* results to the baseline.

use crate::fault::{FaultDecision, SpmdOptions};
use crate::traffic::{CollectiveKind, TrafficLog};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank panicked or aborted; every blocked collective unblocks with
    /// this error (MPI fatal-error semantics, §failure injection).
    RankFailed,
    /// A blocking call exceeded its failure-detection deadline — the
    /// expected peer most likely died or stalled without poisoning the
    /// world. The caller can restart from a checkpoint.
    Timeout,
    /// A collective was called with inconsistent arguments across ranks.
    Mismatch(&'static str),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankFailed => write!(f, "a participating rank failed"),
            CommError::Timeout => {
                write!(f, "communication deadline exceeded (peer dead or stalled)")
            }
            CommError::Mismatch(what) => write!(f, "collective argument mismatch: {what}"),
        }
    }
}

impl std::error::Error for CommError {}

enum Phase {
    Collecting,
    Distributing,
}

struct RvState {
    phase: Phase,
    generation: u64,
    contributions: Vec<Option<Vec<f64>>>,
    arrived: usize,
    consumed: usize,
    published: Option<Arc<Vec<Vec<f64>>>>,
}

/// One reusable rendezvous point for a fixed-size group.
struct Rendezvous {
    state: Mutex<RvState>,
    cond: Condvar,
    size: usize,
}

impl Rendezvous {
    fn new(size: usize) -> Self {
        Rendezvous {
            state: Mutex::new(RvState {
                phase: Phase::Collecting,
                generation: 0,
                contributions: (0..size).map(|_| None).collect(),
                arrived: 0,
                consumed: 0,
                published: None,
            }),
            cond: Condvar::new(),
            size,
        }
    }

    /// Deposit `data` at `index`, wait for the full table. Waits are bounded
    /// by `deadline`: a missing participant (dead or stalled rank that never
    /// poisoned the world) surfaces as [`CommError::Timeout`] instead of a
    /// hang.
    fn exchange(
        &self,
        index: usize,
        data: Vec<f64>,
        poisoned: &AtomicBool,
        deadline: Duration,
    ) -> Result<Arc<Vec<Vec<f64>>>, CommError> {
        let start = Instant::now();
        let mut st = self.state.lock();
        // Wait out a previous generation still distributing.
        while matches!(st.phase, Phase::Distributing) {
            if poisoned.load(Ordering::SeqCst) {
                return Err(CommError::RankFailed);
            }
            let remaining = deadline
                .checked_sub(start.elapsed())
                .ok_or(CommError::Timeout)?;
            self.cond.wait_for(&mut st, remaining);
        }
        let my_gen = st.generation;
        if st.contributions[index].is_some() {
            return Err(CommError::Mismatch("double entry at same rendezvous"));
        }
        st.contributions[index] = Some(data);
        st.arrived += 1;
        if st.arrived == self.size {
            let mut table: Vec<Vec<f64>> = Vec::with_capacity(self.size);
            for c in st.contributions.iter_mut() {
                // `arrived == size` guarantees every slot is filled; a hole
                // would mean corrupted rendezvous state — surface it as an
                // error on this rank rather than aborting the process.
                table.push(c.take().ok_or(CommError::Mismatch(
                    "rendezvous contribution missing at publish",
                ))?);
            }
            st.published = Some(Arc::new(table));
            st.phase = Phase::Distributing;
            self.cond.notify_all();
        } else {
            while !(matches!(st.phase, Phase::Distributing) && st.generation == my_gen) {
                if poisoned.load(Ordering::SeqCst) {
                    return Err(CommError::RankFailed);
                }
                let remaining = deadline
                    .checked_sub(start.elapsed())
                    .ok_or(CommError::Timeout)?;
                self.cond.wait_for(&mut st, remaining);
            }
        }
        if poisoned.load(Ordering::SeqCst) {
            return Err(CommError::RankFailed);
        }
        let table = st
            .published
            .as_ref()
            .ok_or(CommError::Mismatch("rendezvous table vanished before read"))?
            .clone();
        st.consumed += 1;
        if st.consumed == self.size {
            // Reset for the next generation.
            st.phase = Phase::Collecting;
            st.generation += 1;
            st.arrived = 0;
            st.consumed = 0;
            st.published = None;
            self.cond.notify_all();
        }
        Ok(table)
    }
}

/// Shared node-local window (the MPI-3 SHM copy of §3.2.2), sliced into
/// lockable chunks so the m-phase rotation is conflict-free.
pub struct NodeWindow {
    /// The chunks; `chunks.len()` = the hierarchy width `m` (or fewer when
    /// the buffer is short).
    pub chunks: Vec<Mutex<Vec<f64>>>,
    /// Total length of the logical buffer.
    pub len: usize,
}

impl NodeWindow {
    fn new(len: usize, n_chunks: usize) -> Self {
        let n_chunks = n_chunks.max(1).min(len.max(1));
        let base = len / n_chunks;
        let rem = len % n_chunks;
        let chunks = (0..n_chunks)
            .map(|c| {
                let sz = base + usize::from(c < rem);
                Mutex::new(vec![0.0; sz])
            })
            .collect();
        NodeWindow { chunks, len }
    }

    /// The element range of chunk `c`.
    pub fn chunk_range(&self, c: usize) -> std::ops::Range<usize> {
        let n_chunks = self.chunks.len();
        let base = self.len / n_chunks;
        let rem = self.len % n_chunks;
        let start = c * base + c.min(rem);
        let sz = base + usize::from(c < rem);
        start..start + sz
    }

    /// Copy the whole logical buffer out (caller must hold no chunk locks).
    pub fn snapshot(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for ch in &self.chunks {
            out.extend_from_slice(&ch.lock());
        }
        out
    }

    /// Zero all chunks.
    pub fn clear(&self) {
        for ch in &self.chunks {
            for v in ch.lock().iter_mut() {
                *v = 0.0;
            }
        }
    }
}

/// State shared by all ranks.
pub struct CommCore {
    size: usize,
    ranks_per_node: usize,
    rendezvous: Mutex<HashMap<String, Arc<Rendezvous>>>,
    windows: Mutex<HashMap<String, Arc<NodeWindow>>>,
    mailboxes: Arc<crate::p2p::Mailboxes>,
    poisoned: AtomicBool,
    opts: SpmdOptions,
    /// Metered collective traffic.
    pub traffic: TrafficLog,
}

impl CommCore {
    fn rendezvous(&self, key: &str, size: usize) -> Arc<Rendezvous> {
        let mut map = self.rendezvous.lock();
        map.entry(key.to_string())
            .or_insert_with(|| Arc::new(Rendezvous::new(size)))
            .clone()
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Wake every sleeper on every rendezvous and every pending recv.
        for rv in self.rendezvous.lock().values() {
            rv.cond.notify_all();
        }
        self.mailboxes.notify_all();
    }
}

/// A rank's handle to the communicator.
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    core: Arc<CommCore>,
}

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.core.size
    }

    /// Ranks per shared-memory node (`m` of §3.2.2).
    pub fn ranks_per_node(&self) -> usize {
        self.core.ranks_per_node
    }

    /// This rank's node index.
    pub fn node(&self) -> usize {
        self.rank / self.core.ranks_per_node
    }

    /// This rank's index within its node.
    pub fn local_rank(&self) -> usize {
        self.rank % self.core.ranks_per_node
    }

    /// Number of nodes (last one may be partial).
    pub fn n_nodes(&self) -> usize {
        self.core.size.div_ceil(self.core.ranks_per_node)
    }

    /// Number of ranks on this rank's node.
    pub fn node_size(&self) -> usize {
        let first = self.node() * self.core.ranks_per_node;
        (self.core.size - first).min(self.core.ranks_per_node)
    }

    /// The traffic log.
    pub fn traffic(&self) -> &TrafficLog {
        &self.core.traffic
    }

    /// Low-level group exchange: every rank of the group identified by `key`
    /// deposits `data` at `index`; all receive the ordered table.
    ///
    /// Never hangs and never panics on peer failure: a poisoned world
    /// returns [`CommError::RankFailed`], an absent participant
    /// [`CommError::Timeout`] after the configured collective deadline
    /// (poisoning the world so every other blocked rank unblocks too).
    pub fn exchange(
        &self,
        key: &str,
        group_size: usize,
        index: usize,
        data: Vec<f64>,
    ) -> Result<Arc<Vec<Vec<f64>>>, CommError> {
        if let Some(hook) = &self.core.opts.fault {
            match hook.on_collective(self.rank, key) {
                FaultDecision::Continue => {}
                FaultDecision::Crash => {
                    self.core.poison();
                    return Err(CommError::RankFailed);
                }
                FaultDecision::Stall(d) => std::thread::sleep(d),
            }
        }
        let rv = self.core.rendezvous(key, group_size);
        if rv.size != group_size {
            return Err(CommError::Mismatch("group size changed for key"));
        }
        let out = rv.exchange(
            index,
            data,
            &self.core.poisoned,
            self.core.opts.collective_timeout,
        );
        if matches!(out, Err(CommError::Timeout)) {
            // Failure detection fired: declare the world dead so peers
            // blocked on other rendezvous unblock promptly.
            self.core.poison();
        }
        out
    }

    /// Get (or lazily create) this node's shared window under `key`.
    pub fn node_window(&self, key: &str, len: usize, n_chunks: usize) -> Arc<NodeWindow> {
        let full_key = format!("{key}@node{}", self.node());
        let mut map = self.core.windows.lock();
        map.entry(full_key)
            .or_insert_with(|| Arc::new(NodeWindow::new(len, n_chunks)))
            .clone()
    }

    /// Drop a node window so a later call recreates it fresh.
    pub fn drop_node_window(&self, key: &str) {
        let full_key = format!("{key}@node{}", self.node());
        self.core.windows.lock().remove(&full_key);
    }

    /// Mark this rank as failed: every rank blocked (or subsequently
    /// blocking) on a collective gets [`CommError::RankFailed`].
    pub fn inject_failure(&self) {
        self.core.poison();
    }

    /// Driver-level fault hook point: call at iteration boundaries (e.g.
    /// `comm.fault_point("dfpt.iter", k)`), so plans can crash or stall a
    /// rank at a reproducible place in the computation. A no-op without an
    /// installed hook; a `Crash` decision poisons the world and returns
    /// [`CommError::RankFailed`] on this rank.
    pub fn fault_point(&self, point: &str, index: u64) -> Result<(), CommError> {
        if let Some(hook) = &self.core.opts.fault {
            match hook.at_point(self.rank, point, index) {
                FaultDecision::Continue => {}
                FaultDecision::Crash => {
                    let mut span = qp_trace::SpanGuard::begin(
                        self.rank,
                        qp_trace::Phase::Resil,
                        "fault.crash",
                    );
                    if span.is_recording() {
                        span.arg("point", point).arg("index", index);
                    }
                    self.core.poison();
                    return Err(CommError::RankFailed);
                }
                FaultDecision::Stall(d) => {
                    let mut span = qp_trace::SpanGuard::begin(
                        self.rank,
                        qp_trace::Phase::Resil,
                        "fault.stall",
                    );
                    if span.is_recording() {
                        span.arg("point", point)
                            .arg("index", index)
                            .arg("ms", d.as_millis() as u64);
                    }
                    std::thread::sleep(d);
                }
            }
        }
        Ok(())
    }

    pub(crate) fn record(&self, kind: CollectiveKind, ranks: usize, bytes_per_rank: usize) {
        self.core.traffic.record(kind, ranks, bytes_per_rank);
    }

    /// Open a comm span for a collective this rank is entering, tagged with
    /// the collective kind, participant count and per-rank payload bytes.
    /// Inert when tracing is disabled.
    pub(crate) fn comm_span(
        &self,
        kind: CollectiveKind,
        group_ranks: usize,
        bytes_per_rank: usize,
    ) -> qp_trace::SpanGuard {
        let mut span = qp_trace::SpanGuard::begin(self.rank, qp_trace::Phase::Comm, kind.as_str());
        if span.is_recording() {
            span.arg("kind", kind.as_str())
                .arg("ranks", group_ranks)
                .arg("bytes_per_rank", bytes_per_rank);
        }
        span
    }

    pub(crate) fn mailboxes(&self) -> &crate::p2p::Mailboxes {
        &self.core.mailboxes
    }

    pub(crate) fn poison_flag(&self) -> &AtomicBool {
        &self.core.poisoned
    }

    pub(crate) fn opts(&self) -> &SpmdOptions {
        &self.core.opts
    }
}

/// Run `f` as an SPMD program over `n_ranks` threads grouped into nodes of
/// `ranks_per_node`. Returns each rank's result, rank-ordered.
///
/// A panicking rank poisons the world: surviving ranks' collectives return
/// [`CommError::RankFailed`], and `run_spmd` reports the panic.
pub fn run_spmd<T, F>(n_ranks: usize, ranks_per_node: usize, f: F) -> Result<Vec<T>, CommError>
where
    T: Send,
    F: Fn(&Comm) -> Result<T, CommError> + Sync,
{
    run_spmd_with(n_ranks, ranks_per_node, SpmdOptions::default(), f)
}

/// [`run_spmd`] with explicit [`SpmdOptions`]: fault-injection hook and
/// failure-detection deadlines.
///
/// Failure semantics (MPI fatal-error model, restartable from outside):
/// a rank that panics **or** returns an error poisons the world, so every
/// peer blocked in (or later entering) a collective or `recv` gets
/// [`CommError::RankFailed`] instead of hanging; a rank that silently
/// disappears from a rendezvous is caught by the collective deadline and
/// surfaces as [`CommError::Timeout`]. Supervised drivers catch either
/// error and respawn the whole region from a checkpoint.
pub fn run_spmd_with<T, F>(
    n_ranks: usize,
    ranks_per_node: usize,
    opts: SpmdOptions,
    f: F,
) -> Result<Vec<T>, CommError>
where
    T: Send,
    F: Fn(&Comm) -> Result<T, CommError> + Sync,
{
    assert!(n_ranks >= 1 && ranks_per_node >= 1);
    if let Some(hook) = &opts.fault {
        hook.bind_world(n_ranks);
    }
    let core = Arc::new(CommCore {
        size: n_ranks,
        ranks_per_node,
        rendezvous: Mutex::new(HashMap::new()),
        windows: Mutex::new(HashMap::new()),
        mailboxes: crate::p2p::Mailboxes::new(),
        poisoned: AtomicBool::new(false),
        opts,
        traffic: TrafficLog::new(),
    });

    let mut results: Vec<Option<Result<T, CommError>>> = (0..n_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_ranks);
        for rank in 0..n_ranks {
            let core = core.clone();
            let f = &f;
            let builder = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(1 << 20);
            let handle = builder
                .spawn_scoped(scope, move || {
                    // Tag the thread so spans opened inside rank code (kernel
                    // launches, phase loops) attribute to the right track.
                    qp_trace::set_thread_rank(rank);
                    let comm = Comm {
                        rank,
                        core: core.clone(),
                    };
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm)));
                    match out {
                        Ok(r) => {
                            // An erroring rank is as dead as a panicking one
                            // from its peers' point of view: poison so no
                            // peer waits forever on its contributions.
                            if r.is_err() {
                                core.poison();
                            }
                            r
                        }
                        Err(_) => {
                            core.poison();
                            Err(CommError::RankFailed)
                        }
                    }
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().unwrap_or(Err(CommError::RankFailed)));
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every rank joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let out = run_spmd(8, 4, |c| Ok((c.rank(), c.node(), c.local_rank()))).unwrap();
        for (r, &(rank, node, local)) in out.iter().enumerate() {
            assert_eq!(rank, r);
            assert_eq!(node, r / 4);
            assert_eq!(local, r % 4);
        }
    }

    #[test]
    fn exchange_delivers_ordered_table() {
        let out = run_spmd(6, 2, |c| {
            let table = c.exchange("t", 6, c.rank(), vec![c.rank() as f64])?;
            Ok(table.iter().map(|v| v[0]).collect::<Vec<f64>>())
        })
        .unwrap();
        for row in out {
            assert_eq!(row, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        }
    }

    #[test]
    fn exchange_is_reusable_across_generations() {
        let out = run_spmd(4, 2, |c| {
            let mut acc = 0.0;
            for round in 0..50 {
                let t = c.exchange("gen", 4, c.rank(), vec![(c.rank() * round) as f64])?;
                acc += t.iter().map(|v| v[0]).sum::<f64>();
            }
            Ok(acc)
        })
        .unwrap();
        let rank_sum: f64 = (0..4).sum::<usize>() as f64;
        let expect: f64 = (0..50).map(|r| rank_sum * r as f64).sum();
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn node_window_shared_within_node_only() {
        let out = run_spmd(4, 2, |c| {
            let w = c.node_window("w", 8, 2);
            let ptr = Arc::as_ptr(&w) as usize;
            Ok((c.node(), ptr))
        })
        .unwrap();
        assert_eq!(out[0].1, out[1].1, "node 0 shares");
        assert_eq!(out[2].1, out[3].1, "node 1 shares");
        assert_ne!(out[0].1, out[2].1, "nodes distinct");
    }

    #[test]
    fn window_chunk_ranges_tile_buffer() {
        let w = NodeWindow::new(10, 3);
        let mut covered = [false; 10];
        for c in 0..w.chunks.len() {
            for i in w.chunk_range(c) {
                assert!(!covered[i]);
                covered[i] = true;
            }
            assert_eq!(w.chunk_range(c).len(), w.chunks[c].lock().len());
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn failure_unblocks_collectives() {
        let out = run_spmd(3, 3, |c| {
            if c.rank() == 2 {
                c.inject_failure();
                return Err(CommError::RankFailed);
            }
            // Ranks 0 and 1 block on a 3-way exchange that can never
            // complete; poisoning must unblock them.
            c.exchange("dead", 3, c.rank(), vec![0.0])?;
            Ok(())
        });
        assert_eq!(out, Err(CommError::RankFailed));
    }

    #[test]
    fn silent_desertion_times_out_collective() {
        // A rank that leaves the region without poisoning the world: the
        // collective deadline is the only failure detector, and it must
        // fire in bounded time.
        use std::time::{Duration, Instant};
        let opts = crate::fault::SpmdOptions::default().with_timeout(Duration::from_millis(50));
        let start = Instant::now();
        let out = run_spmd_with(3, 3, opts, |c| {
            if c.rank() == 2 {
                return Ok(());
            }
            c.exchange("abandoned", 3, c.rank(), vec![0.0])?;
            Ok(())
        });
        assert!(
            matches!(out, Err(CommError::Timeout) | Err(CommError::RankFailed)),
            "{out:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(10), "bounded");
    }

    #[test]
    fn erroring_rank_poisons_world() {
        // A rank returning Err — without panicking or calling
        // inject_failure — must still unblock peers stuck in collectives.
        let out = run_spmd(3, 3, |c| {
            if c.rank() == 2 {
                return Err(CommError::Mismatch("simulated application error"));
            }
            c.exchange("err", 3, c.rank(), vec![0.0])?;
            Ok(())
        });
        assert!(out.is_err(), "{out:?}");
    }

    #[test]
    fn fault_point_crash_detected_by_peers() {
        use crate::fault::{FaultDecision, FaultHook, SpmdOptions};

        struct CrashAt {
            rank: usize,
            iter: u64,
        }
        impl FaultHook for CrashAt {
            fn at_point(&self, rank: usize, _point: &str, index: u64) -> FaultDecision {
                if rank == self.rank && index == self.iter {
                    FaultDecision::Crash
                } else {
                    FaultDecision::Continue
                }
            }
        }
        let opts = SpmdOptions::with_fault(Arc::new(CrashAt { rank: 1, iter: 3 }));
        let out = run_spmd_with(4, 2, opts, |c| {
            let mut acc = 0.0;
            for iter in 1..=5u64 {
                c.fault_point("iter", iter)?;
                let t = c.exchange("work", 4, c.rank(), vec![1.0])?;
                acc += t.len() as f64;
            }
            Ok(acc)
        });
        assert_eq!(out, Err(CommError::RankFailed));
    }

    #[test]
    fn fault_point_without_hook_is_noop() {
        let out = run_spmd(2, 2, |c| {
            c.fault_point("iter", 1)?;
            Ok(c.rank())
        })
        .unwrap();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn panic_in_rank_poisons_world() {
        let out = run_spmd(2, 2, |c| {
            if c.rank() == 1 {
                panic!("simulated crash");
            }
            c.exchange("x", 2, c.rank(), vec![1.0])?;
            Ok(c.rank())
        });
        assert!(matches!(out, Err(CommError::RankFailed)) || out.is_err());
    }

    #[test]
    fn single_rank_world() {
        let out = run_spmd(1, 1, |c| {
            let t = c.exchange("solo", 1, 0, vec![42.0])?;
            Ok(t[0][0])
        })
        .unwrap();
        assert_eq!(out, vec![42.0]);
    }

    #[test]
    fn partial_last_node_sizes() {
        let out = run_spmd(5, 2, |c| Ok((c.n_nodes(), c.node_size()))).unwrap();
        assert_eq!(out[0], (3, 2));
        assert_eq!(out[4], (3, 1)); // last node has a single rank
    }
}
