//! Packed collective communication (§3.2.1).
//!
//! "The idea is to fuse several invocations of the same MPI collective
//! function into one invocation, which packs together all data previously to
//! be synthesized in those invocations. […] we have used a simple heuristic
//! to choose a proper c, so that Σ sizeᵢ requires a memory space no more
//! than 30 MB."
//!
//! The canonical use in the paper: synthesizing `rho_multipole` row-by-row
//! after the response-density phase — hundreds of small AllReduce calls
//! packed into a handful of large ones.

use crate::comm::{Comm, CommError};
use crate::traffic::CollectiveKind;
use crate::ReduceOp;
use std::collections::HashMap;

/// The paper's packing budget: 30 MB.
pub const DEFAULT_BUDGET_BYTES: usize = 30 * 1024 * 1024;

/// A packer that fuses successive AllReduce payloads into bounded batches.
///
/// All ranks must `push` the same keys with the same lengths in the same
/// order (SPMD discipline, exactly like MPI's matching rules); the budget
/// check is a deterministic function of those sizes, so all ranks flush at
/// the same points.
pub struct PackedAllReduce<'a> {
    comm: &'a Comm,
    op: ReduceOp,
    budget_bytes: usize,
    pending: Vec<(String, Vec<f64>)>,
    pending_elems: usize,
    results: HashMap<String, Vec<f64>>,
    flushes: usize,
    pushes: usize,
}

impl<'a> PackedAllReduce<'a> {
    /// Create a packer with the paper's 30 MB budget.
    pub fn new(comm: &'a Comm, op: ReduceOp) -> Self {
        Self::with_budget(comm, op, DEFAULT_BUDGET_BYTES)
    }

    /// Create a packer with a custom budget (the ablation bench sweeps
    /// this).
    pub fn with_budget(comm: &'a Comm, op: ReduceOp, budget_bytes: usize) -> Self {
        PackedAllReduce {
            comm,
            op,
            budget_bytes,
            pending: Vec::new(),
            pending_elems: 0,
            results: HashMap::new(),
            flushes: 0,
            pushes: 0,
        }
    }

    /// Comm span for one packed flush, tagged with the fused-payload count.
    fn comm_span(&self) -> qp_trace::SpanGuard {
        let mut span =
            qp_trace::SpanGuard::begin(self.comm.rank(), qp_trace::Phase::Comm, "PackedAllReduce");
        if span.is_recording() {
            span.arg("kind", "PackedAllReduce")
                .arg("ranks", self.comm.size())
                .arg("bytes_per_rank", self.pending_elems * 8)
                .arg("fused_payloads", self.pending.len());
        }
        span
    }

    /// Queue one logical AllReduce. Flushes automatically when adding the
    /// payload would exceed the budget.
    pub fn push(&mut self, key: &str, data: Vec<f64>) -> Result<(), CommError> {
        let incoming = data.len() * 8;
        if incoming > self.budget_bytes {
            return Err(CommError::Mismatch("single payload exceeds packing budget"));
        }
        if (self.pending_elems + data.len()) * 8 > self.budget_bytes {
            self.flush()?;
        }
        self.pending_elems += data.len();
        self.pending.push((key.to_string(), data));
        self.pushes += 1;
        Ok(())
    }

    /// Perform the one packed AllReduce over everything queued.
    pub fn flush(&mut self) -> Result<(), CommError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let _span = self.comm_span();
        // Concatenate in push order (identical on all ranks).
        let mut packed = Vec::with_capacity(self.pending_elems);
        for (_, data) in &self.pending {
            packed.extend_from_slice(data);
        }
        let reduced = {
            let table = self.comm.exchange(
                "packed_allreduce",
                self.comm.size(),
                self.comm.rank(),
                packed,
            )?;
            let len = table[0].len();
            if table.iter().any(|v| v.len() != len) {
                return Err(CommError::Mismatch("packed buffer lengths differ"));
            }
            let mut out = table[0].clone();
            for row in &table[1..] {
                for (o, &v) in out.iter_mut().zip(row.iter()) {
                    *o = self.op.apply(*o, v);
                }
            }
            out
        };
        if self.comm.rank() == 0 {
            self.comm.record(
                CollectiveKind::PackedAllReduce,
                self.comm.size(),
                self.pending_elems * 8,
            );
        }
        // Unpack.
        let mut offset = 0;
        for (key, data) in self.pending.drain(..) {
            let slice = reduced[offset..offset + data.len()].to_vec();
            offset += data.len();
            self.results.insert(key, slice);
        }
        self.pending_elems = 0;
        self.flushes += 1;
        Ok(())
    }

    /// Retrieve (and remove) a reduced payload. The caller must have
    /// flushed (explicitly or via budget) since pushing `key`.
    pub fn take(&mut self, key: &str) -> Option<Vec<f64>> {
        self.results.remove(key)
    }

    /// Number of packed AllReduce calls performed so far.
    pub fn flushes(&self) -> usize {
        self.flushes
    }

    /// Number of logical AllReduce invocations absorbed so far.
    pub fn pushes(&self) -> usize {
        self.pushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    fn packed_equals_sequential_allreduce_bitwise() {
        let n = 8;
        let out = run_spmd(n, 4, move |c| {
            // Sequential reference.
            let mut reference = Vec::new();
            for row in 0..10 {
                let data: Vec<f64> = (0..32)
                    .map(|i| (c.rank() + 1) as f64 * 0.1 + (row * i) as f64)
                    .collect();
                reference.push(c.allreduce(ReduceOp::Sum, &data)?);
            }
            // Packed path.
            let mut packer = PackedAllReduce::new(c, ReduceOp::Sum);
            for row in 0..10 {
                let data: Vec<f64> = (0..32)
                    .map(|i| (c.rank() + 1) as f64 * 0.1 + (row * i) as f64)
                    .collect();
                packer.push(&format!("row{row}"), data)?;
            }
            packer.flush()?;
            let mut same = true;
            for (row, reference_row) in reference.iter().enumerate() {
                let packed = packer.take(&format!("row{row}")).expect("present");
                same &= packed
                    .iter()
                    .zip(reference_row.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            }
            Ok(same)
        })
        .unwrap();
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn budget_triggers_automatic_flush() {
        let out = run_spmd(4, 4, |c| {
            // Budget of 100 elements (800 bytes); rows of 40 elements.
            let mut packer = PackedAllReduce::with_budget(c, ReduceOp::Sum, 800);
            for row in 0..5 {
                packer.push(&format!("r{row}"), vec![1.0; 40])?;
            }
            packer.flush()?;
            // 5 rows x 40 = 200 elems at 100-elem budget: rows pack in pairs
            // -> flushes at push 3 and 5, plus the final explicit flush.
            Ok((packer.flushes(), packer.pushes()))
        })
        .unwrap();
        for (flushes, pushes) in out {
            assert_eq!(pushes, 5);
            assert_eq!(flushes, 3, "2+2+1 rows per packed call");
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let out = run_spmd(2, 2, |c| {
            let mut packer = PackedAllReduce::with_budget(c, ReduceOp::Sum, 64);
            match packer.push("big", vec![0.0; 100]) {
                Err(CommError::Mismatch(_)) => Ok(true),
                _ => Ok(false),
            }
        })
        .unwrap();
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn collective_call_count_reduced() {
        // The headline effect: c logical reductions become 1 packed call.
        run_spmd(4, 2, |c| {
            let mut packer = PackedAllReduce::new(c, ReduceOp::Sum);
            for row in 0..512 {
                packer.push(&format!("row{row}"), vec![1.0; 100])?;
            }
            packer.flush()?;
            assert_eq!(packer.flushes(), 1, "512 rows fit in 30 MB");
            if c.rank() == 0 {
                assert_eq!(c.traffic().calls_of(CollectiveKind::PackedAllReduce), 1);
                assert_eq!(c.traffic().calls_of(CollectiveKind::AllReduce), 0);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn take_before_flush_returns_none() {
        run_spmd(2, 2, |c| {
            let mut packer = PackedAllReduce::new(c, ReduceOp::Sum);
            packer.push("x", vec![1.0])?;
            assert!(packer.take("x").is_none());
            packer.flush()?;
            assert_eq!(packer.take("x"), Some(vec![2.0]));
            assert!(packer.take("x").is_none(), "take removes");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn max_reduction_supported() {
        let out = run_spmd(3, 3, |c| {
            let mut packer = PackedAllReduce::new(c, ReduceOp::Max);
            packer.push("m", vec![c.rank() as f64, -(c.rank() as f64)])?;
            packer.flush()?;
            Ok(packer.take("m").unwrap())
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![2.0, 0.0]);
        }
    }
}
