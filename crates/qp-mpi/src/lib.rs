//! # qp-mpi
//!
//! An in-process message-passing runtime reproducing the MPI machinery the
//! paper's DFPT code depends on — ranks, communicators, collectives, MPI-3
//! shared-memory (SHM) windows — plus the paper's two §3.2 innovations
//! implemented as real algorithms over real buffers:
//!
//! * [`packed::PackedAllReduce`] — fuse many same-op AllReduce invocations
//!   into one packed call, bounded by a 30 MB budget (§3.2.1).
//! * [`hierarchical`] — break one N-rank collective into chunked intra-node
//!   synthesis over an SHM copy (local barriers, conflict-free chunk
//!   rotation) followed by an inter-node collective among `N/m` node leaders
//!   (§3.2.2, Fig. 6).
//!
//! Ranks are OS threads; collectives rendezvous through shared state with a
//! **fixed, rank-ordered reduction order**, so results are bit-reproducible
//! and provably identical between the baseline, packed, and hierarchical
//! paths. Every collective is metered by [`traffic`] (bytes, calls, ranks),
//! which is what the `qp-machine` cost model converts into simulated seconds
//! for the Fig. 10 experiments.
//!
//! The runtime is **failure-aware** (the substrate of `qp-resil`): a rank
//! that panics or errors poisons the world so peers unblock with
//! [`CommError::RankFailed`]; blocking calls carry deadlines and surface a
//! silently-dead peer as [`CommError::Timeout`]; and [`fault`] exposes the
//! hook points (iteration boundaries, collective entry, p2p send) where a
//! deterministic fault plan can crash, stall, drop, or corrupt.

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod hierarchical;
pub mod p2p;
pub mod packed;
pub mod shm;
pub mod traffic;

pub use comm::{run_spmd, run_spmd_with, Comm, CommError};
pub use fault::{FaultDecision, FaultHook, SpmdOptions};
pub use traffic::{CollectiveKind, TrafficLog, TrafficRecord};

/// Reduction operators supported by the collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum (rank-ordered, deterministic).
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    /// Apply to two values.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}
