//! World-level collectives built on [`Comm::exchange`].
//!
//! All reductions fold contributions in **fixed rank order**, so every
//! implementation path in this crate (baseline, packed, hierarchical)
//! produces bitwise-identical doubles — the equivalence the §3.2 experiments
//! rely on.

use crate::comm::{Comm, CommError};
use crate::traffic::CollectiveKind;
use crate::ReduceOp;

impl Comm {
    /// World barrier.
    pub fn barrier(&self) -> Result<(), CommError> {
        let _span = self.comm_span(CollectiveKind::Barrier, self.size(), 0);
        self.exchange("barrier", self.size(), self.rank(), Vec::new())?;
        if self.rank() == 0 {
            self.record(CollectiveKind::Barrier, self.size(), 0);
        }
        Ok(())
    }

    /// AllReduce: every rank contributes `data`, every rank receives the
    /// rank-ordered fold.
    pub fn allreduce(&self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>, CommError> {
        let _span = self.comm_span(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        let table = self.exchange("allreduce", self.size(), self.rank(), data.to_vec())?;
        let out = fold_table(op, &table)?;
        if self.rank() == 0 {
            self.record(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        }
        Ok(out)
    }

    /// Broadcast `data` from `root`; other ranks pass their (ignored) buffer
    /// length via an empty vector.
    pub fn broadcast(&self, root: usize, data: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let _span = self.comm_span(CollectiveKind::Broadcast, self.size(), data.len() * 8);
        let payload = if self.rank() == root {
            data
        } else {
            Vec::new()
        };
        let table = self.exchange("broadcast", self.size(), self.rank(), payload)?;
        if self.rank() == 0 {
            self.record(
                CollectiveKind::Broadcast,
                self.size(),
                table[root].len() * 8,
            );
        }
        Ok(table[root].clone())
    }

    /// AllGather: concatenation of every rank's data, rank-ordered.
    pub fn allgather(&self, data: &[f64]) -> Result<Vec<f64>, CommError> {
        let _span = self.comm_span(CollectiveKind::AllGather, self.size(), data.len() * 8);
        let table = self.exchange("allgather", self.size(), self.rank(), data.to_vec())?;
        if self.rank() == 0 {
            self.record(CollectiveKind::AllGather, self.size(), data.len() * 8);
        }
        Ok(table.iter().flat_map(|v| v.iter().copied()).collect())
    }

    /// Reduce to `root` (other ranks receive an empty vector).
    pub fn reduce(&self, op: ReduceOp, root: usize, data: &[f64]) -> Result<Vec<f64>, CommError> {
        // Built on the same table exchange; only root folds.
        let _span = self.comm_span(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        let table = self.exchange("reduce", self.size(), self.rank(), data.to_vec())?;
        if self.rank() == 0 {
            self.record(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        }
        if self.rank() == root {
            fold_table(op, &table)
        } else {
            Ok(Vec::new())
        }
    }

    /// Node-local barrier — the "light-weight local synchronization" of
    /// §3.2.2, involving only the ranks of this rank's node.
    pub fn node_barrier(&self) -> Result<(), CommError> {
        let _span = self.comm_span(CollectiveKind::LocalBarrier, self.node_size(), 0);
        let key = format!("node_barrier@{}", self.node());
        self.exchange(&key, self.node_size(), self.local_rank(), Vec::new())?;
        if self.local_rank() == 0 {
            self.record(CollectiveKind::LocalBarrier, self.node_size(), 0);
        }
        Ok(())
    }

    /// AllReduce among node leaders only (local rank 0); non-leaders get an
    /// empty vector. Used by the hierarchical scheme's inter-node stage.
    pub fn leader_allreduce(&self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>, CommError> {
        if self.local_rank() != 0 {
            return Ok(Vec::new());
        }
        let _span = self.comm_span(
            CollectiveKind::LeaderAllReduce,
            self.n_nodes(),
            data.len() * 8,
        );
        let table = self.exchange(
            "leader_allreduce",
            self.n_nodes(),
            self.node(),
            data.to_vec(),
        )?;
        let out = fold_table(op, &table)?;
        if self.node() == 0 {
            self.record(
                CollectiveKind::LeaderAllReduce,
                self.n_nodes(),
                data.len() * 8,
            );
        }
        Ok(out)
    }
}

/// Fold a contribution table in rank order.
fn fold_table(op: ReduceOp, table: &[Vec<f64>]) -> Result<Vec<f64>, CommError> {
    let len = table[0].len();
    if table.iter().any(|v| v.len() != len) {
        return Err(CommError::Mismatch("allreduce buffer lengths differ"));
    }
    let mut out = table[0].clone();
    for row in &table[1..] {
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o = op.apply(*o, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    fn allreduce_sum_of_ranks() {
        let n = 8;
        let out = run_spmd(n, 4, |c| {
            c.allreduce(ReduceOp::Sum, &[c.rank() as f64, 1.0])
        })
        .unwrap();
        let expect = vec![(0..n).sum::<usize>() as f64, n as f64];
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn allreduce_max_min() {
        let out = run_spmd(5, 5, |c| {
            let mx = c.allreduce(ReduceOp::Max, &[c.rank() as f64])?;
            let mn = c.allreduce(ReduceOp::Min, &[c.rank() as f64])?;
            Ok((mx[0], mn[0]))
        })
        .unwrap();
        for (mx, mn) in out {
            assert_eq!(mx, 4.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn allreduce_is_deterministic_rank_order() {
        // Floating-point non-associativity: rank-ordered folding must yield
        // the exact same bits on every rank, every run.
        let vals: Vec<f64> = (0..16).map(|i| 0.1 * (i as f64) + 1e-13).collect();
        let runs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                let vals = vals.clone();
                let out = run_spmd(16, 4, move |c| {
                    c.allreduce(ReduceOp::Sum, &[vals[c.rank()]])
                })
                .unwrap();
                out.into_iter().map(|v| v[0]).collect()
            })
            .collect();
        let reference = runs[0][0];
        for run in &runs {
            for &v in run {
                assert_eq!(v.to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = run_spmd(6, 3, |c| {
            let data = if c.rank() == 4 {
                vec![7.0, 8.0]
            } else {
                vec![]
            };
            c.broadcast(4, data)
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let out = run_spmd(4, 2, |c| c.allgather(&[c.rank() as f64 * 10.0])).unwrap();
        for v in out {
            assert_eq!(v, vec![0.0, 10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn reduce_only_root_receives() {
        let out = run_spmd(4, 2, |c| c.reduce(ReduceOp::Sum, 2, &[1.0])).unwrap();
        for (rank, v) in out.iter().enumerate() {
            if rank == 2 {
                assert_eq!(v, &vec![4.0]);
            } else {
                assert!(v.is_empty());
            }
        }
    }

    #[test]
    fn mismatched_lengths_error() {
        let out = run_spmd(2, 2, |c| {
            let data = vec![0.0; 1 + c.rank()];
            c.allreduce(ReduceOp::Sum, &data)
        });
        // The first rank to detect the mismatch reports it; a peer may
        // instead observe the resulting world poison as RankFailed.
        assert!(
            matches!(
                out,
                Err(CommError::Mismatch(_)) | Err(CommError::RankFailed)
            ),
            "{out:?}"
        );
    }

    #[test]
    fn leader_allreduce_spans_nodes() {
        let out = run_spmd(8, 4, |c| {
            c.leader_allreduce(ReduceOp::Sum, &[(c.node() + 1) as f64])
        })
        .unwrap();
        // Leaders (ranks 0 and 4) see 1 + 2 = 3; others empty.
        assert_eq!(out[0], vec![3.0]);
        assert_eq!(out[4], vec![3.0]);
        assert!(out[1].is_empty() && out[5].is_empty());
    }

    #[test]
    fn traffic_metering_counts_collectives() {
        run_spmd(4, 2, |c| {
            c.allreduce(ReduceOp::Sum, &[0.0; 100])?;
            c.barrier()?;
            c.node_barrier()?;
            // Both nodes must have *recorded* their local barriers before
            // rank 0 inspects the log.
            c.barrier()?;
            if c.rank() == 0 {
                let log = c.traffic();
                assert_eq!(log.calls_of(CollectiveKind::AllReduce), 1);
                assert_eq!(log.calls_of(CollectiveKind::Barrier), 2);
                // Two nodes -> two local barriers.
                assert_eq!(log.calls_of(CollectiveKind::LocalBarrier), 2);
                let snap = log.snapshot();
                let ar = snap
                    .iter()
                    .find(|r| r.kind == CollectiveKind::AllReduce)
                    .unwrap();
                assert_eq!(ar.bytes_per_rank, 800);
                assert_eq!(ar.ranks, 4);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn node_barrier_does_not_deadlock_partial_node() {
        run_spmd(5, 2, |c| {
            for _ in 0..10 {
                c.node_barrier()?;
            }
            Ok(())
        })
        .unwrap();
    }
}

impl Comm {
    /// ReduceScatter: reduce `data` elementwise across ranks, then scatter
    /// contiguous chunks — rank `r` receives elements
    /// `[r·(len/size) .. )` of the reduced buffer (the first `len % size`
    /// ranks get one extra element, MPI block semantics).
    pub fn reduce_scatter(&self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>, CommError> {
        let _span = self.comm_span(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        let table = self.exchange("reduce_scatter", self.size(), self.rank(), data.to_vec())?;
        let len = table[0].len();
        if table.iter().any(|v| v.len() != len) {
            return Err(CommError::Mismatch("reduce_scatter buffer lengths differ"));
        }
        if self.rank() == 0 {
            self.record(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        }
        let size = self.size();
        let base = len / size;
        let rem = len % size;
        let my_len = base + usize::from(self.rank() < rem);
        let my_start = self.rank() * base + self.rank().min(rem);
        let mut out = vec![0.0; my_len];
        for (k, o) in out.iter_mut().enumerate() {
            let idx = my_start + k;
            let mut acc = table[0][idx];
            for row in &table[1..] {
                acc = op.apply(acc, row[idx]);
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Inclusive prefix scan: rank `r` receives the fold of ranks `0..=r`.
    pub fn scan(&self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>, CommError> {
        let _span = self.comm_span(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        let table = self.exchange("scan", self.size(), self.rank(), data.to_vec())?;
        let len = table[0].len();
        if table.iter().any(|v| v.len() != len) {
            return Err(CommError::Mismatch("scan buffer lengths differ"));
        }
        if self.rank() == 0 {
            self.record(CollectiveKind::AllReduce, self.size(), data.len() * 8);
        }
        let mut out = table[0].clone();
        for row in table.iter().take(self.rank() + 1).skip(1) {
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o = op.apply(*o, v);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    fn reduce_scatter_chunks_sum() {
        // 4 ranks, 10 elements: chunks of 3,3,2,2.
        let out = run_spmd(4, 2, |c| {
            let data: Vec<f64> = (0..10).map(|i| (i + c.rank()) as f64).collect();
            c.reduce_scatter(ReduceOp::Sum, &data)
        })
        .unwrap();
        // Reduced[i] = sum_r (i + r) = 4i + 6.
        assert_eq!(out[0], vec![6.0, 10.0, 14.0]);
        assert_eq!(out[1], vec![18.0, 22.0, 26.0]);
        assert_eq!(out[2], vec![30.0, 34.0]);
        assert_eq!(out[3], vec![38.0, 42.0]);
    }

    #[test]
    fn reduce_scatter_concat_equals_allreduce() {
        let n = 6;
        let out = run_spmd(n, 3, move |c| {
            let data: Vec<f64> = (0..13)
                .map(|i| ((i * 7 + c.rank() * 3) % 11) as f64)
                .collect();
            let ar = c.allreduce(ReduceOp::Sum, &data)?;
            let rs = c.reduce_scatter(ReduceOp::Sum, &data)?;
            let gathered = c.allgather(&rs)?;
            Ok(gathered == ar)
        })
        .unwrap();
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn scan_is_inclusive_prefix() {
        let out = run_spmd(5, 5, |c| c.scan(ReduceOp::Sum, &[(c.rank() + 1) as f64])).unwrap();
        // Rank r gets 1+2+...+(r+1).
        for (r, v) in out.iter().enumerate() {
            let expect: f64 = (1..=r + 1).sum::<usize>() as f64;
            assert_eq!(v[0], expect);
        }
    }

    #[test]
    fn scan_max() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0];
        let out = run_spmd(5, 5, move |c| c.scan(ReduceOp::Max, &[vals[c.rank()]])).unwrap();
        let expect = [3.0, 3.0, 4.0, 4.0, 5.0];
        for (v, e) in out.iter().zip(expect.iter()) {
            assert_eq!(v[0], *e);
        }
    }
}
