//! Hierarchical collective communication (§3.2.2, Fig. 6).
//!
//! An N-rank AllReduce is broken into:
//!
//! 1. **Intra-node synthesis** — the m ranks of each node accumulate their
//!    contributions into one node-shared copy via the conflict-free chunk
//!    rotation sequenced by local barriers ([`crate::shm::node_accumulate`]).
//! 2. **Inter-node collective** — only the `N/m` node leaders AllReduce the
//!    node-local sums.
//! 3. **Intra-node distribution** — the leader writes the global result back
//!    into the shared window; all node ranks read it after a local barrier.
//!
//! Memory drops from N data copies to `N/m`, and the expensive collective
//! narrows from N ranks to `N/m` — exactly the Fig. 6 transformation.

use crate::comm::{Comm, CommError};
use crate::shm::node_accumulate_fresh;
use crate::ReduceOp;

/// Hierarchical AllReduce of `data` (sum-like ops only make sense here, but
/// any [`ReduceOp`] works since the fold order stays node-major rank order).
///
/// Returns the reduced buffer on every rank.
///
/// Note on determinism: contributions fold *within* each node first, then
/// across nodes. For [`ReduceOp::Sum`] on doubles this grouping is the same
/// rank order as the flat fold (ranks are node-contiguous), but partial sums
/// associate differently, so results can differ from the flat AllReduce in
/// the last ulps — the same caveat real hierarchical MPI implementations
/// carry. The test suite pins the tolerance.
pub fn hierarchical_allreduce(
    comm: &Comm,
    key: &str,
    op: ReduceOp,
    data: &[f64],
) -> Result<Vec<f64>, CommError> {
    let mut span =
        qp_trace::SpanGuard::begin(comm.rank(), qp_trace::Phase::Comm, "HierarchicalAllReduce");
    if span.is_recording() {
        span.arg("ranks", comm.size())
            .arg("bytes_per_rank", data.len() * 8)
            .arg("nodes", comm.n_nodes());
    }
    let m = comm.ranks_per_node();
    let window = comm.node_window(key, data.len(), m);

    match op {
        ReduceOp::Sum => {
            // Stage 1: chunked intra-node accumulation.
            node_accumulate_fresh(comm, &window, data)?;
        }
        ReduceOp::Max | ReduceOp::Min => {
            // Rotation with max/min merge: initialize with the leader's copy
            // then merge others chunk-by-chunk under the chunk mutex.
            if comm.local_rank() == 0 {
                let mut off = 0;
                for ch in &window.chunks {
                    let mut g = ch.lock();
                    let len = g.len();
                    g.copy_from_slice(&data[off..off + len]);
                    off += len;
                }
            }
            comm.node_barrier()?;
            if comm.local_rank() != 0 {
                let nchunks = window.chunks.len();
                for phase in 0..nchunks {
                    let chunk = (comm.local_rank() + phase) % nchunks;
                    let range = window.chunk_range(chunk);
                    let mut g = window.chunks[chunk].lock();
                    for (o, &v) in g.iter_mut().zip(data[range].iter()) {
                        *o = op.apply(*o, v);
                    }
                }
            }
            comm.node_barrier()?;
        }
    }
    comm.node_barrier()?;

    // Stage 2: leaders reduce the node sums across nodes.
    let node_sum = if comm.local_rank() == 0 {
        window.snapshot()
    } else {
        Vec::new()
    };
    let global = comm.leader_allreduce(op, &node_sum)?;

    // Stage 3: leader publishes, everyone reads.
    if comm.local_rank() == 0 {
        let mut off = 0;
        for ch in &window.chunks {
            let mut g = ch.lock();
            let len = g.len();
            g.copy_from_slice(&global[off..off + len]);
            off += len;
        }
    }
    comm.node_barrier()?;
    let result = window.snapshot();
    comm.node_barrier()?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_spmd;

    #[test]
    fn matches_flat_allreduce_sum() {
        let out = run_spmd(8, 4, |c| {
            let data: Vec<f64> = (0..20)
                .map(|i| (c.rank() + 1) as f64 * 0.125 + i as f64)
                .collect();
            let flat = c.allreduce(ReduceOp::Sum, &data)?;
            let hier = hierarchical_allreduce(c, "h", ReduceOp::Sum, &data)?;
            let max_diff = flat
                .iter()
                .zip(hier.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            Ok(max_diff)
        })
        .unwrap();
        for d in out {
            assert!(d < 1e-12, "hierarchical deviates by {d}");
        }
    }

    #[test]
    fn exact_for_integer_valued_sums() {
        let out = run_spmd(6, 3, |c| {
            let data = vec![(c.rank() + 1) as f64; 7];
            hierarchical_allreduce(c, "int", ReduceOp::Sum, &data)
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![21.0; 7]);
        }
    }

    #[test]
    fn max_reduction() {
        let out = run_spmd(8, 4, |c| {
            let data = vec![c.rank() as f64, -(c.rank() as f64)];
            hierarchical_allreduce(c, "mx", ReduceOp::Max, &data)
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![7.0, 0.0]);
        }
    }

    #[test]
    fn narrows_expensive_collective_to_leaders() {
        run_spmd(8, 4, |c| {
            hierarchical_allreduce(c, "n", ReduceOp::Sum, &[1.0; 100])?;
            c.barrier()?;
            if c.rank() == 0 {
                let log = c.traffic();
                // One leaders-only AllReduce across 2 nodes, zero flat ones.
                assert_eq!(log.calls_of(crate::CollectiveKind::LeaderAllReduce), 1);
                assert_eq!(log.calls_of(crate::CollectiveKind::AllReduce), 0);
                let snap = log.snapshot();
                let leader = snap
                    .iter()
                    .find(|r| r.kind == crate::CollectiveKind::LeaderAllReduce)
                    .unwrap();
                assert_eq!(leader.ranks, 2, "narrowed from 8 ranks to 2 leaders");
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn repeated_calls_with_same_key() {
        let out = run_spmd(4, 2, |c| {
            let mut acc = 0.0;
            for round in 1..=5 {
                let v = hierarchical_allreduce(c, "rep", ReduceOp::Sum, &[round as f64])?;
                acc += v[0];
            }
            Ok(acc)
        })
        .unwrap();
        // Each round sums 4 ranks x round: 4+8+12+16+20 = 60.
        for v in out {
            assert_eq!(v, 60.0);
        }
    }

    #[test]
    fn single_node_degenerates_to_local() {
        let out = run_spmd(4, 4, |c| {
            hierarchical_allreduce(c, "solo", ReduceOp::Sum, &[2.0, 3.0])
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![8.0, 12.0]);
        }
    }

    #[test]
    fn uneven_last_node() {
        let out = run_spmd(5, 2, |c| {
            hierarchical_allreduce(c, "odd", ReduceOp::Sum, &[1.0])
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![5.0]);
        }
    }
}
