//! Region-telemetry contract tests.
//!
//! The profiler's attribution math is only trustworthy if the records are:
//! (a) deterministic in their scheduling-shape fields (counts, grains,
//! chunking) at a fixed thread count, and (b) complete — every executed
//! chunk's busy time is in the record the submitter takes. Both are pinned
//! here against a fixed synthetic workload. All scenarios run inside ONE
//! `#[test]` because the record sink is process-global and the default test
//! harness runs `#[test]`s concurrently.

use qp_par::telemetry;
use qp_par::{LaneStats, RegionRecord, ThreadLease};

/// A fixed workload: a mix of wide, narrow, inline and nested regions, all
/// submitted from the calling thread.
fn workload() {
    let _label = qp_par::LabelGuard::set("rho");
    qp_par::for_each_index(1000, |i| {
        std::hint::black_box(i * 3);
    });
    {
        let _label = qp_par::LabelGuard::set("sumup");
        // Small enough to collapse to a single chunk -> inline record.
        qp_par::for_each_index(1, |i| {
            std::hint::black_box(i);
        });
    }
    // Nested: inner regions submitted from inside outer chunks.
    qp_par::for_each_index(4, |i| {
        qp_par::for_each_index(64, move |j| {
            std::hint::black_box(i * 64 + j);
        });
    });
    let _ = qp_par::join(
        || std::hint::black_box(1 + 1),
        || std::hint::black_box(2 + 2),
    );
}

/// The scheduling-shape fields that must be bit-stable across runs.
fn shape(records: &[RegionRecord]) -> Vec<(&'static str, usize, usize, usize, usize, bool)> {
    let mut s: Vec<_> = records
        .iter()
        .map(|r| (r.label, r.n_items, r.grain, r.n_chunks, r.threads, r.inline))
        .collect();
    // Nested inner regions complete on racing worker threads, so the sink
    // order of *nested* records is not deterministic; canonicalize.
    s.sort();
    s
}

#[test]
fn region_records_are_deterministic_and_complete() {
    let _lease = ThreadLease::exactly(4);

    telemetry::set_enabled(true);
    let _ = telemetry::take_records();
    workload();
    let first = telemetry::take_records();
    workload();
    let second = telemetry::take_records();
    telemetry::set_enabled(false);

    // Determinism: same workload, same thread count => same region count
    // and identical scheduling shapes.
    assert!(!first.is_empty(), "workload must produce records");
    assert_eq!(first.len(), second.len(), "region count must be stable");
    assert_eq!(
        shape(&first),
        shape(&second),
        "region shapes must be stable"
    );

    // The outer 1000-item region: 4 threads x 4 chunks-per-thread.
    let wide = first
        .iter()
        .find(|r| r.n_items == 1000)
        .expect("wide region recorded");
    assert_eq!(wide.label, "rho");
    assert_eq!(wide.grain, 63, "1000 items / (4 threads * 4 chunks)");
    assert_eq!(wide.n_chunks, 16);
    assert!(!wide.inline && !wide.nested);

    // The single-item region must be recorded as inline serial time.
    let inline = first
        .iter()
        .find(|r| r.n_items == 1)
        .expect("inline region recorded");
    assert!(inline.inline);
    assert!(
        inline.caller_only,
        "inline records are by definition caller-only"
    );
    assert_eq!(inline.label, "sumup");
    assert_eq!(inline.lanes.len(), 1);

    // The 64-item inner regions must be flagged nested.
    let nested: Vec<_> = first.iter().filter(|r| r.n_items == 64).collect();
    assert_eq!(nested.len(), 4);
    assert!(nested.iter().all(|r| r.nested));

    // Completeness: every parallel record accounts for all its chunks in
    // the lane tallies, and times are present (non-zero wall).
    for r in &first {
        let lane_chunks: u32 = r.lanes.iter().map(|l| l.chunks).sum();
        assert_eq!(
            lane_chunks as usize,
            r.n_chunks,
            "every chunk of {:?} must be credited to a lane",
            (r.label, r.n_items)
        );
        assert!(r.wall_ns > 0, "wall time must be measured");
        assert!(
            r.max_busy_ns() <= r.total_busy_ns(),
            "lane accounting must be self-consistent"
        );
    }

    // Disabled => the pool records nothing.
    workload();
    assert!(telemetry::take_records().is_empty());
}

#[test]
fn lane_stats_equality() {
    let a = LaneStats {
        lane: 1,
        busy_ns: 2,
        chunks: 3,
    };
    assert_eq!(a, a.clone());
}
