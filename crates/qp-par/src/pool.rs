//! The persistent worker pool and the indexed parallel-region primitive.
//!
//! A *region* is one parallel loop: `n_items` split into chunks, executed
//! by whoever claims them first (dynamic self-scheduling via one
//! `fetch_add` per chunk). The submitting thread always participates, so a
//! region finishes even with zero free workers; workers pick regions off a
//! FIFO queue and help until each region is drained.

use crate::telemetry::{self, LaneStats, RegionRecord};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Chunks a region is split into, per active thread. More chunks = better
/// load balance, more scheduling traffic. 4 is the classic guided-lite
/// compromise.
const CHUNKS_PER_THREAD: usize = 4;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Erased `&dyn Fn(usize, usize)` (start, end of an item range) whose
/// referent is guaranteed by [`run_region`] to outlive the region.
struct RawJob(*const (dyn Fn(usize, usize) + Sync));
unsafe impl Send for RawJob {}
unsafe impl Sync for RawJob {}

/// Telemetry side-car for one region: set only while
/// [`telemetry::enabled`] at submission time, `None` otherwise (the
/// disabled hot path pays one `Option` branch per chunk).
struct RegionStats {
    /// Taken just before the region is enqueued.
    enqueued: Instant,
    /// Ns from enqueue to the first chunk claim (`u64::MAX` until then).
    first_claim_ns: AtomicU64,
    /// Per-lane busy/chunk tallies, updated per chunk *before* the chunk is
    /// counted in `done`, so the submitter's final record sees every lane.
    lanes: Mutex<Vec<LaneStats>>,
}

impl RegionStats {
    fn new() -> RegionStats {
        RegionStats {
            enqueued: Instant::now(),
            first_claim_ns: AtomicU64::new(u64::MAX),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// Credit `busy_ns` and one chunk to the calling thread's lane.
    fn credit(&self, busy_ns: u64) {
        let lane = telemetry::lane_id();
        let mut lanes = self.lanes.lock();
        match lanes.iter_mut().find(|l| l.lane == lane) {
            Some(l) => {
                l.busy_ns += busy_ns;
                l.chunks += 1;
            }
            None => lanes.push(LaneStats {
                lane,
                busy_ns,
                chunks: 1,
            }),
        }
    }
}

/// One in-flight parallel region.
struct Region {
    job: RawJob,
    /// Total items; chunk `c` covers `[c*chunk, min((c+1)*chunk, n_items))`.
    n_items: usize,
    chunk: usize,
    n_chunks: usize,
    /// Next chunk to claim (fetch_add ticket).
    next: AtomicUsize,
    /// Chunks finished (executed or skipped after cancellation).
    done: AtomicUsize,
    /// Submitter's qp-trace rank, propagated to workers.
    rank: usize,
    /// Submitter's phase label at submission, propagated to chunk
    /// executors while telemetry records — so work done (and roofline
    /// counters emitted) inside worker chunks lands in the right phase.
    label: &'static str,
    /// Set on first panic: remaining chunks are skipped (still counted).
    cancelled: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
    finished: Mutex<bool>,
    finished_cv: Condvar,
    /// Telemetry side-car (`None` when recording is off).
    stats: Option<RegionStats>,
}

impl Region {
    /// Claim-and-execute loop: run chunks until none are left. Returns
    /// whether this call finished the last chunk.
    fn help(&self) {
        loop {
            let c = self.next.fetch_add(1, Ordering::AcqRel);
            if c >= self.n_chunks {
                return;
            }
            if let Some(st) = &self.stats {
                if c == 0 {
                    st.first_claim_ns
                        .store(st.enqueued.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
            if !self.cancelled.load(Ordering::Acquire) {
                let start = c * self.chunk;
                let end = (start + self.chunk).min(self.n_items);
                // SAFETY: run_region keeps the closure alive until every
                // chunk is accounted for in `done`.
                let job = unsafe { &*self.job.0 };
                let t0 = self.stats.as_ref().map(|_| Instant::now());
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                    let _depth = self.stats.as_ref().map(|_| telemetry::enter_chunk());
                    let _label = self
                        .stats
                        .as_ref()
                        .map(|_| telemetry::LabelGuard::set(self.label));
                    job(start, end)
                })) {
                    self.cancelled.store(true, Ordering::Release);
                    let mut slot = self.panic.lock();
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
                if let (Some(t0), Some(st)) = (t0, &self.stats) {
                    st.credit(t0.elapsed().as_nanos() as u64);
                }
            }
            // AcqRel: releases this chunk's output writes to whoever sees
            // the final count, and acquires prior chunks' writes for the
            // finisher.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n_chunks {
                let mut fin = self.finished.lock();
                *fin = true;
                self.finished_cv.notify_all();
            }
        }
    }

    fn drained(&self) -> bool {
        self.next.load(Ordering::Acquire) >= self.n_chunks
    }
}

/// The process-global pool.
struct Pool {
    queue: Mutex<VecDeque<Arc<Region>>>,
    /// Signals queued work and limit changes to parked workers.
    work_cv: Condvar,
    /// Desired total parallelism (participating caller + active workers).
    limit: AtomicUsize,
    /// Workers spawned so far (monotonic; workers above `limit - 1` park).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        limit: AtomicUsize::new(threads_from_env()),
        spawned: Mutex::new(0),
    })
}

/// Initial thread count: `QP_THREADS` if set and parseable (clamped to
/// ≥ 1), else the machine's available parallelism.
fn threads_from_env() -> usize {
    if let Ok(v) = std::env::var("QP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Current parallelism target (1 = everything runs inline on the caller).
pub fn active_threads() -> usize {
    pool().limit.load(Ordering::Relaxed).max(1)
}

/// Set the parallelism target, spawning workers if needed. Returns the
/// previous value. Intended for tests and benches (`ThreadLease` is the
/// RAII form); production sizing comes from `QP_THREADS`.
pub fn set_active_threads(n: usize) -> usize {
    let n = n.max(1);
    let p = pool();
    let prev = p.limit.swap(n, Ordering::Relaxed);
    if n > 1 {
        ensure_workers(p, n - 1);
    }
    // Wake parked workers so newly-activated indices re-check the limit.
    p.work_cv.notify_all();
    prev
}

/// RAII thread-count override for tests: restores the previous limit on
/// drop.
pub struct ThreadLease {
    prev: usize,
}

impl ThreadLease {
    /// Set the limit to exactly `n` for the lease's lifetime.
    pub fn exactly(n: usize) -> Self {
        ThreadLease {
            prev: set_active_threads(n),
        }
    }

    /// Raise the limit to at least `n` (never lowers it).
    pub fn at_least(n: usize) -> Self {
        let current = active_threads();
        ThreadLease {
            prev: set_active_threads(current.max(n)),
        }
    }
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        set_active_threads(self.prev);
    }
}

fn ensure_workers(p: &'static Pool, wanted: usize) {
    let mut spawned = p.spawned.lock();
    while *spawned < wanted {
        let index = *spawned;
        std::thread::Builder::new()
            .name(format!("qp-par-{index}"))
            .spawn(move || worker_loop(index))
            .expect("spawn qp-par worker");
        *spawned += 1;
    }
}

fn worker_loop(index: usize) {
    let p = pool();
    loop {
        // Take (a handle to) the front unfinished region, parking while the
        // queue is empty or this worker is above the active limit.
        let region: Arc<Region> = {
            let mut q = p.queue.lock();
            loop {
                while q.front().is_some_and(|r| r.drained()) {
                    q.pop_front();
                }
                let active = index + 1 < p.limit.load(Ordering::Relaxed);
                if active {
                    if let Some(r) = q.front() {
                        break r.clone();
                    }
                }
                p.work_cv.wait(&mut q);
            }
        };
        // Attribute everything executed here to the submitter's rank.
        qp_trace::set_thread_rank(region.rank);
        region.help();
    }
}

/// Run `job(start, end)` over `n_items` split into chunks, in parallel on
/// the pool. Blocks until every chunk has executed; panics from any chunk
/// are re-raised here after the region drains (so borrowed data stays valid
/// for the region's whole lifetime).
pub fn run_region(n_items: usize, job: &(dyn Fn(usize, usize) + Sync)) {
    if n_items == 0 {
        return;
    }
    let recording = telemetry::enabled();
    let threads = active_threads();
    if threads <= 1 || n_items == 1 {
        run_inline(n_items, n_items, 1, threads, recording, job);
        return;
    }
    let chunk = n_items.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let n_chunks = n_items.div_ceil(chunk);
    if n_chunks <= 1 {
        run_inline(n_items, chunk, n_chunks, threads, recording, job);
        return;
    }
    let t_start = recording.then(Instant::now);
    let nested = recording && telemetry::in_chunk();
    let label = if recording {
        telemetry::current_label()
    } else {
        "other"
    };
    let p = pool();
    ensure_workers(p, threads - 1);
    // SAFETY (lifetime erasure): the region is fully drained before this
    // function returns — `done` reaches `n_chunks` and the finished flag is
    // observed under its mutex — so no worker touches `job` after return.
    let job_static: *const (dyn Fn(usize, usize) + Sync) =
        unsafe { std::mem::transmute(job as *const (dyn Fn(usize, usize) + Sync)) };
    let region = Arc::new(Region {
        job: RawJob(job_static),
        n_items,
        chunk,
        n_chunks,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        rank: qp_trace::thread_rank(),
        label,
        cancelled: AtomicBool::new(false),
        panic: Mutex::new(None),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
        stats: recording.then(RegionStats::new),
    });
    p.queue.lock().push_back(region.clone());
    p.work_cv.notify_all();
    let setup_ns = t_start.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
    // The caller always helps: the region completes even if every worker is
    // busy elsewhere (and nested regions cannot deadlock).
    region.help();
    let mut fin = region.finished.lock();
    while !*fin {
        region.finished_cv.wait(&mut fin);
    }
    drop(fin);
    let payload = region.panic.lock().take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
    if let (Some(t_start), Some(st)) = (t_start, &region.stats) {
        // Every executed chunk credited its lane before being counted in
        // `done`, so the lane list is complete once the region drains.
        let fc = st.first_claim_ns.load(Ordering::Relaxed);
        telemetry::record(RegionRecord {
            label,
            n_items,
            grain: chunk,
            n_chunks,
            threads,
            inline: false,
            nested,
            setup_ns,
            queue_wait_ns: if fc == u64::MAX { 0 } else { fc },
            wall_ns: t_start.elapsed().as_nanos() as u64,
            lanes: std::mem::take(&mut *st.lanes.lock()),
        });
    }
}

/// Execute a region inline on the caller, recording it (as serial time)
/// when telemetry is armed.
fn run_inline(
    n_items: usize,
    grain: usize,
    n_chunks: usize,
    threads: usize,
    recording: bool,
    job: &(dyn Fn(usize, usize) + Sync),
) {
    if !recording {
        job(0, n_items);
        return;
    }
    let nested = telemetry::in_chunk();
    let t0 = Instant::now();
    {
        let _depth = telemetry::enter_chunk();
        job(0, n_items);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    telemetry::record(RegionRecord {
        label: telemetry::current_label(),
        n_items,
        grain,
        n_chunks,
        threads,
        inline: true,
        nested,
        setup_ns: 0,
        queue_wait_ns: 0,
        wall_ns,
        lanes: vec![LaneStats {
            lane: telemetry::lane_id(),
            busy_ns: wall_ns,
            chunks: 1,
        }],
    });
}

/// Indexed parallel for: `f(i)` for every `i in 0..n`, chunked over the
/// pool. Deterministic output placement is the caller's job (write to slot
/// `i`); qp-par guarantees each index runs exactly once.
pub fn for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    run_region(n, &|start, end| {
        for i in start..end {
            f(i);
        }
    });
}

/// Potentially-parallel two-way fork-join (`rayon::join` stand-in): `a`
/// and `b` may run concurrently; both have completed when this returns.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if active_threads() <= 1 {
        return (a(), b());
    }
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let slot_a = Mutex::new(Some((a, &mut ra)));
        let slot_b = Mutex::new(Some((b, &mut rb)));
        run_region(2, &|start, end| {
            for i in start..end {
                if i == 0 {
                    if let Some((f, out)) = slot_a.lock().take() {
                        *out = Some(f());
                    }
                } else if let Some((f, out)) = slot_b.lock().take() {
                    *out = Some(f());
                }
            }
        });
    }
    (
        ra.expect("join arm a completed"),
        rb.expect("join arm b completed"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_index_runs_exactly_once() {
        let _g = ThreadLease::at_least(4);
        let seen = Mutex::new(HashSet::new());
        for_each_index(1000, |i| {
            assert!(seen.lock().insert(i), "index {i} ran twice");
        });
        assert_eq!(seen.lock().len(), 1000);
    }

    #[test]
    fn zero_and_one_item_regions() {
        for_each_index(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        for_each_index(1, |i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both_results() {
        let _g = ThreadLease::at_least(2);
        let (a, b) = join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn lease_restores_previous_limit() {
        let before = active_threads();
        {
            let _g = ThreadLease::exactly(before + 3);
            assert_eq!(active_threads(), before + 3);
        }
        assert_eq!(active_threads(), before);
    }

    #[test]
    fn worker_rank_attribution_propagates() {
        let _g = ThreadLease::at_least(4);
        qp_trace::set_thread_rank(7);
        let ranks = Mutex::new(HashSet::new());
        for_each_index(64, |_| {
            ranks.lock().insert(qp_trace::thread_rank());
            // Busy-wait a little so several threads participate.
            std::hint::black_box((0..100).sum::<usize>());
        });
        qp_trace::set_thread_rank(0);
        assert_eq!(
            ranks.into_inner().into_iter().collect::<Vec<_>>(),
            vec![7],
            "all executors must carry the submitter's rank"
        );
    }
}
