//! The persistent worker pool and the indexed parallel-region primitive.
//!
//! A *region* is one parallel loop: `n_items` split into chunks, executed
//! by whoever claims them first (dynamic self-scheduling via one
//! `fetch_add` per chunk). The submitting thread always participates, so a
//! region finishes even with zero free workers; workers pick regions off a
//! FIFO queue and help until each region is drained.
//!
//! Two mechanisms keep small regions from drowning in scheduling cost:
//!
//! * **Grain-size heuristic** — callers that know their per-item cost use
//!   the `_hinted` entry points; regions whose estimated serial time falls
//!   below [`inline_cutoff_ns`] (`QP_PAR_INLINE_NS`, default 50 µs — the
//!   approximate 2-thread break-even against the measured region setup
//!   cost) run inline on the caller with no queue traffic and no setup.
//! * **Reusable region shell** — each thread caches its last drained
//!   `Region` allocation and re-arms it for the next submission when it
//!   holds the only reference, so iteration-heavy phases (SCF/DFPT loops)
//!   pay the region allocation once, not once per loop.

use crate::telemetry::{self, LaneStats, RegionRecord};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Chunks a region is split into, per active thread. More chunks = better
/// load balance, more scheduling traffic. 4 is the classic guided-lite
/// compromise.
const CHUNKS_PER_THREAD: usize = 4;

/// Default estimated-serial-cost cutoff below which a *hinted* region runs
/// inline. The profiled enqueue+wakeup cost is ~25-30 µs per region, so at
/// 2 threads a region only breaks even once its serial work exceeds
/// roughly `setup / (1 - 1/T - imbalance)` ≈ 70 µs; 50 µs errs slightly
/// toward fan-out for the benefit of wider hosts.
const DEFAULT_INLINE_CUTOFF_NS: u64 = 50_000;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Erased `&dyn Fn(usize, usize)` (start, end of an item range) whose
/// referent is guaranteed by [`run_region`] to outlive the region.
struct RawJob(*const (dyn Fn(usize, usize) + Sync));
unsafe impl Send for RawJob {}
unsafe impl Sync for RawJob {}

/// Telemetry side-car for one region run: set only while
/// [`telemetry::enabled`] at submission time, `None` otherwise (the
/// disabled hot path pays one `Option` branch per chunk).
struct RegionStats {
    /// Taken just before the region is enqueued.
    enqueued: Instant,
    /// Ns from enqueue to the first chunk claim (`u64::MAX` until then).
    first_claim_ns: AtomicU64,
    /// Per-lane busy/chunk tallies, updated per chunk *before* the chunk is
    /// counted in `done`, so the submitter's final record sees every lane.
    lanes: Mutex<Vec<LaneStats>>,
}

impl RegionStats {
    fn new() -> RegionStats {
        RegionStats {
            enqueued: Instant::now(),
            first_claim_ns: AtomicU64::new(u64::MAX),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// Credit `busy_ns` and one chunk to the calling thread's lane.
    fn credit(&self, busy_ns: u64) {
        let lane = telemetry::lane_id();
        let mut lanes = self.lanes.lock();
        match lanes.iter_mut().find(|l| l.lane == lane) {
            Some(l) => {
                l.busy_ns += busy_ns;
                l.chunks += 1;
            }
            None => lanes.push(LaneStats {
                lane,
                busy_ns,
                chunks: 1,
            }),
        }
    }
}

/// Per-run state of a region. Written by the submitter while it holds the
/// *only* strong reference to the `Region` (fresh allocation or verified
/// `Arc::strong_count == 1` reuse), then published to workers by the queue
/// mutex: every worker locks the queue before it can clone the `Arc`, so
/// the submitter's writes happen-before any worker read.
struct RunFields {
    job: RawJob,
    /// Total items; chunk `c` covers `[c*chunk, min((c+1)*chunk, n_items))`.
    n_items: usize,
    chunk: usize,
    n_chunks: usize,
    /// Submitter's qp-trace rank, propagated to workers.
    rank: usize,
    /// Submitter's phase label at submission, propagated to chunk
    /// executors while telemetry records — so work done (and roofline
    /// counters emitted) inside worker chunks lands in the right phase.
    label: &'static str,
    /// Telemetry side-car (`None` when recording is off).
    stats: Option<Arc<RegionStats>>,
}

/// One (re-armable) parallel region.
struct Region {
    /// Per-run fields; see [`RunFields`] for the publication argument.
    run: Mutex<RunFields>,
    /// Mirror of `run.n_chunks` for the lock-free `drained` check in the
    /// worker loop.
    queued: AtomicUsize,
    /// Next chunk to claim (fetch_add ticket).
    next: AtomicUsize,
    /// Chunks finished (executed or skipped after cancellation).
    done: AtomicUsize,
    /// Set on first panic: remaining chunks are skipped (still counted).
    cancelled: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

impl Region {
    fn fresh(fields: RunFields) -> Region {
        let n_chunks = fields.n_chunks;
        FRESH_REGIONS.fetch_add(1, Ordering::Relaxed);
        Region {
            run: Mutex::new(fields),
            queued: AtomicUsize::new(n_chunks),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            panic: Mutex::new(None),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        }
    }

    /// Claim-and-execute loop: run chunks until none are left.
    fn help(&self) {
        let (job, n_items, chunk, n_chunks, label, stats) = {
            let run = self.run.lock();
            (
                RawJob(run.job.0),
                run.n_items,
                run.chunk,
                run.n_chunks,
                run.label,
                run.stats.clone(),
            )
        };
        loop {
            let c = self.next.fetch_add(1, Ordering::AcqRel);
            if c >= n_chunks {
                return;
            }
            if let Some(st) = &stats {
                if c == 0 {
                    st.first_claim_ns
                        .store(st.enqueued.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
            if !self.cancelled.load(Ordering::Acquire) {
                let start = c * chunk;
                let end = (start + chunk).min(n_items);
                // SAFETY: the submitter keeps the closure alive until every
                // chunk is accounted for in `done`.
                let job = unsafe { &*job.0 };
                let t0 = stats.as_ref().map(|_| Instant::now());
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                    let _depth = stats.as_ref().map(|_| telemetry::enter_chunk());
                    let _label = stats.as_ref().map(|_| telemetry::LabelGuard::set(label));
                    job(start, end)
                })) {
                    self.cancelled.store(true, Ordering::Release);
                    let mut slot = self.panic.lock();
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
                if let (Some(t0), Some(st)) = (t0, &stats) {
                    st.credit(t0.elapsed().as_nanos() as u64);
                }
            }
            // AcqRel: releases this chunk's output writes to whoever sees
            // the final count, and acquires prior chunks' writes for the
            // finisher.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == n_chunks {
                let mut fin = self.finished.lock();
                *fin = true;
                self.finished_cv.notify_all();
            }
        }
    }

    fn drained(&self) -> bool {
        self.next.load(Ordering::Acquire) >= self.queued.load(Ordering::Acquire)
    }
}

/// Fresh `Region` allocations since process start. Reuse of the per-thread
/// shell keeps this far below the number of regions *run*; exposed so tests
/// and diagnostics can verify the amortization actually happens.
static FRESH_REGIONS: AtomicU64 = AtomicU64::new(0);

/// Count of `Region` allocations so far (reused shells do not count).
pub fn region_allocations() -> u64 {
    FRESH_REGIONS.load(Ordering::Relaxed)
}

thread_local! {
    /// The calling thread's cached region shell: the last region this
    /// thread submitted and fully drained, kept for re-arming. `RefCell`
    /// so a nested submission (from inside one of our own chunks) falls
    /// back to a fresh allocation instead of aliasing the live shell.
    static SHELL: RefCell<Option<Arc<Region>>> = const { RefCell::new(None) };
}

/// The process-global pool.
struct Pool {
    queue: Mutex<VecDeque<Arc<Region>>>,
    /// Signals queued work and limit changes to parked workers.
    work_cv: Condvar,
    /// Desired total parallelism (participating caller + active workers).
    limit: AtomicUsize,
    /// Workers spawned so far (monotonic; workers above `limit - 1` park).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        limit: AtomicUsize::new(threads_from_env()),
        spawned: Mutex::new(0),
    })
}

/// Initial thread count: `QP_THREADS` if set and parseable (clamped to
/// ≥ 1), else the machine's available parallelism.
fn threads_from_env() -> usize {
    if let Ok(v) = std::env::var("QP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Serial-cost cutoff for the hinted inline heuristic (`QP_PAR_INLINE_NS`,
/// default [`DEFAULT_INLINE_CUTOFF_NS`]; `0` disables inlining-by-hint).
pub fn inline_cutoff_ns() -> u64 {
    static CUTOFF: OnceLock<u64> = OnceLock::new();
    *CUTOFF.get_or_init(|| {
        std::env::var("QP_PAR_INLINE_NS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_INLINE_CUTOFF_NS)
    })
}

/// Current parallelism target (1 = everything runs inline on the caller).
pub fn active_threads() -> usize {
    pool().limit.load(Ordering::Relaxed).max(1)
}

/// Set the parallelism target, spawning workers if needed. Returns the
/// previous value. Intended for tests and benches (`ThreadLease` is the
/// RAII form); production sizing comes from `QP_THREADS`.
pub fn set_active_threads(n: usize) -> usize {
    let n = n.max(1);
    let p = pool();
    let prev = p.limit.swap(n, Ordering::Relaxed);
    if n > 1 {
        ensure_workers(p, n - 1);
    }
    // Wake parked workers so newly-activated indices re-check the limit.
    p.work_cv.notify_all();
    prev
}

/// RAII thread-count override for tests: restores the previous limit on
/// drop.
pub struct ThreadLease {
    prev: usize,
}

impl ThreadLease {
    /// Set the limit to exactly `n` for the lease's lifetime.
    pub fn exactly(n: usize) -> Self {
        ThreadLease {
            prev: set_active_threads(n),
        }
    }

    /// Raise the limit to at least `n` (never lowers it).
    pub fn at_least(n: usize) -> Self {
        let current = active_threads();
        ThreadLease {
            prev: set_active_threads(current.max(n)),
        }
    }
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        set_active_threads(self.prev);
    }
}

fn ensure_workers(p: &'static Pool, wanted: usize) {
    let mut spawned = p.spawned.lock();
    while *spawned < wanted {
        let index = *spawned;
        std::thread::Builder::new()
            .name(format!("qp-par-{index}"))
            .spawn(move || worker_loop(index))
            .expect("spawn qp-par worker");
        *spawned += 1;
    }
}

fn worker_loop(index: usize) {
    let p = pool();
    loop {
        // Take (a handle to) the front unfinished region, parking while the
        // queue is empty or this worker is above the active limit.
        let region: Arc<Region> = {
            let mut q = p.queue.lock();
            loop {
                while q.front().is_some_and(|r| r.drained()) {
                    q.pop_front();
                }
                let active = index + 1 < p.limit.load(Ordering::Relaxed);
                if active {
                    if let Some(r) = q.front() {
                        break r.clone();
                    }
                }
                p.work_cv.wait(&mut q);
            }
        };
        // Attribute everything executed here to the submitter's rank.
        let rank = region.run.lock().rank;
        qp_trace::set_thread_rank(rank);
        region.help();
    }
}

/// Take the calling thread's cached shell and re-arm it with `fields`, or
/// allocate fresh when the shell is absent, busy (nested submission), or
/// still referenced by a straggling worker / the queue.
fn acquire_region(p: &'static Pool, fields: RunFields) -> Arc<Region> {
    let cached = SHELL.with(|s| s.try_borrow_mut().ok().and_then(|mut slot| slot.take()));
    if let Some(r) = cached {
        if Arc::strong_count(&r) > 1 {
            // Drained shells linger at the queue front until a worker next
            // sweeps them; evict ours so the count can reach 1.
            p.queue.lock().retain(|q| !Arc::ptr_eq(q, &r));
        }
        if Arc::strong_count(&r) == 1 {
            // Sole owner: no worker or queue reference can observe the
            // reset. The queue mutex publishes these writes on push.
            let n_chunks = fields.n_chunks;
            r.next.store(0, Ordering::Relaxed);
            r.done.store(0, Ordering::Relaxed);
            r.cancelled.store(false, Ordering::Relaxed);
            *r.finished.lock() = false;
            *r.panic.lock() = None;
            *r.run.lock() = fields;
            r.queued.store(n_chunks, Ordering::Relaxed);
            return r;
        }
    }
    Arc::new(Region::fresh(fields))
}

/// Run `job(start, end)` over `n_items` split into chunks, in parallel on
/// the pool. Blocks until every chunk has executed; panics from any chunk
/// are re-raised here after the region drains (so borrowed data stays valid
/// for the region's whole lifetime).
pub fn run_region(n_items: usize, job: &(dyn Fn(usize, usize) + Sync)) {
    run_region_impl(n_items, None, job)
}

/// [`run_region`] with a caller-supplied per-item cost estimate (ns). When
/// the estimated serial time is below [`inline_cutoff_ns`] the region runs
/// inline — no queue, no wakeup, no setup — which is a net win for regions
/// cheaper than the scheduling round trip.
pub fn run_region_hinted(n_items: usize, est_item_ns: u64, job: &(dyn Fn(usize, usize) + Sync)) {
    run_region_impl(n_items, Some(est_item_ns), job)
}

fn run_region_impl(n_items: usize, est_item_ns: Option<u64>, job: &(dyn Fn(usize, usize) + Sync)) {
    if n_items == 0 {
        return;
    }
    let recording = telemetry::enabled();
    let threads = active_threads();
    if threads <= 1 || n_items == 1 {
        run_inline(n_items, n_items, 1, threads, recording, job);
        return;
    }
    // Grain-size heuristic: a region whose whole serial cost is below the
    // scheduling round trip is cheaper to run right here.
    if let Some(est) = est_item_ns {
        let cutoff = inline_cutoff_ns();
        if cutoff > 0 && est.saturating_mul(n_items as u64) < cutoff {
            run_inline(n_items, n_items, 1, threads, recording, job);
            return;
        }
    }
    let chunk = n_items.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let n_chunks = n_items.div_ceil(chunk);
    if n_chunks <= 1 {
        run_inline(n_items, chunk, n_chunks, threads, recording, job);
        return;
    }
    let t_start = recording.then(Instant::now);
    let nested = recording && telemetry::in_chunk();
    let label = if recording {
        telemetry::current_label()
    } else {
        "other"
    };
    let p = pool();
    ensure_workers(p, threads - 1);
    // SAFETY (lifetime erasure): the region is fully drained before this
    // function returns — `done` reaches `n_chunks` and the finished flag is
    // observed under its mutex — so no worker touches `job` after return.
    let job_static: *const (dyn Fn(usize, usize) + Sync) =
        unsafe { std::mem::transmute(job as *const (dyn Fn(usize, usize) + Sync)) };
    let stats = recording.then(|| Arc::new(RegionStats::new()));
    let region = acquire_region(
        p,
        RunFields {
            job: RawJob(job_static),
            n_items,
            chunk,
            n_chunks,
            rank: qp_trace::thread_rank(),
            label,
            stats: stats.clone(),
        },
    );
    p.queue.lock().push_back(region.clone());
    p.work_cv.notify_all();
    let setup_ns = t_start.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
    // The caller always helps: the region completes even if every worker is
    // busy elsewhere (and nested regions cannot deadlock).
    region.help();
    let mut fin = region.finished.lock();
    while !*fin {
        region.finished_cv.wait(&mut fin);
    }
    drop(fin);
    let payload = region.panic.lock().take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
    if let (Some(t_start), Some(st)) = (t_start, &stats) {
        // Every executed chunk credited its lane before being counted in
        // `done`, so the lane list is complete once the region drains.
        let fc = st.first_claim_ns.load(Ordering::Relaxed);
        let lanes = std::mem::take(&mut *st.lanes.lock());
        // A region the submitter drained single-handedly is de-facto
        // inline work: no worker ever touched it, so its wall time belongs
        // to the serial remainder, not to parallel setup.
        let caller_only = lanes.len() == 1 && lanes[0].lane == telemetry::lane_id();
        telemetry::record(RegionRecord {
            label,
            n_items,
            grain: chunk,
            n_chunks,
            threads,
            inline: false,
            caller_only,
            nested,
            setup_ns,
            queue_wait_ns: if fc == u64::MAX { 0 } else { fc },
            wall_ns: t_start.elapsed().as_nanos() as u64,
            lanes,
        });
    }
    // Cache the drained shell for this thread's next submission.
    SHELL.with(|s| {
        if let Ok(mut slot) = s.try_borrow_mut() {
            *slot = Some(region);
        }
    });
}

/// Execute a region inline on the caller, recording it (as serial time)
/// when telemetry is armed.
fn run_inline(
    n_items: usize,
    grain: usize,
    n_chunks: usize,
    threads: usize,
    recording: bool,
    job: &(dyn Fn(usize, usize) + Sync),
) {
    if !recording {
        job(0, n_items);
        return;
    }
    let nested = telemetry::in_chunk();
    let t0 = Instant::now();
    {
        let _depth = telemetry::enter_chunk();
        job(0, n_items);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    telemetry::record(RegionRecord {
        label: telemetry::current_label(),
        n_items,
        grain,
        n_chunks,
        threads,
        inline: true,
        caller_only: true,
        nested,
        setup_ns: 0,
        queue_wait_ns: 0,
        wall_ns,
        lanes: vec![LaneStats {
            lane: telemetry::lane_id(),
            busy_ns: wall_ns,
            chunks: 1,
        }],
    });
}

/// Indexed parallel for: `f(i)` for every `i in 0..n`, chunked over the
/// pool. Deterministic output placement is the caller's job (write to slot
/// `i`); qp-par guarantees each index runs exactly once.
pub fn for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    run_region(n, &|start, end| {
        for i in start..end {
            f(i);
        }
    });
}

/// [`for_each_index`] with a per-item cost estimate (ns) feeding the
/// grain-size heuristic: sub-threshold loops run inline with zero
/// scheduling cost.
pub fn for_each_index_hinted<F>(n: usize, est_item_ns: u64, f: F)
where
    F: Fn(usize) + Sync,
{
    run_region_hinted(n, est_item_ns, &|start, end| {
        for i in start..end {
            f(i);
        }
    });
}

/// Potentially-parallel two-way fork-join (`rayon::join` stand-in): `a`
/// and `b` may run concurrently; both have completed when this returns.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if active_threads() <= 1 {
        return (a(), b());
    }
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let slot_a = Mutex::new(Some((a, &mut ra)));
        let slot_b = Mutex::new(Some((b, &mut rb)));
        run_region(2, &|start, end| {
            for i in start..end {
                if i == 0 {
                    if let Some((f, out)) = slot_a.lock().take() {
                        *out = Some(f());
                    }
                } else if let Some((f, out)) = slot_b.lock().take() {
                    *out = Some(f());
                }
            }
        });
    }
    (
        ra.expect("join arm a completed"),
        rb.expect("join arm b completed"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_index_runs_exactly_once() {
        let _g = ThreadLease::at_least(4);
        let seen = Mutex::new(HashSet::new());
        for_each_index(1000, |i| {
            assert!(seen.lock().insert(i), "index {i} ran twice");
        });
        assert_eq!(seen.lock().len(), 1000);
    }

    #[test]
    fn zero_and_one_item_regions() {
        for_each_index(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        for_each_index(1, |i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn hinted_regions_run_inline_below_cutoff_and_complete_above() {
        let _g = ThreadLease::at_least(4);
        // Tiny estimated cost -> inline, still every index exactly once.
        let seen = Mutex::new(HashSet::new());
        for_each_index_hinted(100, 1, |i| {
            assert!(seen.lock().insert(i), "index {i} ran twice");
        });
        assert_eq!(seen.lock().len(), 100);
        // Huge estimated cost -> scheduled path, same contract.
        let seen = Mutex::new(HashSet::new());
        for_each_index_hinted(100, 1_000_000, |i| {
            assert!(seen.lock().insert(i), "index {i} ran twice");
        });
        assert_eq!(seen.lock().len(), 100);
    }

    #[test]
    fn region_shell_is_reused_across_iterations() {
        let _g = ThreadLease::exactly(4);
        // Warm up: make sure this thread has a cached shell.
        for_each_index(64, |i| {
            std::hint::black_box(i);
        });
        let before = region_allocations();
        for _ in 0..100 {
            for_each_index(64, |i| {
                std::hint::black_box(i);
            });
        }
        let allocated = region_allocations() - before;
        // Reuse is opportunistic (a straggling worker can hold the shell's
        // Arc), but across 100 back-to-back regions the shell must be
        // reused most of the time or the amortization is broken.
        assert!(
            allocated < 50,
            "expected mostly-reused shells, got {allocated} fresh allocations in 100 regions"
        );
    }

    #[test]
    fn join_returns_both_results() {
        let _g = ThreadLease::at_least(2);
        let (a, b) = join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn lease_restores_previous_limit() {
        let before = active_threads();
        {
            let _g = ThreadLease::exactly(before + 3);
            assert_eq!(active_threads(), before + 3);
        }
        assert_eq!(active_threads(), before);
    }

    #[test]
    fn worker_rank_attribution_propagates() {
        let _g = ThreadLease::at_least(4);
        qp_trace::set_thread_rank(7);
        let ranks = Mutex::new(HashSet::new());
        for_each_index(64, |_| {
            ranks.lock().insert(qp_trace::thread_rank());
            // Busy-wait a little so several threads participate.
            std::hint::black_box((0..100).sum::<usize>());
        });
        qp_trace::set_thread_rank(0);
        assert_eq!(
            ranks.into_inner().into_iter().collect::<Vec<_>>(),
            vec![7],
            "all executors must carry the submitter's rank"
        );
    }
}
