//! Scheduling telemetry: one [`RegionRecord`] per parallel region.
//!
//! The pool's answer to "why is the 2-thread leg slower than serial": every
//! region records its setup cost, queue wait, wall time, grain size and the
//! per-lane busy time of every thread that executed chunks. From those a
//! report can decompose a run's wall clock into useful parallel work,
//! scheduling overhead, load imbalance, and uncovered serial time (see
//! `qp_core::profile`).
//!
//! Cost model: when disabled (the default) the pool pays one relaxed atomic
//! load per region and nothing else — no clock reads, no allocation. When
//! enabled, each chunk pays two `Instant::now` reads and one short mutex
//! push, a few hundred ns against chunks that exist to amortize multi-µs
//! work; records land in a global sink directly (regions complete at a rate
//! of at most a few thousand per second, so sink contention is noise, and a
//! direct push means [`take_records`] never misses records buffered on
//! parked worker threads).

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One thread's contribution to a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// Opaque per-thread ordinal (stable within a process run).
    pub lane: u64,
    /// Nanoseconds spent executing this region's chunks.
    pub busy_ns: u64,
    /// Chunks this lane executed.
    pub chunks: u32,
}

/// One completed parallel region (or inline-executed would-be region).
#[derive(Debug, Clone)]
pub struct RegionRecord {
    /// Phase label the submitting thread carried (see [`LabelGuard`]).
    pub label: &'static str,
    /// Items in the region.
    pub n_items: usize,
    /// Items per chunk (the grain size).
    pub grain: usize,
    /// Chunks the region was split into (1 for inline execution).
    pub n_chunks: usize,
    /// Parallelism target when the region was submitted.
    pub threads: usize,
    /// Executed inline on the caller (single-thread limit, too few chunks,
    /// or a cost hint below the grain-size cutoff) — never enqueued at all.
    pub inline: bool,
    /// Every chunk ran on the submitting thread. True for all `inline`
    /// records, and also for *enqueued* regions that the caller drained
    /// before any worker arrived: those are de-facto serial work, and
    /// attribution must not bill their wall time as parallel setup.
    /// Unlike `inline`, this flag is timing-dependent (it reports what
    /// actually happened, not what was requested).
    pub caller_only: bool,
    /// Submitted from inside another region's chunk (its wall time is part
    /// of the parent's busy time — attribution must skip it).
    pub nested: bool,
    /// Caller-side cost from region entry to enqueue+wakeup, ns.
    pub setup_ns: u64,
    /// Enqueue to first chunk claim anywhere, ns.
    pub queue_wait_ns: u64,
    /// Region entry to fully drained, ns (the caller's view).
    pub wall_ns: u64,
    /// Per-participating-thread busy time and chunk counts.
    pub lanes: Vec<LaneStats>,
}

impl RegionRecord {
    /// Total thread-time spent executing chunks.
    pub fn total_busy_ns(&self) -> u64 {
        self.lanes.iter().map(|l| l.busy_ns).sum()
    }

    /// Longest single lane (the region cannot finish before it).
    pub fn max_busy_ns(&self) -> u64 {
        self.lanes.iter().map(|l| l.busy_ns).max().unwrap_or(0)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<RegionRecord>> = Mutex::new(Vec::new());
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LANE: Cell<u64> = const { Cell::new(u64::MAX) };
    static LABEL: Cell<&'static str> = const { Cell::new("other") };
    static CHUNK_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Is region recording armed?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arm or disarm region recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drain every record accumulated so far.
///
/// Aggregation hygiene: `queue_wait_ns` uses a `u64::MAX` "never claimed"
/// sentinel inside the pool. The pool clamps it when it builds a record,
/// but any sentinel that slips through (e.g. a region drained entirely by
/// the caller before workers ever saw it, or a re-armed shell recorded
/// mid-reset) is clamped to zero here so it can never dominate summed
/// statistics.
pub fn take_records() -> Vec<RegionRecord> {
    let mut records = std::mem::take(&mut *SINK.lock());
    for r in &mut records {
        if r.queue_wait_ns == u64::MAX {
            r.queue_wait_ns = 0;
        }
    }
    records
}

/// This thread's stable lane ordinal (assigned on first use).
pub fn lane_id() -> u64 {
    LANE.with(|l| {
        if l.get() == u64::MAX {
            l.set(NEXT_LANE.fetch_add(1, Ordering::Relaxed));
        }
        l.get()
    })
}

/// The phase label regions submitted from this thread inherit.
pub fn current_label() -> &'static str {
    LABEL.with(|l| l.get())
}

/// RAII phase label for the current thread: regions submitted (and GEMM
/// flops recorded) while the guard lives are attributed to `label`;
/// the previous label is restored on drop, so phases nest naturally.
#[must_use = "the label reverts when the guard drops"]
pub struct LabelGuard {
    prev: &'static str,
}

impl LabelGuard {
    /// Set the current thread's label for the guard's lifetime.
    pub fn set(label: &'static str) -> LabelGuard {
        LabelGuard {
            prev: LABEL.with(|l| l.replace(label)),
        }
    }
}

impl Drop for LabelGuard {
    fn drop(&mut self) {
        LABEL.with(|l| l.set(self.prev));
    }
}

/// Is the current thread inside a region chunk right now? (Only maintained
/// while telemetry is enabled; used to flag nested submissions.)
pub(crate) fn in_chunk() -> bool {
    CHUNK_DEPTH.with(|d| d.get()) > 0
}

/// RAII chunk-depth marker (unwind-safe: panics in a chunk still restore).
pub(crate) struct ChunkGuard(());

pub(crate) fn enter_chunk() -> ChunkGuard {
    CHUNK_DEPTH.with(|d| d.set(d.get() + 1));
    ChunkGuard(())
}

impl Drop for ChunkGuard {
    fn drop(&mut self) {
        CHUNK_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Sink a completed record.
pub(crate) fn record(rec: RegionRecord) {
    SINK.lock().push(rec);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_guard_nests_and_restores() {
        assert_eq!(current_label(), "other");
        {
            let _a = LabelGuard::set("rho");
            assert_eq!(current_label(), "rho");
            {
                let _b = LabelGuard::set("sumup");
                assert_eq!(current_label(), "sumup");
            }
            assert_eq!(current_label(), "rho");
        }
        assert_eq!(current_label(), "other");
    }

    #[test]
    fn lane_ids_are_stable_per_thread() {
        let a = lane_id();
        assert_eq!(a, lane_id());
        let other = std::thread::spawn(lane_id).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn record_helpers() {
        let r = RegionRecord {
            label: "x",
            n_items: 10,
            grain: 5,
            n_chunks: 2,
            threads: 2,
            inline: false,
            caller_only: false,
            nested: false,
            setup_ns: 10,
            queue_wait_ns: 5,
            wall_ns: 100,
            lanes: vec![
                LaneStats {
                    lane: 0,
                    busy_ns: 80,
                    chunks: 1,
                },
                LaneStats {
                    lane: 1,
                    busy_ns: 20,
                    chunks: 1,
                },
            ],
        };
        assert_eq!(r.total_busy_ns(), 100);
        assert_eq!(r.max_busy_ns(), 80);
    }

    #[test]
    fn take_records_clamps_unclaimed_queue_wait_sentinel() {
        let sentinel = RegionRecord {
            label: "unclaimed",
            n_items: 8,
            grain: 4,
            n_chunks: 2,
            threads: 2,
            inline: false,
            caller_only: true,
            nested: false,
            setup_ns: 10,
            queue_wait_ns: u64::MAX,
            wall_ns: 100,
            lanes: Vec::new(),
        };
        record(sentinel);
        let drained: Vec<_> = take_records()
            .into_iter()
            .filter(|r| r.label == "unclaimed")
            .collect();
        assert_eq!(drained.len(), 1);
        assert_eq!(
            drained[0].queue_wait_ns, 0,
            "u64::MAX first-claim sentinel must not leak into aggregation"
        );
    }
}
