//! # qp-par
//!
//! The workspace's real multi-threaded execution substrate: a persistent
//! pool of `std::thread` workers that self-schedule *chunks* of a parallel
//! region off a shared queue (dynamic chunk scheduling — the lock-free
//! cousin of work-stealing for indexed loops, which is all a data-parallel
//! DFPT code needs). The `rayon` shim forwards its whole `par_iter` surface
//! here, so every phase kernel, NDRange launch and dense-linalg loop in the
//! workspace now genuinely runs on multiple cores.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results must be bit-identical between
//!    `QP_THREADS=1` and `QP_THREADS=N`. Every primitive therefore maps
//!    item `i` to output slot `i` (no racing reductions); whatever summing
//!    a caller does over the returned vector happens on the calling thread
//!    in fixed index order. `qp-resil`'s bit-exact recovery guarantee rides
//!    on this.
//! 2. **Trace attribution.** Workers propagate the *submitting* thread's
//!    `qp-trace` rank tag ([`qp_trace::set_thread_rank`]) before touching a
//!    region, so spans and metrics recorded from pool workers land on the
//!    correct simulated-rank timeline.
//! 3. **Nested safety.** A worker that opens a nested region participates
//!    in executing it (callers always help drain their own region), so
//!    nesting cannot deadlock: any claimed chunk is actively being executed
//!    by some thread, and threads only wait when they hold no chunk.
//!
//! Sizing: `QP_THREADS` if set, else [`std::thread::available_parallelism`].
//! Tests can override at runtime with [`set_active_threads`] (workers above
//! the limit park; missing workers spawn on demand).

pub mod pool;
pub mod telemetry;

pub use pool::{
    active_threads, for_each_index, for_each_index_hinted, inline_cutoff_ns, join,
    region_allocations, run_region, run_region_hinted, set_active_threads, ThreadLease,
};
pub use telemetry::{LabelGuard, LaneStats, RegionRecord};

use std::mem::{ManuallyDrop, MaybeUninit};

/// Raw pointer wrapper asserting cross-thread safety for the disjoint-index
/// access pattern used below (each index is read/written by exactly one
/// chunk executor).
struct SharedPtr<T>(*mut T);
unsafe impl<T> Send for SharedPtr<T> {}
unsafe impl<T> Sync for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the raw pointer field itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Parallel map preserving order: `out[i] = f(items[i])`.
///
/// Deterministic by construction — the index→slot mapping is fixed, so the
/// result is identical for any thread count (including the inline
/// single-thread path). If `f` panics the panic is propagated on the caller
/// after the region drains; items in chunks that never ran are leaked (not
/// dropped), matching the "abort the computation" semantics of a poisoned
/// parallel loop.
pub fn map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if active_threads() <= 1 || n == 1 {
        return items.into_iter().map(f).collect();
    }
    // Items are moved out index-by-index by exactly one executor; the
    // vector's own drop must not run (its elements are consumed).
    let src = ManuallyDrop::new(items);
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: each slot is written exactly once before being read below
    // (uninitialized slots are only possible on the panic path, which never
    // reaches the `assume init` transmute).
    unsafe { out.set_len(n) };
    let src_ptr = SharedPtr(src.as_ptr() as *mut T);
    let out_ptr = SharedPtr(out.as_mut_ptr());
    for_each_index(n, |i| {
        // SAFETY: `i` is claimed by exactly one chunk executor (disjoint
        // fetch_add ranges), so this read/write pair races with nothing.
        unsafe {
            let item = src_ptr.get().add(i).read();
            out_ptr.get().add(i).write(MaybeUninit::new(f(item)));
        }
    });
    // SAFETY: for_each_index returned without panicking, so every index ran
    // and every slot is initialized.
    unsafe { std::mem::transmute::<Vec<MaybeUninit<R>>, Vec<R>>(out) }
}

/// Parallel for-each over owned items (order of side effects unspecified;
/// the body must write to disjoint state, which the borrow checker enforces
/// for everything reached through the items themselves).
pub fn for_each_vec<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    if active_threads() <= 1 || n == 1 {
        items.into_iter().for_each(f);
        return;
    }
    let src = ManuallyDrop::new(items);
    let src_ptr = SharedPtr(src.as_ptr() as *mut T);
    for_each_index(n, |i| {
        // SAFETY: disjoint single reader per index, as in `map_vec`.
        unsafe { f(src_ptr.get().add(i).read()) }
    });
}

/// [`map_vec`] with a per-item cost estimate (ns): sub-threshold maps run
/// inline via the pool's grain-size heuristic instead of paying region
/// setup.
pub fn map_vec_hinted<T, R, F>(items: Vec<T>, est_item_ns: u64, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let est = est_item_ns.saturating_mul(n as u64);
    if active_threads() <= 1 || n == 1 || est < inline_cutoff_ns() {
        return items.into_iter().map(f).collect();
    }
    map_vec(items, f)
}

/// Fill `out[i] = f(i)` for every index, in parallel when the estimated
/// cost justifies a region. Deterministic: index → slot, identical at any
/// thread count. `Copy` bound keeps the overwrite drop-free.
pub fn fill_slice_hinted<R, F>(out: &mut [R], est_item_ns: u64, f: F)
where
    R: Copy + Send,
    F: Fn(usize) -> R + Sync,
{
    let n = out.len();
    if n == 0 {
        return;
    }
    let out_ptr = SharedPtr(out.as_mut_ptr());
    pool::run_region_hinted(n, est_item_ns, &|start, end| {
        for i in start..end {
            // SAFETY: `i` is claimed by exactly one chunk executor, so this
            // write races with nothing; `R: Copy` means no drop is skipped.
            unsafe { out_ptr.get().add(i).write(f(i)) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_vec_preserves_order() {
        let _g = pool::ThreadLease::at_least(4);
        let v: Vec<usize> = (0..1000).collect();
        let out = map_vec(v, |x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_vec_moves_non_copy_items() {
        let _g = pool::ThreadLease::at_least(4);
        let v: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let out = map_vec(v, |s| s.len());
        assert_eq!(out.len(), 100);
        assert_eq!(out[7], 2);
        assert_eq!(out[42], 3);
    }

    #[test]
    fn for_each_vec_visits_every_item_once() {
        let _g = pool::ThreadLease::at_least(4);
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        for_each_vec((1..=100).collect::<Vec<usize>>(), |x| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let compute = || {
            let v: Vec<f64> = (0..257).map(|i| i as f64 * 0.1).collect();
            map_vec(v, |x| (x.sin() * x.cos()).exp())
        };
        let one = {
            let _g = pool::ThreadLease::exactly(1);
            compute()
        };
        let eight = {
            let _g = pool::ThreadLease::exactly(8);
            compute()
        };
        assert!(one.iter().zip(eight.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn fill_slice_hinted_is_bit_identical_for_any_cost_hint() {
        let _g = pool::ThreadLease::at_least(4);
        let expect: Vec<f64> = (0..513).map(|i| (i as f64).sqrt().sin()).collect();
        // 0 and 1 take the inline path, the huge hint takes the region path;
        // both must produce the same bits in the same slots.
        for est in [0u64, 1, 1_000_000] {
            let mut out = vec![0.0f64; 513];
            fill_slice_hinted(&mut out, est, |i| (i as f64).sqrt().sin());
            assert!(
                out.iter()
                    .zip(expect.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "hint {est} changed results"
            );
        }
    }

    #[test]
    fn map_vec_hinted_preserves_order() {
        let _g = pool::ThreadLease::at_least(4);
        for est in [0u64, 1_000_000] {
            let v: Vec<usize> = (0..500).collect();
            let out = map_vec_hinted(v, est, |x| x * 7);
            assert_eq!(out, (0..500).map(|x| x * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_regions_complete() {
        let _g = pool::ThreadLease::at_least(4);
        let out = map_vec((0..8).collect::<Vec<usize>>(), |i| {
            map_vec((0..8).collect::<Vec<usize>>(), move |j| i * 8 + j)
                .into_iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let _g = pool::ThreadLease::at_least(4);
        let r = std::panic::catch_unwind(|| {
            for_each_vec((0..64).collect::<Vec<usize>>(), |i| {
                if i == 33 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
        // The pool must stay usable after a panicked region.
        let ok = map_vec(vec![1, 2, 3], |x| x + 1);
        assert_eq!(ok, vec![2, 3, 4]);
    }
}
