//! Operator-matrix assembly on the integration grid.
//!
//! All matrices are grid quadratures over the batch tables:
//!
//! * overlap       `S_μν  = Σ_p w_p χ_μ(p) χ_ν(p)`
//! * kinetic       `T_μν  = ½ Σ_p w_p ∇χ_μ(p)·∇χ_ν(p)`  (by parts)
//! * potential     `V_μν  = Σ_p w_p v(p) χ_μ(p) χ_ν(p)` for any local `v`
//! * dipole        `D^I_μν = Σ_p w_p r_I(p) χ_μ(p) χ_ν(p)`
//!
//! The same `accumulate_potential` path assembles both the ground-state
//! Hamiltonian and the DFPT response Hamiltonian `H¹` (phase **H**).

use crate::system::System;
use qp_linalg::DMatrix;

/// Cost hint (ns) for assembling one batch block: the triangular update is
/// `np·nf²/2` multiply-adds; assume a few per ns so tiny systems run the
/// region inline while bench-scale batches fan out.
fn batch_block_est(system: &System) -> u64 {
    let avg_np = system.n_points() / system.batches.len().max(1);
    let nb = system.n_basis();
    ((avg_np * nb * nb) / 4).max(1) as u64
}

/// Assemble the overlap matrix.
pub fn overlap(system: &System) -> DMatrix {
    weighted_product(system, |_| 1.0)
}

/// Assemble a local-potential matrix for `v` given *at grid points*
/// (slice parallel to `system.grid.points`).
pub fn potential_matrix(system: &System, v: &[f64]) -> DMatrix {
    assert_eq!(v.len(), system.n_points());
    weighted_product(system, |gi| v[gi])
}

/// Assemble the dipole matrix for Cartesian direction `dir`
/// (`D_μν = ∫ χ_μ r_dir χ_ν`).
pub fn dipole_matrix(system: &System, dir: usize) -> DMatrix {
    let coords: Vec<f64> = system.grid.points.iter().map(|p| p.position[dir]).collect();
    potential_matrix(system, &coords)
}

/// Shared quadrature core: `M_μν = Σ_p w_p f(p) χ_μ(p) χ_ν(p)`.
///
/// Batch blocks assemble in parallel (each worker pulls its batch table
/// from the basis cache); the global merge stays on the calling thread in
/// batch order, keeping the reduction deterministic.
fn weighted_product(system: &System, f: impl Fn(usize) -> f64 + Sync) -> DMatrix {
    let nb = system.n_basis();
    let partials: Vec<(std::sync::Arc<crate::system::BatchBasisTable>, DMatrix)> =
        qp_par::map_vec_hinted(
            (0..system.batches.len()).collect::<Vec<usize>>(),
            batch_block_est(system),
            |bid| {
                let batch = &system.batches[bid];
                let table = system.table(batch.id);
                let nf = table.fn_indices.len();
                let mut block = DMatrix::zeros(nf, nf);
                for (pi, pt) in batch.points.iter().enumerate() {
                    let w = system.grid.points[pt.grid_index as usize].weight
                        * f(pt.grid_index as usize);
                    if w == 0.0 {
                        continue;
                    }
                    let row = &table.values[pi * nf..(pi + 1) * nf];
                    for a in 0..nf {
                        let va = row[a];
                        if va == 0.0 {
                            continue;
                        }
                        let wa = w * va;
                        for b in a..nf {
                            block[(a, b)] += wa * row[b];
                        }
                    }
                }
                (table, block)
            },
        );

    let mut m = DMatrix::zeros(nb, nb);
    for (table, block) in partials.iter() {
        for (a, &fa) in table.fn_indices.iter().enumerate() {
            for (b, &fb) in table.fn_indices.iter().enumerate().skip(a) {
                m[(fa, fb)] += block[(a, b)];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..nb {
        for j in (i + 1)..nb {
            m[(j, i)] = m[(i, j)];
        }
    }
    m
}

/// Assemble the kinetic-energy matrix `T_μν = ½ ∫ ∇χ_μ·∇χ_ν`.
pub fn kinetic(system: &System) -> DMatrix {
    let nb = system.n_basis();
    let partials: Vec<(std::sync::Arc<crate::system::BatchBasisTable>, DMatrix)> =
        qp_par::map_vec_hinted(
            (0..system.batches.len()).collect::<Vec<usize>>(),
            batch_block_est(system),
            |bid| {
                let batch = &system.batches[bid];
                let table = system.table(batch.id);
                let nf = table.fn_indices.len();
                let mut block = DMatrix::zeros(nf, nf);
                for (pi, pt) in batch.points.iter().enumerate() {
                    let w = 0.5 * system.grid.points[pt.grid_index as usize].weight;
                    for a in 0..nf {
                        let ga = table.gradient(pi, a);
                        if ga == [0.0; 3] {
                            continue;
                        }
                        for b in a..nf {
                            let gb = table.gradient(pi, b);
                            block[(a, b)] += w * (ga[0] * gb[0] + ga[1] * gb[1] + ga[2] * gb[2]);
                        }
                    }
                }
                (table, block)
            },
        );

    let mut m = DMatrix::zeros(nb, nb);
    for (table, block) in partials.iter() {
        for (a, &fa) in table.fn_indices.iter().enumerate() {
            for (b, &fb) in table.fn_indices.iter().enumerate().skip(a) {
                m[(fa, fb)] += block[(a, b)];
            }
        }
    }
    for i in 0..nb {
        for j in (i + 1)..nb {
            m[(j, i)] = m[(i, j)];
        }
    }
    m
}

/// The external (nuclear-attraction) potential at every grid point:
/// `v_ext(p) = −Σ_I Z_I / |p − R_I|`.
pub fn external_potential(system: &System) -> Vec<f64> {
    let mut out = vec![0.0; system.n_points()];
    let est = (system.structure.len() * 12).max(1) as u64;
    qp_par::fill_slice_hinted(&mut out, est, |gi| {
        let p = &system.grid.points[gi];
        let mut v = 0.0;
        for atom in &system.structure.atoms {
            let d = qp_linalg::vecops::dist3(p.position, atom.position);
            v -= atom.element.z() as f64 / d.max(1e-10);
        }
        v
    });
    out
}

/// Closed-shell density matrix from occupied orbitals:
/// `P_μν = Σ_i f_i C_μi C_νi`, `f_i = 2` (Eq. 6).
pub fn density_matrix(orbitals: &DMatrix, n_occ: usize) -> DMatrix {
    let occ = vec![2.0; n_occ];
    density_matrix_occ(orbitals, &occ)
}

/// Density matrix with explicit (possibly fractional) occupations
/// (Eq. 6 with Fermi–Dirac `f_i`, Eq. 3).
///
/// Computed as the Level-3 product `P = A·Bᵀ` with `A_μa = f_a C_μa` and
/// `B_νa = C_νa` over the occupied (f ≠ 0) columns, so the DM build runs on
/// the blocked parallel GEMM.
pub fn density_matrix_occ(orbitals: &DMatrix, occupations: &[f64]) -> DMatrix {
    let nb = orbitals.rows();
    let occ_idx: Vec<usize> = occupations
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f != 0.0)
        .map(|(i, _)| i)
        .collect();
    if occ_idx.is_empty() {
        return DMatrix::zeros(nb, nb);
    }
    let m = occ_idx.len();
    let scaled = DMatrix::from_fn(nb, m, |mu, a| {
        occupations[occ_idx[a]] * orbitals[(mu, occ_idx[a])]
    });
    let plain = DMatrix::from_fn(m, nb, |a, nu| orbitals[(nu, occ_idx[a])]);
    scaled.par_matmul(&plain).expect("conforming dims")
}

/// Fermi–Dirac occupations (Eq. 3): `f_i = 2/(1 + exp((ε_i − μ)/kT))` with
/// the chemical potential `μ` bisected so `Σ f_i = n_electrons`.
pub fn fermi_occupations(eigenvalues: &[f64], n_electrons: f64, kt: f64) -> Vec<f64> {
    assert!(kt > 0.0);
    let f_of = |mu: f64| -> Vec<f64> {
        eigenvalues
            .iter()
            .map(|&e| 2.0 / (1.0 + ((e - mu) / kt).clamp(-500.0, 500.0).exp()))
            .collect()
    };
    let total = |mu: f64| f_of(mu).iter().sum::<f64>();
    let mut lo = eigenvalues.first().copied().unwrap_or(0.0) - 10.0;
    let mut hi = eigenvalues.last().copied().unwrap_or(0.0) + 10.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total(mid) < n_electrons {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    f_of(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;

    fn sys() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 30;
        gs.max_angular = 38;
        System::build(water(), BasisSettings::Light, &gs, 150, 2)
    }

    #[test]
    fn overlap_diagonal_near_one() {
        let s = sys();
        let ov = overlap(&s);
        for i in 0..s.n_basis() {
            assert!(
                (ov[(i, i)] - 1.0).abs() < 0.05,
                "S[{i},{i}] = {}",
                ov[(i, i)]
            );
        }
    }

    #[test]
    fn overlap_symmetric_with_bounded_offdiagonals() {
        let s = sys();
        let ov = overlap(&s);
        for i in 0..s.n_basis() {
            for j in 0..s.n_basis() {
                assert_eq!(ov[(i, j)], ov[(j, i)]);
                // Cauchy-Schwarz bounds |S_ij| by 1 analytically; allow the
                // ~2% quadrature error of the 26-point angular grids.
                assert!(ov[(i, j)].abs() < 1.05, "S[{i},{j}] = {}", ov[(i, j)]);
            }
        }
        // S must remain positive definite despite quadrature error.
        assert!(qp_linalg::Cholesky::new(&ov).is_ok());
    }

    #[test]
    fn kinetic_is_positive_definite_symmetric() {
        let s = sys();
        let t = kinetic(&s);
        for i in 0..s.n_basis() {
            assert!(t[(i, i)] > 0.0, "T[{i},{i}] = {}", t[(i, i)]);
        }
        // Positive definite: Cholesky succeeds.
        assert!(qp_linalg::Cholesky::new(&t).is_ok());
    }

    #[test]
    fn external_potential_is_negative_everywhere() {
        let s = sys();
        let v = external_potential(&s);
        assert!(v.iter().all(|&x| x < 0.0));
    }

    #[test]
    fn dipole_matrices_are_symmetric() {
        let s = sys();
        for dir in 0..3 {
            let d = dipole_matrix(&s, dir);
            assert!(
                d.max_abs_diff(&d.transpose()) < 1e-12,
                "dipole {dir} asymmetric"
            );
        }
    }

    #[test]
    fn density_matrix_trace_counts_electrons() {
        // Tr[P S] = N_electrons for S-orthonormal orbitals.
        let s = sys();
        let ov = overlap(&s);
        let t = kinetic(&s);
        // Use eigenvectors of (T, S) as a stand-in orthonormal set.
        let dec = qp_linalg::generalized_symmetric_eigen(&t, &ov).unwrap();
        let p = density_matrix(&dec.eigenvectors, s.n_occupied());
        let tr_ps = p.trace_product(&ov).unwrap();
        assert!(
            (tr_ps - s.n_electrons() as f64).abs() < 1e-8,
            "Tr[PS] = {tr_ps}"
        );
    }

    #[test]
    fn potential_matrix_of_one_is_overlap() {
        let s = sys();
        let ones = vec![1.0; s.n_points()];
        let v = potential_matrix(&s, &ones);
        let ov = overlap(&s);
        assert!(v.max_abs_diff(&ov) < 1e-12);
    }
}

#[cfg(test)]
mod fermi_tests {
    use super::*;

    #[test]
    fn fermi_conserves_electron_count() {
        let eigs = vec![-2.0, -1.0, -0.5, -0.45, 0.3, 1.0];
        for kt in [0.001, 0.01, 0.1] {
            let f = fermi_occupations(&eigs, 7.0, kt);
            let total: f64 = f.iter().sum();
            assert!((total - 7.0).abs() < 1e-9, "kT = {kt}: Σf = {total}");
            assert!(f.iter().all(|&x| (0.0..=2.0).contains(&x)));
            // Occupations decrease with energy.
            for w in f.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn cold_limit_reproduces_aufbau() {
        let eigs = vec![-2.0, -1.0, 0.5, 1.0];
        let f = fermi_occupations(&eigs, 4.0, 1e-6);
        assert!((f[0] - 2.0).abs() < 1e-9);
        assert!((f[1] - 2.0).abs() < 1e-9);
        assert!(f[2].abs() < 1e-9);
        assert!(f[3].abs() < 1e-9);
    }

    #[test]
    fn degenerate_frontier_shared_equally() {
        // Two degenerate levels sharing two electrons: f = 1 each.
        let eigs = vec![-2.0, -0.5, -0.5, 1.0];
        let f = fermi_occupations(&eigs, 4.0, 0.01);
        assert!((f[1] - 1.0).abs() < 1e-6);
        assert!((f[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn density_matrix_occ_matches_integer_path() {
        let c = DMatrix::from_fn(5, 5, |i, j| ((i * 5 + j) as f64 * 0.3).sin());
        let p_int = density_matrix(&c, 2);
        let p_occ = density_matrix_occ(&c, &[2.0, 2.0, 0.0, 0.0, 0.0]);
        assert!(p_int.max_abs_diff(&p_occ) < 1e-15);
    }
}
