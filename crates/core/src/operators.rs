//! Operator-matrix assembly on the integration grid.
//!
//! All matrices are grid quadratures over the batch tables:
//!
//! * overlap       `S_μν  = Σ_p w_p χ_μ(p) χ_ν(p)`
//! * kinetic       `T_μν  = ½ Σ_p w_p ∇χ_μ(p)·∇χ_ν(p)`  (by parts)
//! * potential     `V_μν  = Σ_p w_p v(p) χ_μ(p) χ_ν(p)` for any local `v`
//! * dipole        `D^I_μν = Σ_p w_p r_I(p) χ_μ(p) χ_ν(p)`
//!
//! The same `accumulate_potential` path assembles both the ground-state
//! Hamiltonian and the DFPT response Hamiltonian `H¹` (phase **H**).

use crate::screening::ScreenPlan;
use crate::system::{BatchBasisTable, System};
use qp_grid::Batch;
use qp_linalg::{BlockSparseMatrix, DMatrix};
use std::sync::Arc;

/// Cost hint (ns) for assembling one batch block: the triangular update is
/// `np·nf²/2` multiply-adds; assume a few per ns so tiny systems run the
/// region inline while bench-scale batches fan out.
fn batch_block_est(system: &System) -> u64 {
    let avg_np = system.n_points() / system.batches.len().max(1);
    let nb = system.n_basis();
    ((avg_np * nb * nb) / 4).max(1) as u64
}

/// Assemble the overlap matrix.
pub fn overlap(system: &System) -> DMatrix {
    weighted_product(system, |_| 1.0)
}

/// Assemble a local-potential matrix for `v` given *at grid points*
/// (slice parallel to `system.grid.points`).
pub fn potential_matrix(system: &System, v: &[f64]) -> DMatrix {
    assert_eq!(v.len(), system.n_points());
    weighted_product(system, |gi| v[gi])
}

/// Assemble the dipole matrix for Cartesian direction `dir`
/// (`D_μν = ∫ χ_μ r_dir χ_ν`).
pub fn dipole_matrix(system: &System, dir: usize) -> DMatrix {
    let coords: Vec<f64> = system.grid.points.iter().map(|p| p.position[dir]).collect();
    potential_matrix(system, &coords)
}

/// Block-sparse overlap on the screening plan's pair support
/// (`None` when the system has no plan).  `to_dense()` of the result is
/// bit-identical to [`overlap`] on an unscreened system.
pub fn overlap_blocks(system: &System) -> Option<BlockSparseMatrix> {
    weighted_product_blocks(system, |_| 1.0)
}

/// Block-sparse local-potential matrix (see [`potential_matrix`]).
pub fn potential_matrix_blocks(system: &System, v: &[f64]) -> Option<BlockSparseMatrix> {
    assert_eq!(v.len(), system.n_points());
    weighted_product_blocks(system, |gi| v[gi])
}

/// Block-sparse kinetic matrix (see [`kinetic`]).
pub fn kinetic_blocks(system: &System) -> Option<BlockSparseMatrix> {
    let plan = system.screen()?;
    let partials = assemble_partials(system, |batch, table| kinetic_block(system, batch, table));
    Some(merge_blocks(&partials, plan))
}

/// Per-batch contributions: each worker pulls its batch table from the
/// basis cache and reduces the batch's points into one `nf × nf` upper
/// triangle.  The merge (dense or block-sparse) stays on the calling
/// thread in batch order, keeping the reduction deterministic.
fn assemble_partials(
    system: &System,
    per_batch: impl Fn(&Batch, &BatchBasisTable) -> DMatrix + Sync,
) -> Vec<(Arc<BatchBasisTable>, DMatrix)> {
    qp_par::map_vec_hinted(
        (0..system.batches.len()).collect::<Vec<usize>>(),
        batch_block_est(system),
        |bid| {
            let batch = &system.batches[bid];
            let table = system.table(batch.id);
            let block = per_batch(batch, &table);
            (table, block)
        },
    )
}

/// One batch's quadrature block `B_ab = Σ_p w_p f(p) χ_a(p) χ_b(p)`
/// (upper triangle).
fn weighted_block(
    system: &System,
    batch: &Batch,
    table: &BatchBasisTable,
    f: &(impl Fn(usize) -> f64 + Sync),
) -> DMatrix {
    let nf = table.fn_indices.len();
    let mut block = DMatrix::zeros(nf, nf);
    for (pi, pt) in batch.points.iter().enumerate() {
        let w = system.grid.points[pt.grid_index as usize].weight * f(pt.grid_index as usize);
        if w == 0.0 {
            continue;
        }
        let row = &table.values[pi * nf..(pi + 1) * nf];
        for a in 0..nf {
            let va = row[a];
            if va == 0.0 {
                continue;
            }
            let wa = w * va;
            for b in a..nf {
                block[(a, b)] += wa * row[b];
            }
        }
    }
    block
}

/// One batch's kinetic block `B_ab = ½ Σ_p w_p ∇χ_a(p)·∇χ_b(p)`.
fn kinetic_block(system: &System, batch: &Batch, table: &BatchBasisTable) -> DMatrix {
    let nf = table.fn_indices.len();
    let mut block = DMatrix::zeros(nf, nf);
    for (pi, pt) in batch.points.iter().enumerate() {
        let w = 0.5 * system.grid.points[pt.grid_index as usize].weight;
        for a in 0..nf {
            let ga = table.gradient(pi, a);
            if ga == [0.0; 3] {
                continue;
            }
            for b in a..nf {
                let gb = table.gradient(pi, b);
                block[(a, b)] += w * (ga[0] * gb[0] + ga[1] * gb[1] + ga[2] * gb[2]);
            }
        }
    }
    block
}

/// Dense merge: scatter every batch triangle into the global matrix in
/// batch order, then mirror the upper triangle.
fn merge_dense(partials: &[(Arc<BatchBasisTable>, DMatrix)], nb: usize) -> DMatrix {
    let mut m = DMatrix::zeros(nb, nb);
    for (table, block) in partials.iter() {
        for (a, &fa) in table.fn_indices.iter().enumerate() {
            for (b, &fb) in table.fn_indices.iter().enumerate().skip(a) {
                m[(fa, fb)] += block[(a, b)];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..nb {
        for j in (i + 1)..nb {
            m[(j, i)] = m[(i, j)];
        }
    }
    m
}

/// Screened merge: identical batch/entry order to [`merge_dense`], but
/// contributions landing outside the neighbor-pair support are skipped.
/// Those contributions are *exactly* `±0.0` (both functions would need
/// support at the same point, impossible for non-overlapping cutoff
/// spheres), and adding `±0.0` to a `+0.0`-seeded accumulator never
/// changes its bits — so `to_dense()` of the result reproduces the dense
/// merge bit-for-bit.
fn merge_blocks(
    partials: &[(Arc<BatchBasisTable>, DMatrix)],
    plan: &ScreenPlan,
) -> BlockSparseMatrix {
    let mut m = plan.empty_blocks();
    for (table, block) in partials.iter() {
        // One pair lookup per atom-run pair, not per element: the sorted
        // atom-major index list splits into contiguous single-atom runs,
        // and every (fa, fb) inside a run pair lands in the same block.
        // Within a batch each (fa, fb) is scattered at most once, so
        // regrouping the scatter order is bit-invisible; across batches
        // the dense merge's batch order is preserved by the outer loop.
        let runs = atom_runs(plan, &table.fn_indices);
        for (ri, &(bi, sa, ea)) in runs.iter().enumerate() {
            let ro = plan.partition.offset(bi);
            for &(bj, sb, eb) in &runs[ri..] {
                let Some(pair) = m.find(bi, bj) else { continue };
                let (co, cs) = (plan.partition.offset(bj), plan.partition.size(bj));
                let dst = m.block_mut(pair);
                for a in sa..ea {
                    let row = (table.fn_indices[a] - ro) * cs;
                    let b0 = if bi == bj { a } else { sb };
                    for b in b0..eb {
                        dst[row + (table.fn_indices[b] - co)] += block[(a, b)];
                    }
                }
            }
        }
    }
    mirror_blocks(&mut m);
    m
}

/// Contiguous single-atom runs `(atom, start, end)` of a batch's sorted
/// atom-major function-index list.
fn atom_runs(plan: &ScreenPlan, fn_indices: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut runs = Vec::new();
    let mut s = 0;
    while s < fn_indices.len() {
        let atom = plan.fn_atom[fn_indices[s]] as usize;
        let mut e = s + 1;
        while e < fn_indices.len() && plan.fn_atom[fn_indices[e]] as usize == atom {
            e += 1;
        }
        runs.push((atom, s, e));
        s = e;
    }
    runs
}

/// Mirror the (globally) upper-triangular block contents: exact copies,
/// matching the dense mirror loop.  Atom-major function order means a
/// stored pair `(I, J)` with `I < J` sits entirely above the diagonal.
fn mirror_blocks(m: &mut BlockSparseMatrix) {
    let nblocks = m.partition().n_blocks();
    for i in 0..nblocks {
        let rs = m.partition().size(i);
        // Diagonal block: mirror within.
        if let Some(pair) = m.find(i, i) {
            let blk = m.block_mut(pair);
            for r in 0..rs {
                for c in (r + 1)..rs {
                    blk[c * rs + r] = blk[r * rs + c];
                }
            }
        }
        for j in (i + 1)..nblocks {
            let Some(upper) = m.find(i, j) else { continue };
            let lower = m.find(j, i).expect("neighbor list is symmetric");
            let cs = m.partition().size(j);
            let src = m.block(upper).to_vec();
            let dst = m.block_mut(lower);
            for r in 0..rs {
                for c in 0..cs {
                    dst[c * rs + r] = src[r * cs + c];
                }
            }
        }
    }
}

/// Shared quadrature core: `M_μν = Σ_p w_p f(p) χ_μ(p) χ_ν(p)`.
///
/// With a screening plan active the batch triangles scatter into the
/// block-sparse support and densify at the end; without one they merge
/// densely.  Both routes produce identical bytes (see [`merge_blocks`]).
fn weighted_product(system: &System, f: impl Fn(usize) -> f64 + Sync) -> DMatrix {
    let partials = assemble_partials(system, |batch, table| {
        weighted_block(system, batch, table, &f)
    });
    match system.screen() {
        Some(plan) => merge_blocks(&partials, plan).to_dense(),
        None => merge_dense(&partials, system.n_basis()),
    }
}

fn weighted_product_blocks(
    system: &System,
    f: impl Fn(usize) -> f64 + Sync,
) -> Option<BlockSparseMatrix> {
    let plan = system.screen()?;
    let partials = assemble_partials(system, |batch, table| {
        weighted_block(system, batch, table, &f)
    });
    Some(merge_blocks(&partials, plan))
}

/// Assemble the kinetic-energy matrix `T_μν = ½ ∫ ∇χ_μ·∇χ_ν`.
pub fn kinetic(system: &System) -> DMatrix {
    let partials = assemble_partials(system, |batch, table| kinetic_block(system, batch, table));
    match system.screen() {
        Some(plan) => merge_blocks(&partials, plan).to_dense(),
        None => merge_dense(&partials, system.n_basis()),
    }
}

/// Atom count below which the block-sparse DM build is never preferred:
/// the packing overhead beats the flop savings until the pair support is
/// both large and sparse (the small-n regression visible in
/// BENCH_perf.json — screened `dm_s` 0.005157 vs dense 0.000027 at 16
/// monomers).
pub const DM_BLOCKS_MIN_ATOMS: usize = 256;

/// Pair-fill ceiling for preferring the block-sparse DM build: above it
/// the screened contraction does almost all the dense flops plus the
/// per-pair packing.
pub const DM_BLOCKS_MAX_FILL: f64 = 0.125;

/// Whether the block-sparse density-matrix build is expected to beat the
/// dense GEMM for this plan — the `--screening auto` DM routing: callers
/// (bench, serving layer) fall back to [`density_matrix_occ`] when this is
/// false, so small or compact molecules never pay the block-sparse
/// overhead. Purely a performance choice; both paths agree per the
/// bit-identity contract.
pub fn dm_blocks_preferred(plan: &ScreenPlan) -> bool {
    plan.partition.n_blocks() >= DM_BLOCKS_MIN_ATOMS && plan.fill_ratio() <= DM_BLOCKS_MAX_FILL
}

/// Screened density-matrix build on the neighbor-pair support:
/// `P_IJ = Σ_a f_a C_I,a C_J,aᵀ` evaluated only for stored pairs, with
/// locally truncated k-segments — `O(surviving (pair, k-segment) blocks)`
/// instead of the dense `O(n_basis² · n_occ)`. For localized orbitals
/// (each column supported on one atom neighbourhood) this is the
/// linear-scaling density-matrix construction of Shang et al.; for dense
/// orbitals every segment survives and the cost reverts to
/// `O(pairs · block² · n_occ)`.
///
/// The in-loop SCF density matrix stays dense (Pulay/DIIS mixes `P`
/// itself, and masking would perturb the mixing history); this build is
/// the large-polymer path where the dense product is the bottleneck.
/// Deterministic at any thread count; entries match the masked dense
/// [`density_matrix_occ`] bitwise (the k-segment truncation skips only
/// exact-`±0.0` contributions — see
/// `BlockSparseMatrix::rank_k_update_ab_screened`).
pub fn density_matrix_occ_blocks(
    plan: &ScreenPlan,
    orbitals: &DMatrix,
    occupations: &[f64],
    parallel: bool,
) -> BlockSparseMatrix {
    let nb = orbitals.rows();
    let mut m = plan.empty_blocks();
    let occ_idx: Vec<usize> = occupations
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f != 0.0)
        .map(|(i, _)| i)
        .collect();
    if occ_idx.is_empty() {
        return m;
    }
    let k = occ_idx.len();
    let scaled = DMatrix::from_fn(nb, k, |mu, a| {
        occupations[occ_idx[a]] * orbitals[(mu, occ_idx[a])]
    });
    let plain = DMatrix::from_fn(nb, k, |nu, a| orbitals[(nu, occ_idx[a])]);
    m.rank_k_update_ab_screened(&scaled, &plain, parallel)
        .expect("partition matches orbitals");
    m
}

/// [`density_matrix_occ_blocks`] for localized orbitals whose support is
/// known a priori — the genuinely linear-scaling entry point. `home[a]`
/// names the home atom of (global) orbital column `a`; the **caller
/// guarantees** `orbitals[(μ, a)] == 0.0` whenever `fn_atom[μ]` is not a
/// stored neighbour of `home[a]`. Under that contract the per-(block,
/// k-segment) activity is derived from the screening plan in
/// `O(n_occ · avg neighbours)` and the factors are packed straight from
/// `orbitals` — no `O(n_basis · n_occ)` dense factor copies and no
/// activity scan, so the whole build is `O(surviving (pair, segment)
/// blocks)`.
///
/// Bit-identical to [`density_matrix_occ_blocks`] (and hence to the
/// masked dense build): plan-derived activity is a superset of scanned
/// activity, and over-claimed all-zero segments contribute exact `+0.0`
/// per the segment lemma. A violated support contract silently drops
/// contributions — tests pin the localized probe against the dense
/// oracle.
pub fn density_matrix_occ_blocks_local(
    plan: &ScreenPlan,
    orbitals: &DMatrix,
    occupations: &[f64],
    home: &[u32],
    parallel: bool,
) -> BlockSparseMatrix {
    let mut m = plan.empty_blocks();
    let occ_idx: Vec<usize> = occupations
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f != 0.0)
        .map(|(i, _)| i)
        .collect();
    if occ_idx.is_empty() {
        return m;
    }
    let k = occ_idx.len();
    const KG: usize = qp_linalg::gemm::K_GROUP;
    let n_seg = k.div_ceil(KG);
    let nb_blocks = plan.partition.n_blocks();
    let mut act = vec![false; nb_blocks * n_seg];
    for s in 0..n_seg {
        let mut last_home = u32::MAX;
        for &a in &occ_idx[s * KG..((s + 1) * KG).min(k)] {
            let h = home[a];
            if h == last_home {
                continue;
            }
            last_home = h;
            for &i in plan.neighbours.neighbours(h as usize) {
                act[i as usize * n_seg + s] = true;
            }
        }
    }
    let active = |b: usize, s: usize| act[b * n_seg + s];
    m.rank_k_update_ab_packed(
        k,
        active,
        active,
        |row, t| occupations[occ_idx[t]] * orbitals[(row, occ_idx[t])],
        |row, t| orbitals[(row, occ_idx[t])],
        parallel,
    )
    .expect("partition matches orbitals");
    m
}

/// The external (nuclear-attraction) potential at every grid point:
/// `v_ext(p) = −Σ_I Z_I / |p − R_I|`.
pub fn external_potential(system: &System) -> Vec<f64> {
    let mut out = vec![0.0; system.n_points()];
    let est = (system.structure.len() * 12).max(1) as u64;
    qp_par::fill_slice_hinted(&mut out, est, |gi| {
        let p = &system.grid.points[gi];
        let mut v = 0.0;
        for atom in &system.structure.atoms {
            let d = qp_linalg::vecops::dist3(p.position, atom.position);
            v -= atom.element.z() as f64 / d.max(1e-10);
        }
        v
    });
    out
}

/// Closed-shell density matrix from occupied orbitals:
/// `P_μν = Σ_i f_i C_μi C_νi`, `f_i = 2` (Eq. 6).
pub fn density_matrix(orbitals: &DMatrix, n_occ: usize) -> DMatrix {
    let occ = vec![2.0; n_occ];
    density_matrix_occ(orbitals, &occ)
}

/// Density matrix with explicit (possibly fractional) occupations
/// (Eq. 6 with Fermi–Dirac `f_i`, Eq. 3).
///
/// Computed as the Level-3 product `P = A·Bᵀ` with `A_μa = f_a C_μa` and
/// `B_νa = C_νa` over the occupied (f ≠ 0) columns, so the DM build runs on
/// the blocked parallel GEMM.
pub fn density_matrix_occ(orbitals: &DMatrix, occupations: &[f64]) -> DMatrix {
    let nb = orbitals.rows();
    let occ_idx: Vec<usize> = occupations
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f != 0.0)
        .map(|(i, _)| i)
        .collect();
    if occ_idx.is_empty() {
        return DMatrix::zeros(nb, nb);
    }
    let m = occ_idx.len();
    let scaled = DMatrix::from_fn(nb, m, |mu, a| {
        occupations[occ_idx[a]] * orbitals[(mu, occ_idx[a])]
    });
    let plain = DMatrix::from_fn(m, nb, |a, nu| orbitals[(nu, occ_idx[a])]);
    scaled.par_matmul(&plain).expect("conforming dims")
}

/// Fermi–Dirac occupations (Eq. 3): `f_i = 2/(1 + exp((ε_i − μ)/kT))` with
/// the chemical potential `μ` bisected so `Σ f_i = n_electrons`.
pub fn fermi_occupations(eigenvalues: &[f64], n_electrons: f64, kt: f64) -> Vec<f64> {
    assert!(kt > 0.0);
    let f_of = |mu: f64| -> Vec<f64> {
        eigenvalues
            .iter()
            .map(|&e| 2.0 / (1.0 + ((e - mu) / kt).clamp(-500.0, 500.0).exp()))
            .collect()
    };
    let total = |mu: f64| f_of(mu).iter().sum::<f64>();
    let mut lo = eigenvalues.first().copied().unwrap_or(0.0) - 10.0;
    let mut hi = eigenvalues.last().copied().unwrap_or(0.0) + 10.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total(mid) < n_electrons {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    f_of(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;

    fn sys() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 30;
        gs.max_angular = 38;
        System::build(water(), BasisSettings::Light, &gs, 150, 2)
    }

    #[test]
    fn overlap_diagonal_near_one() {
        let s = sys();
        let ov = overlap(&s);
        for i in 0..s.n_basis() {
            assert!(
                (ov[(i, i)] - 1.0).abs() < 0.05,
                "S[{i},{i}] = {}",
                ov[(i, i)]
            );
        }
    }

    #[test]
    fn overlap_symmetric_with_bounded_offdiagonals() {
        let s = sys();
        let ov = overlap(&s);
        for i in 0..s.n_basis() {
            for j in 0..s.n_basis() {
                assert_eq!(ov[(i, j)], ov[(j, i)]);
                // Cauchy-Schwarz bounds |S_ij| by 1 analytically; allow the
                // ~2% quadrature error of the 26-point angular grids.
                assert!(ov[(i, j)].abs() < 1.05, "S[{i},{j}] = {}", ov[(i, j)]);
            }
        }
        // S must remain positive definite despite quadrature error.
        assert!(qp_linalg::Cholesky::new(&ov).is_ok());
    }

    #[test]
    fn kinetic_is_positive_definite_symmetric() {
        let s = sys();
        let t = kinetic(&s);
        for i in 0..s.n_basis() {
            assert!(t[(i, i)] > 0.0, "T[{i},{i}] = {}", t[(i, i)]);
        }
        // Positive definite: Cholesky succeeds.
        assert!(qp_linalg::Cholesky::new(&t).is_ok());
    }

    #[test]
    fn external_potential_is_negative_everywhere() {
        let s = sys();
        let v = external_potential(&s);
        assert!(v.iter().all(|&x| x < 0.0));
    }

    #[test]
    fn dipole_matrices_are_symmetric() {
        let s = sys();
        for dir in 0..3 {
            let d = dipole_matrix(&s, dir);
            assert!(
                d.max_abs_diff(&d.transpose()) < 1e-12,
                "dipole {dir} asymmetric"
            );
        }
    }

    #[test]
    fn density_matrix_trace_counts_electrons() {
        // Tr[P S] = N_electrons for S-orthonormal orbitals.
        let s = sys();
        let ov = overlap(&s);
        let t = kinetic(&s);
        // Use eigenvectors of (T, S) as a stand-in orthonormal set.
        let dec = qp_linalg::generalized_symmetric_eigen(&t, &ov).unwrap();
        let p = density_matrix(&dec.eigenvectors, s.n_occupied());
        let tr_ps = p.trace_product(&ov).unwrap();
        assert!(
            (tr_ps - s.n_electrons() as f64).abs() < 1e-8,
            "Tr[PS] = {tr_ps}"
        );
    }

    #[test]
    fn screened_assembly_bit_identical_on_polymer() {
        use crate::screening::ScreeningMode;
        use qp_chem::structures::polyethylene;
        let mut gs = GridSettings::light();
        gs.n_radial = 14;
        gs.max_angular = 14;
        let structure = polyethylene(3);
        let dense = System::build_with_screening(
            structure.clone(),
            BasisSettings::Light,
            &gs,
            150,
            2,
            ScreeningMode::Off,
        );
        let scr = System::build_with_screening(
            structure,
            BasisSettings::Light,
            &gs,
            150,
            2,
            ScreeningMode::On,
        );
        assert!(scr.screen().is_some() && dense.screen().is_none());
        assert!(
            scr.screen().unwrap().fill_ratio() < 1.0,
            "polymer must actually screen pairs"
        );
        for (d, s, what) in [
            (overlap(&dense), overlap(&scr), "overlap"),
            (kinetic(&dense), kinetic(&scr), "kinetic"),
            (dipole_matrix(&dense, 1), dipole_matrix(&scr, 1), "dipole"),
        ] {
            for (x, y) in d.as_slice().iter().zip(s.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{what} differs");
            }
        }
        // The block-sparse forms densify to the same bytes.
        let ovb = overlap_blocks(&scr).unwrap().to_dense();
        let ov = overlap(&dense);
        for (x, y) in ov.as_slice().iter().zip(ovb.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let kb = kinetic_blocks(&scr).unwrap().to_dense();
        let kd = kinetic(&dense);
        for (x, y) in kd.as_slice().iter().zip(kb.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(overlap_blocks(&dense).is_none());
    }

    #[test]
    fn screened_density_matrix_matches_masked_dense() {
        use crate::screening::ScreenPlan;
        use qp_chem::structures::polyethylene;
        let structure = polyethylene(4);
        let basis = qp_chem::basis::BasisSet::build(&structure, BasisSettings::Light);
        let plan = ScreenPlan::build(&structure, &basis);
        let nb = basis.len();
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let c = DMatrix::from_fn(nb, nb, |_, _| rnd());
        let n_occ = 10;
        let occ: Vec<f64> = (0..nb).map(|i| if i < n_occ { 2.0 } else { 0.0 }).collect();
        let screened = density_matrix_occ_blocks(&plan, &c, &occ, false);
        let par = density_matrix_occ_blocks(&plan, &c, &occ, true);
        // Parallel sweep is bit-identical to serial.
        for (s, p) in screened
            .to_dense()
            .as_slice()
            .iter()
            .zip(par.to_dense().as_slice())
        {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        // On-support entries agree with the dense build; off-support are
        // exactly +0.0 in the screened form.
        let dense = density_matrix_occ(&c, &occ);
        let sd = screened.to_dense();
        for i in 0..nb {
            for j in 0..nb {
                let on = plan
                    .neighbours
                    .contains(plan.fn_atom[i] as usize, plan.fn_atom[j] as usize);
                if on {
                    assert!(
                        (sd[(i, j)] - dense[(i, j)]).abs() < 1e-12 * dense[(i, j)].abs().max(1.0),
                        "({i},{j}): {} vs {}",
                        sd[(i, j)],
                        dense[(i, j)]
                    );
                } else {
                    assert_eq!(sd[(i, j)].to_bits(), 0.0f64.to_bits());
                }
            }
        }
    }

    #[test]
    fn local_density_matrix_matches_scanned_blocks_bitwise() {
        use crate::screening::ScreenPlan;
        use qp_chem::structures::polyethylene;
        // Localized probe orbitals: column `a` lives on the screened
        // neighbourhood of its home atom — exactly the support contract of
        // the a-priori path. Plan-derived activity must reproduce the
        // scanned path bit for bit, at any thread count.
        let structure = polyethylene(6);
        let basis = qp_chem::basis::BasisSet::build(&structure, BasisSettings::Light);
        let plan = ScreenPlan::build(&structure, &basis);
        let nb = basis.len();
        let fa = &plan.fn_atom;
        let pseudo = |i: usize, j: usize| ((i * 31 + j * 7 + 13) % 101) as f64 / 101.0 - 0.5;
        let c = DMatrix::from_fn(nb, nb, |mu, a| {
            if plan.neighbours.contains(fa[mu] as usize, fa[a] as usize) {
                pseudo(mu, a)
            } else {
                0.0
            }
        });
        let n_occ = nb / 3;
        let occ: Vec<f64> = (0..nb).map(|i| if i < n_occ { 2.0 } else { 0.0 }).collect();
        let scanned = density_matrix_occ_blocks(&plan, &c, &occ, false);
        for par in [false, true] {
            let local = density_matrix_occ_blocks_local(&plan, &c, &occ, fa, par);
            for (s, l) in scanned
                .to_dense()
                .as_slice()
                .iter()
                .zip(local.to_dense().as_slice())
            {
                assert_eq!(s.to_bits(), l.to_bits());
            }
        }
    }

    #[test]
    fn potential_matrix_of_one_is_overlap() {
        let s = sys();
        let ones = vec![1.0; s.n_points()];
        let v = potential_matrix(&s, &ones);
        let ov = overlap(&s);
        assert!(v.max_abs_diff(&ov) < 1e-12);
    }
}

#[cfg(test)]
mod fermi_tests {
    use super::*;

    #[test]
    fn fermi_conserves_electron_count() {
        let eigs = vec![-2.0, -1.0, -0.5, -0.45, 0.3, 1.0];
        for kt in [0.001, 0.01, 0.1] {
            let f = fermi_occupations(&eigs, 7.0, kt);
            let total: f64 = f.iter().sum();
            assert!((total - 7.0).abs() < 1e-9, "kT = {kt}: Σf = {total}");
            assert!(f.iter().all(|&x| (0.0..=2.0).contains(&x)));
            // Occupations decrease with energy.
            for w in f.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn cold_limit_reproduces_aufbau() {
        let eigs = vec![-2.0, -1.0, 0.5, 1.0];
        let f = fermi_occupations(&eigs, 4.0, 1e-6);
        assert!((f[0] - 2.0).abs() < 1e-9);
        assert!((f[1] - 2.0).abs() < 1e-9);
        assert!(f[2].abs() < 1e-9);
        assert!(f[3].abs() < 1e-9);
    }

    #[test]
    fn degenerate_frontier_shared_equally() {
        // Two degenerate levels sharing two electrons: f = 1 each.
        let eigs = vec![-2.0, -0.5, -0.5, 1.0];
        let f = fermi_occupations(&eigs, 4.0, 0.01);
        assert!((f[1] - 1.0).abs() < 1e-6);
        assert!((f[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn density_matrix_occ_matches_integer_path() {
        let c = DMatrix::from_fn(5, 5, |i, j| ((i * 5 + j) as f64 * 0.3).sin());
        let p_int = density_matrix(&c, 2);
        let p_occ = density_matrix_occ(&c, &[2.0, 2.0, 0.0, 0.0, 0.0]);
        assert!(p_int.max_abs_diff(&p_occ) < 1e-15);
    }
}
