//! Distributed dense linear algebra: the ScaLAPACK stand-in.
//!
//! The original code solves Eq. 5 and builds the response density matrix
//! through ScaLAPACK (`aims.191127.scalapack.mpi.x`). This module provides
//! the corresponding substrate over `qp-mpi`: a 2-D block-cyclic matrix
//! distribution and a SUMMA matrix-matrix multiply whose communication
//! volume (O(n²/√P) words per rank) is exactly the shape the
//! `qp-bench` phase model charges to the DM phase.

use crate::system::System;
use qp_linalg::DMatrix;
use qp_mpi::{Comm, CommError, ReduceOp};

/// A `pr × pc` process grid over a communicator.
#[derive(Debug, Clone, Copy)]
pub struct ProcessGrid {
    /// Grid rows.
    pub pr: usize,
    /// Grid cols.
    pub pc: usize,
}

impl ProcessGrid {
    /// Squarest grid for `n_ranks` processes.
    pub fn squarest(n_ranks: usize) -> Self {
        let mut pr = (n_ranks as f64).sqrt() as usize;
        while pr > 1 && !n_ranks.is_multiple_of(pr) {
            pr -= 1;
        }
        ProcessGrid {
            pr: pr.max(1),
            pc: n_ranks / pr.max(1),
        }
    }

    /// Grid coordinates of `rank` (row-major).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }

    /// Rank at grid coordinates.
    pub fn rank_at(&self, row: usize, col: usize) -> usize {
        row * self.pc + col
    }
}

/// A block-cyclically distributed dense matrix (one local block store per
/// rank). Global element `(i, j)` lives on grid process
/// `((i/nb) mod pr, (j/nb) mod pc)`.
pub struct BlockCyclicMatrix {
    /// Global rows.
    pub rows: usize,
    /// Global cols.
    pub cols: usize,
    /// Block size.
    pub nb: usize,
    /// The process grid.
    pub grid: ProcessGrid,
    /// My grid coordinates.
    pub my: (usize, usize),
    /// My local elements, stored as (global_i, global_j) → value in a dense
    /// packed local matrix with index maps.
    local_rows: Vec<usize>,
    local_cols: Vec<usize>,
    local: DMatrix,
}

impl BlockCyclicMatrix {
    /// Create my local part of a distributed `rows × cols` matrix, filled
    /// from `f(i, j)` (deterministic on every rank — typically a closure
    /// over replicated data, mirroring ScaLAPACK's `pdelset` fills).
    pub fn from_fn(
        comm: &Comm,
        grid: ProcessGrid,
        rows: usize,
        cols: usize,
        nb: usize,
        f: impl Fn(usize, usize) -> f64,
    ) -> Self {
        let my = grid.coords(comm.rank());
        let local_rows: Vec<usize> = (0..rows).filter(|i| (i / nb) % grid.pr == my.0).collect();
        let local_cols: Vec<usize> = (0..cols).filter(|j| (j / nb) % grid.pc == my.1).collect();
        let local = DMatrix::from_fn(local_rows.len(), local_cols.len(), |a, b| {
            f(local_rows[a], local_cols[b])
        });
        BlockCyclicMatrix {
            rows,
            cols,
            nb,
            grid,
            my,
            local_rows,
            local_cols,
            local,
        }
    }

    /// Number of locally stored elements.
    pub fn local_len(&self) -> usize {
        self.local_rows.len() * self.local_cols.len()
    }

    /// Gather the full matrix on every rank (test/verification utility —
    /// O(n²) traffic, like `pdgemr2d` to a 1×1 grid).
    pub fn gather(&self, comm: &Comm) -> Result<DMatrix, CommError> {
        // Encode (i, j, v) triplets and allgather.
        let mut payload = Vec::with_capacity(3 * self.local_len());
        for (a, &gi) in self.local_rows.iter().enumerate() {
            for (b, &gj) in self.local_cols.iter().enumerate() {
                payload.push(gi as f64);
                payload.push(gj as f64);
                payload.push(self.local[(a, b)]);
            }
        }
        let all = comm.allgather(&payload)?;
        let mut full = DMatrix::zeros(self.rows, self.cols);
        for t in all.chunks_exact(3) {
            full[(t[0] as usize, t[1] as usize)] = t[2];
        }
        Ok(full)
    }

    /// SUMMA distributed multiply: `C = A · B` over the shared grid.
    ///
    /// Per outer step `k` (one block column of A / block row of B), the
    /// owning grid column broadcasts its A-panel along each grid row and the
    /// owning grid row broadcasts its B-panel along each grid column; every
    /// rank then accumulates the local outer product. Panel broadcasts are
    /// O(n²/√P) words per rank in total — the DM-phase communication shape.
    pub fn summa_multiply(
        &self,
        other: &BlockCyclicMatrix,
        comm: &Comm,
    ) -> Result<BlockCyclicMatrix, CommError> {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        assert_eq!(self.nb, other.nb, "block size mismatch");
        let grid = self.grid;
        let nb = self.nb;
        let mut c = BlockCyclicMatrix::from_fn(comm, grid, self.rows, other.cols, nb, |_, _| 0.0);

        let n_steps = self.cols.div_ceil(nb);
        for k in 0..n_steps {
            let k_lo = k * nb;
            let k_hi = ((k + 1) * nb).min(self.cols);
            let owner_col = k % grid.pc; // owns A(:, k-block)
            let owner_row = k % grid.pr; // owns B(k-block, :)

            // --- broadcast A panel along my grid row ---
            let a_panel = {
                let payload = if self.my.1 == owner_col {
                    // Pack my rows of columns [k_lo, k_hi).
                    let cols: Vec<usize> = self
                        .local_cols
                        .iter()
                        .enumerate()
                        .filter(|(_, &j)| j >= k_lo && j < k_hi)
                        .map(|(b, _)| b)
                        .collect();
                    let mut p = Vec::with_capacity(self.local_rows.len() * cols.len());
                    for a in 0..self.local_rows.len() {
                        for &b in &cols {
                            p.push(self.local[(a, b)]);
                        }
                    }
                    p
                } else {
                    Vec::new()
                };
                let key = format!("summa-a-row{}-k{k}", self.my.0);
                let table = comm.exchange(&key, grid.pc, self.my.1, payload)?;
                table[owner_col].clone()
            };

            // --- broadcast B panel along my grid column ---
            let b_panel = {
                let payload = if other_my_row(other) == owner_row {
                    let rows: Vec<usize> = other
                        .local_rows
                        .iter()
                        .enumerate()
                        .filter(|(_, &i)| i >= k_lo && i < k_hi)
                        .map(|(a, _)| a)
                        .collect();
                    let mut p = Vec::with_capacity(rows.len() * other.local_cols.len());
                    for &a in &rows {
                        for b in 0..other.local_cols.len() {
                            p.push(other.local[(a, b)]);
                        }
                    }
                    p
                } else {
                    Vec::new()
                };
                let key = format!("summa-b-col{}-k{k}", self.my.1);
                let table = comm.exchange(&key, grid.pr, self.my.0, payload)?;
                table[owner_row].clone()
            };

            // --- local accumulate: C_local += A_panel · B_panel ---
            let kw = k_hi - k_lo; // panel width
            if kw == 0 {
                continue;
            }
            let b_cols = c.local_cols.len();
            debug_assert_eq!(a_panel.len(), self.local_rows.len() * kw);
            debug_assert_eq!(b_panel.len(), kw * b_cols);
            for a in 0..self.local_rows.len() {
                for kk in 0..kw {
                    let av = a_panel[a * kw + kk];
                    if av == 0.0 {
                        continue;
                    }
                    for b in 0..b_cols {
                        c.local[(a, b)] += av * b_panel[kk * b_cols + b];
                    }
                }
            }
        }
        Ok(c)
    }
}

fn other_my_row(m: &BlockCyclicMatrix) -> usize {
    m.my.0
}

/// Distributed DM phase: build the response density matrix with the work
/// split over ranks by occupied-orbital blocks and synthesized with one
/// AllReduce — the `polar_reduce_memory` structure of the artifact.
pub fn distributed_response_density_matrix(
    comm: &Comm,
    c: &DMatrix,
    c1: &DMatrix,
    n_occ: usize,
) -> Result<DMatrix, CommError> {
    let nb = c.rows();
    let mut partial = DMatrix::zeros(nb, nb);
    for i in (comm.rank()..n_occ).step_by(comm.size()) {
        for mu in 0..nb {
            let c1_mu = c1[(mu, i)];
            let c_mu = c[(mu, i)];
            for nu in 0..nb {
                partial[(mu, nu)] += 2.0 * (c1_mu * c[(nu, i)] + c_mu * c1[(nu, i)]);
            }
        }
    }
    let flat = comm.allreduce(ReduceOp::Sum, partial.as_slice())?;
    Ok(DMatrix::from_vec(nb, nb, flat).expect("nb x nb"))
}

/// Solve the distributed generalized eigenproblem by gathering to every rank
/// (our dense solver is serial — sizes in this reproduction are modest) and
/// verifying agreement; the distributed storage is still what bounds
/// per-rank memory.
pub fn distributed_generalized_eigen(
    comm: &Comm,
    h: &BlockCyclicMatrix,
    s: &BlockCyclicMatrix,
) -> Result<qp_linalg::EigenDecomposition, CommError> {
    let h_full = h.gather(comm)?;
    let s_full = s.gather(comm)?;
    qp_linalg::generalized_symmetric_eigen(&h_full, &s_full)
        .map_err(|_| CommError::Mismatch("eigensolver failed"))
}

/// Convenience: the number of local Hamiltonian words a rank stores for a
/// system under block-cyclic distribution (the ScaLAPACK memory story the
/// §3.1 locality mapping replaces for grid quantities).
pub fn block_cyclic_local_words(system: &System, n_ranks: usize, nb: usize) -> usize {
    let n = system.n_basis();
    let grid = ProcessGrid::squarest(n_ranks);
    let rows = (0..n).filter(|i| (i / nb).is_multiple_of(grid.pr)).count();
    let cols = (0..n).filter(|j| (j / nb).is_multiple_of(grid.pc)).count();
    rows * cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_mpi::run_spmd;

    fn test_matrix(n: usize, seed: u64) -> DMatrix {
        DMatrix::from_fn(n, n, |i, j| {
            let x = (i as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((j as u64).wrapping_mul(40503))
                .wrapping_add(seed);
            ((x % 1000) as f64) / 500.0 - 1.0
        })
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(ProcessGrid::squarest(4).pr, 2);
        assert_eq!(ProcessGrid::squarest(6).pr, 2);
        assert_eq!(ProcessGrid::squarest(7).pr, 1);
        let g = ProcessGrid::squarest(6);
        assert_eq!(g.coords(5), (1, 2));
        assert_eq!(g.rank_at(1, 2), 5);
    }

    #[test]
    fn block_cyclic_covers_every_element_once() {
        let n = 13;
        let out = run_spmd(4, 2, move |c| {
            let grid = ProcessGrid::squarest(4);
            let m = BlockCyclicMatrix::from_fn(c, grid, n, n, 3, |i, j| (i * n + j) as f64);
            Ok(m.local_len())
        })
        .unwrap();
        assert_eq!(out.iter().sum::<usize>(), n * n);
    }

    #[test]
    fn gather_reconstructs_global() {
        let n = 11;
        let reference = test_matrix(n, 3);
        let reference2 = reference.clone();
        let out = run_spmd(6, 3, move |c| {
            let grid = ProcessGrid::squarest(6);
            let m = BlockCyclicMatrix::from_fn(c, grid, n, n, 2, |i, j| reference2[(i, j)]);
            let full = m.gather(c)?;
            Ok(full.max_abs_diff(&reference2))
        })
        .unwrap();
        assert!(out.into_iter().all(|d| d == 0.0));
        let _ = reference;
    }

    #[test]
    fn summa_matches_serial_matmul() {
        let n = 17;
        let a = test_matrix(n, 1);
        let b = test_matrix(n, 2);
        let expect = a.matmul(&b).unwrap();
        for (ranks, nodes, nb) in [(4usize, 2usize, 4usize), (6, 3, 3), (1, 1, 5)] {
            let (a, b, expect) = (a.clone(), b.clone(), expect.clone());
            let out = run_spmd(ranks, nodes, move |c| {
                let grid = ProcessGrid::squarest(ranks);
                let da = BlockCyclicMatrix::from_fn(c, grid, n, n, nb, |i, j| a[(i, j)]);
                let db = BlockCyclicMatrix::from_fn(c, grid, n, n, nb, |i, j| b[(i, j)]);
                let dc = da.summa_multiply(&db, c)?;
                let full = dc.gather(c)?;
                Ok(full.max_abs_diff(&expect))
            })
            .unwrap();
            for d in out {
                assert!(d < 1e-10, "SUMMA deviates by {d} at {ranks} ranks, nb {nb}");
            }
        }
    }

    #[test]
    fn summa_rectangular() {
        let (m, k, n) = (9, 14, 6);
        let a = DMatrix::from_fn(m, k, |i, j| (i + 2 * j) as f64 * 0.1);
        let b = DMatrix::from_fn(k, n, |i, j| (3 * i + j) as f64 * 0.01);
        let expect = a.matmul(&b).unwrap();
        let out = run_spmd(4, 2, move |c| {
            let grid = ProcessGrid::squarest(4);
            let da = BlockCyclicMatrix::from_fn(c, grid, m, k, 4, |i, j| a[(i, j)]);
            let db = BlockCyclicMatrix::from_fn(c, grid, k, n, 4, |i, j| b[(i, j)]);
            let dc = da.summa_multiply(&db, c)?;
            Ok(dc.gather(c)?.max_abs_diff(&expect))
        })
        .unwrap();
        for d in out {
            assert!(d < 1e-10);
        }
    }

    #[test]
    fn distributed_dm_matches_serial() {
        let nb = 12;
        let n_occ = 5;
        let c_mat = test_matrix(nb, 7);
        let c1 = DMatrix::from_fn(nb, n_occ, |i, j| 0.01 * (i + 3 * j) as f64);
        let serial = crate::dfpt::response_density_matrix(&c_mat, &c1, n_occ);
        let out = run_spmd(4, 2, move |c| {
            let p1 = distributed_response_density_matrix(c, &c_mat, &c1, n_occ)?;
            Ok(p1.max_abs_diff(&serial))
        })
        .unwrap();
        for d in out {
            assert!(d < 1e-12);
        }
    }

    #[test]
    fn distributed_eigen_agrees_with_serial() {
        let n = 8;
        let mut a = test_matrix(n, 11);
        a.symmetrize();
        for i in 0..n {
            a[(i, i)] += 4.0; // well-separated spectrum
        }
        let b = DMatrix::identity(n);
        let serial = qp_linalg::generalized_symmetric_eigen(&a, &b).unwrap();
        let serial_vals = serial.eigenvalues.clone();
        let out = run_spmd(4, 2, move |c| {
            let grid = ProcessGrid::squarest(4);
            let da = BlockCyclicMatrix::from_fn(c, grid, n, n, 2, |i, j| a[(i, j)]);
            let db =
                BlockCyclicMatrix::from_fn(c, grid, n, n, 2, |i, j| if i == j { 1.0 } else { 0.0 });
            let dec = distributed_generalized_eigen(c, &da, &db)?;
            let dev = dec
                .eigenvalues
                .iter()
                .zip(serial_vals.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            Ok(dev)
        })
        .unwrap();
        for d in out {
            assert!(d < 1e-10);
        }
    }

    #[test]
    fn local_words_shrink_with_ranks() {
        let sys = crate::system::System::build(
            qp_chem::structures::polyethylene(20),
            qp_chem::basis::BasisSettings::Light,
            &qp_chem::grids::GridSettings::coarse(),
            150,
            2,
        );
        let w1 = block_cyclic_local_words(&sys, 1, 8);
        let w4 = block_cyclic_local_words(&sys, 4, 8);
        let w16 = block_cyclic_local_words(&sys, 16, 8);
        assert!(w4 < w1 && w16 < w4);
        assert_eq!(w1, sys.n_basis() * sys.n_basis());
    }
}
