//! Parallel-efficiency attribution: *why* a parallel run took as long as it
//! did, not just how long.
//!
//! [`profile_case`] runs SCF + DFPT twice — a 1-thread serial reference and
//! an instrumented parallel leg — and decomposes the parallel wall clock
//! into four exhaustive, mutually exclusive buckets built from the qp-par
//! [`RegionRecord`]s:
//!
//! * **useful parallel work** — mean per-thread busy time of each region
//!   (`Σ busy / threads`): the part that actually scales;
//! * **imbalance** — `max_busy − mean_busy` per region: threads idling at
//!   region barriers while the slowest lane finishes;
//! * **scheduling overhead** — `wall − max_busy` per region: enqueue/wakeup
//!   latency, chunk-claim contention, drain; plus the raw `setup` and
//!   `queue-wait` components reported alongside;
//! * **serial remainder** — wall time outside any parallel region (including
//!   regions that collapsed to inline execution).
//!
//! The four fractions sum to 1 by construction, so a report can *name* the
//! dominant reason a case does not scale (for the tracked 0.91× ligand-49
//! "speedup" on a 1-core host: scheduling overhead + imbalance from
//! oversubscription, not a serial bottleneck). Per-phase rows pair span
//! self-times with the qp-linalg roofline counters to show achieved GFLOP/s
//! and arithmetic intensity where the flops actually run.

use crate::dfpt::{dfpt_direction, DfptOptions};
use crate::scf::{scf, ScfOptions};
use crate::system::System;
use qp_par::{RegionRecord, ThreadLease};
use qp_trace::metrics::{MetricSample, MetricValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// What to run and how wide.
pub struct ProfileOptions {
    /// Parallel-leg thread count (the serial leg is always 1).
    pub threads: usize,
    /// Field directions to converge (e.g. `&[1]` for a quick case).
    pub dirs: Vec<usize>,
    /// Ground-state solver settings.
    pub scf: ScfOptions,
    /// Response solver settings.
    pub dfpt: DfptOptions,
}

impl ProfileOptions {
    /// Default profile: all three directions at the default thread count.
    pub fn new() -> ProfileOptions {
        ProfileOptions {
            threads: default_profile_threads(),
            dirs: vec![0, 1, 2],
            scf: ScfOptions::default(),
            dfpt: DfptOptions::default(),
        }
    }
}

impl Default for ProfileOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Parallel-leg width: `QP_THREADS` if set, else available parallelism,
/// clamped to ≥ 2 so the parallel machinery is actually exercised.
pub fn default_profile_threads() -> usize {
    std::env::var("QP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(2)
}

/// One bar of the region grain-size histogram.
#[derive(Debug, Clone)]
pub struct GrainBucket {
    /// Inclusive upper bound of the bucket (powers of two).
    pub grain_le: usize,
    /// Parallel (non-inline) regions whose grain fell in this bucket.
    pub regions: usize,
}

/// The wall-clock decomposition of a parallel leg.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Wall time outside any parallel region / total.
    pub serial_fraction: f64,
    /// Region setup + queue + drain latency / total.
    pub scheduling_overhead_fraction: f64,
    /// Barrier idling behind the slowest lane / total.
    pub imbalance_fraction: f64,
    /// Mean per-thread busy time / total.
    pub useful_parallel_fraction: f64,
    /// The largest non-useful bucket: `"serial-fraction"`,
    /// `"scheduling-overhead"` or `"imbalance"`.
    pub dominant_cause: &'static str,
    /// Parallel (fanned-out, non-nested) regions.
    pub regions: usize,
    /// Regions that collapsed to inline execution.
    pub inline_regions: usize,
    /// Regions submitted from inside another region's chunk.
    pub nested_regions: usize,
    /// Total caller-side region setup, seconds.
    pub setup_s: f64,
    /// Total enqueue→first-claim latency, seconds.
    pub queue_wait_s: f64,
    /// Grain-size distribution of the parallel regions.
    pub grain_histogram: Vec<GrainBucket>,
}

/// Decompose `parallel_total_s` of wall clock using the region records of
/// the same run. Only top-level fanned-out regions participate: nested
/// regions are part of their parent's busy time, and inline regions are
/// serial time that never left the caller. The four fractions are
/// normalized over their own sum, so they always total exactly 1; the
/// denominator differs from `parallel_total_s` only by clock-skew clamps
/// (components are individually clamped at ≥ 0).
pub fn attribute(records: &[RegionRecord], parallel_total_s: f64, threads: usize) -> Attribution {
    let threads = threads.max(1);
    let mut region_wall_ns = 0u64;
    let mut useful_ns = 0.0f64;
    let mut imbalance_ns = 0.0f64;
    let mut overhead_ns = 0.0f64;
    let mut setup_ns = 0u64;
    let mut queue_wait_ns = 0u64;
    let mut regions = 0usize;
    let mut inline_regions = 0usize;
    let mut nested_regions = 0usize;
    let mut grains: BTreeMap<usize, usize> = BTreeMap::new();

    for r in records {
        if r.nested {
            nested_regions += 1;
            continue;
        }
        if r.inline || r.caller_only {
            // Ran on the caller without fan-out — whether it never left the
            // caller (`inline`) or was enqueued but drained entirely by the
            // submitter before any worker arrived (`caller_only`). Either
            // way the work is de-facto serial: it stays in the serial
            // remainder (we don't subtract its wall below), and its setup
            // must not be billed as parallel scheduling overhead.
            inline_regions += 1;
            continue;
        }
        regions += 1;
        region_wall_ns += r.wall_ns;
        setup_ns += r.setup_ns;
        queue_wait_ns += r.queue_wait_ns;
        // Lanes that never claimed a chunk contribute 0 busy time but are
        // still part of the mean: the region held `threads` lanes hostage.
        let lanes = r.threads.max(1) as f64;
        let mean = r.total_busy_ns() as f64 / lanes;
        let max = r.max_busy_ns() as f64;
        useful_ns += mean;
        imbalance_ns += (max - mean).max(0.0);
        overhead_ns += (r.wall_ns as f64 - max).max(0.0);
        *grains
            .entry(r.grain.max(1).next_power_of_two())
            .or_insert(0) += 1;
    }

    let total_ns = parallel_total_s * 1e9;
    let serial_ns = (total_ns - region_wall_ns as f64).max(0.0);
    let denom = serial_ns + useful_ns + imbalance_ns + overhead_ns;
    let denom = if denom > 0.0 { denom } else { 1.0 };

    let serial_fraction = serial_ns / denom;
    let scheduling_overhead_fraction = overhead_ns / denom;
    let imbalance_fraction = imbalance_ns / denom;
    let useful_parallel_fraction = useful_ns / denom;

    let dominant_cause = if serial_fraction >= scheduling_overhead_fraction
        && serial_fraction >= imbalance_fraction
    {
        "serial-fraction"
    } else if scheduling_overhead_fraction >= imbalance_fraction {
        "scheduling-overhead"
    } else {
        "imbalance"
    };

    let _ = threads; // width is carried by the records themselves
    Attribution {
        serial_fraction,
        scheduling_overhead_fraction,
        imbalance_fraction,
        useful_parallel_fraction,
        dominant_cause,
        regions,
        inline_regions,
        nested_regions,
        setup_s: setup_ns as f64 / 1e9,
        queue_wait_s: queue_wait_ns as f64 / 1e9,
        grain_histogram: grains
            .into_iter()
            .map(|(grain_le, regions)| GrainBucket { grain_le, regions })
            .collect(),
    }
}

/// One pipeline phase of the parallel leg: where the time went and what the
/// flops achieved there.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase tag (`"rho"`, `"sternheimer"`, ...).
    pub phase: String,
    /// Span **self** time: wall seconds exclusively inside this phase.
    pub self_s: f64,
    /// GEMM/matvec flops issued while a thread carried this label.
    pub flops: u64,
    /// Compulsory bytes of those calls.
    pub bytes: u64,
    /// Achieved flops / self time.
    pub gflops: f64,
    /// flops / bytes, the roofline x-coordinate.
    pub intensity: f64,
}

/// A complete profile of one case.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Case name.
    pub case: String,
    /// Parallel-leg thread count.
    pub threads: usize,
    /// Atoms in the structure.
    pub atoms: usize,
    /// Basis functions.
    pub basis: usize,
    /// 1-thread reference wall, seconds.
    pub serial_total_s: f64,
    /// Parallel-leg wall, seconds.
    pub parallel_total_s: f64,
    /// SCF wall within the parallel leg, seconds.
    pub scf_s: f64,
    /// DFPT wall within the parallel leg, seconds.
    pub dfpt_s: f64,
    /// The four-way wall-clock decomposition.
    pub attribution: Attribution,
    /// Per-phase self time + roofline, sorted by descending self time.
    pub phases: Vec<PhaseRow>,
    /// Flamegraph-compatible collapsed stacks of the parallel leg.
    pub folded: String,
}

impl ProfileReport {
    /// End-to-end speedup of the parallel leg over the serial reference.
    pub fn speedup(&self) -> f64 {
        self.serial_total_s / self.parallel_total_s
    }

    /// The report as `qp-profile/v1` JSON.
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.6}")
            } else {
                "null".to_string()
            }
        }
        let a = &self.attribution;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"qp-profile/v1\",");
        let _ = writeln!(s, "  \"case\": \"{}\",", self.case);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"atoms\": {}, \"basis\": {},", self.atoms, self.basis);
        let _ = writeln!(
            s,
            "  \"serial_total_s\": {}, \"parallel_total_s\": {}, \"e2e_speedup\": {},",
            f(self.serial_total_s),
            f(self.parallel_total_s),
            f(self.speedup())
        );
        let _ = writeln!(
            s,
            "  \"scf_s\": {}, \"dfpt_s\": {},",
            f(self.scf_s),
            f(self.dfpt_s)
        );
        let _ = writeln!(s, "  \"attribution\": {{");
        let _ = writeln!(s, "    \"serial_fraction\": {},", f(a.serial_fraction));
        let _ = writeln!(
            s,
            "    \"scheduling_overhead_fraction\": {},",
            f(a.scheduling_overhead_fraction)
        );
        let _ = writeln!(
            s,
            "    \"imbalance_fraction\": {},",
            f(a.imbalance_fraction)
        );
        let _ = writeln!(
            s,
            "    \"useful_parallel_fraction\": {},",
            f(a.useful_parallel_fraction)
        );
        let _ = writeln!(s, "    \"dominant_cause\": \"{}\",", a.dominant_cause);
        let _ = writeln!(
            s,
            "    \"regions\": {}, \"inline_regions\": {}, \"nested_regions\": {},",
            a.regions, a.inline_regions, a.nested_regions
        );
        let _ = writeln!(
            s,
            "    \"setup_s\": {}, \"queue_wait_s\": {},",
            f(a.setup_s),
            f(a.queue_wait_s)
        );
        let _ = writeln!(s, "    \"grain_histogram\": [");
        for (i, b) in a.grain_histogram.iter().enumerate() {
            let _ = writeln!(
                s,
                "      {{ \"grain_le\": {}, \"regions\": {} }}{}",
                b.grain_le,
                b.regions,
                if i + 1 < a.grain_histogram.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(s, "    ]");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{ \"phase\": \"{}\", \"self_s\": {}, \"flops\": {}, \"bytes\": {}, \
                 \"gflops\": {}, \"arithmetic_intensity\": {} }}{}",
                p.phase,
                f(p.self_s),
                p.flops,
                p.bytes,
                f(p.gflops),
                f(p.intensity),
                if i + 1 < self.phases.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Human-readable decomposition, one screen.
    pub fn render_text(&self) -> String {
        let a = &self.attribution;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "profile {}: {} atoms, {} basis fns, {} threads",
            self.case, self.atoms, self.basis, self.threads
        );
        let _ = writeln!(
            s,
            "  serial {:.3}s  parallel {:.3}s  speedup {:.2}x  (scf {:.3}s, dfpt {:.3}s)",
            self.serial_total_s,
            self.parallel_total_s,
            self.speedup(),
            self.scf_s,
            self.dfpt_s
        );
        let _ = writeln!(s, "  parallel wall decomposes as:");
        let bar = |frac: f64| "#".repeat((frac * 40.0).round() as usize);
        let _ = writeln!(
            s,
            "    useful parallel work  {:6.1}%  {}",
            100.0 * a.useful_parallel_fraction,
            bar(a.useful_parallel_fraction)
        );
        let _ = writeln!(
            s,
            "    serial remainder      {:6.1}%  {}",
            100.0 * a.serial_fraction,
            bar(a.serial_fraction)
        );
        let _ = writeln!(
            s,
            "    scheduling overhead   {:6.1}%  {}",
            100.0 * a.scheduling_overhead_fraction,
            bar(a.scheduling_overhead_fraction)
        );
        let _ = writeln!(
            s,
            "    load imbalance        {:6.1}%  {}",
            100.0 * a.imbalance_fraction,
            bar(a.imbalance_fraction)
        );
        let _ = writeln!(
            s,
            "  dominant non-useful bucket: {}  ({} regions, {} inline, {} nested; \
             setup {:.1}ms, queue-wait {:.1}ms)",
            a.dominant_cause,
            a.regions,
            a.inline_regions,
            a.nested_regions,
            a.setup_s * 1e3,
            a.queue_wait_s * 1e3
        );
        if !a.grain_histogram.is_empty() {
            let hist: Vec<String> = a
                .grain_histogram
                .iter()
                .map(|b| format!("≤{}:{}", b.grain_le, b.regions))
                .collect();
            let _ = writeln!(s, "  region grains: {}", hist.join("  "));
        }
        let _ = writeln!(s, "  phase breakdown (span self-time + roofline):");
        for p in &self.phases {
            if p.flops > 0 {
                let _ = writeln!(
                    s,
                    "    {:<12} {:8.3}s   {:8.2} GFLOP/s   {:6.2} flop/byte",
                    p.phase, p.self_s, p.gflops, p.intensity
                );
            } else {
                let _ = writeln!(s, "    {:<12} {:8.3}s", p.phase, p.self_s);
            }
        }
        s
    }
}

/// Counter reading for `name{phase=...}` from a snapshot, per phase label.
fn counter_by_phase(snap: &[MetricSample], name: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for s in snap {
        if s.key.name != name {
            continue;
        }
        if let MetricValue::Counter(v) = s.value {
            let phase = s
                .key
                .labels
                .iter()
                .find(|(k, _)| k == "phase")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "other".to_string());
            *out.entry(phase).or_insert(0) += v;
        }
    }
    out
}

/// Run SCF + the requested DFPT directions; returns (scf_s, dfpt_s).
fn run_pipeline(sys: &System, opts: &ProfileOptions) -> (f64, f64) {
    let t0 = Instant::now();
    let ground = scf(sys, &opts.scf).expect("profile SCF must converge");
    let scf_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for &dir in &opts.dirs {
        if let Err(e) = dfpt_direction(sys, &ground, dir, &opts.dfpt) {
            eprintln!("profile: dfpt direction {dir}: {e}");
        }
    }
    (scf_s, t1.elapsed().as_secs_f64())
}

/// Profile one case end to end: serial reference leg, then an instrumented
/// parallel leg whose wall clock is decomposed by [`attribute`]. `build` is
/// called once per leg so each starts with a cold basis cache, matching how
/// `bench_perf` measures its legs.
pub fn profile_case(
    name: &str,
    build: &dyn Fn() -> System,
    opts: &ProfileOptions,
) -> ProfileReport {
    // ---- Serial reference: everything off, 1 thread. ----
    let serial_total_s = {
        let _lease = ThreadLease::exactly(1);
        let sys = build();
        let t = Instant::now();
        run_pipeline(&sys, opts);
        t.elapsed().as_secs_f64()
    };

    // ---- Instrumented parallel leg. ----
    let _lease = ThreadLease::exactly(opts.threads);
    let sys = build();
    let atoms = sys.structure.len();
    let basis = sys.n_basis();

    let snap_before = qp_trace::global_metrics().snapshot();
    qp_trace::set_enabled(true);
    let _ = qp_trace::span::take_events();
    qp_par::telemetry::set_enabled(true);
    let _ = qp_par::telemetry::take_records();

    let t = Instant::now();
    let (scf_s, dfpt_s) = run_pipeline(&sys, opts);
    let parallel_total_s = t.elapsed().as_secs_f64();

    qp_par::telemetry::set_enabled(false);
    qp_trace::set_enabled(false);
    let records = qp_par::telemetry::take_records();
    let events = qp_trace::span::take_events();
    let snap_after = qp_trace::global_metrics().snapshot();

    let attribution = attribute(&records, parallel_total_s, opts.threads);

    // Per-phase rows: span self-time + roofline counter deltas.
    let forest = qp_trace::build_forest(&events);
    let self_us = qp_trace::self_time_by_phase(&forest);
    let flops_before = counter_by_phase(&snap_before, "linalg.gemm.flops");
    let flops_after = counter_by_phase(&snap_after, "linalg.gemm.flops");
    let bytes_before = counter_by_phase(&snap_before, "linalg.gemm.bytes");
    let bytes_after = counter_by_phase(&snap_after, "linalg.gemm.bytes");

    let mut phase_names: Vec<String> = self_us.keys().map(|k| k.to_string()).collect();
    for k in flops_after.keys() {
        if !phase_names.contains(k) {
            phase_names.push(k.clone());
        }
    }
    let mut phases: Vec<PhaseRow> = phase_names
        .into_iter()
        .map(|phase| {
            let self_s = self_us.get(phase.as_str()).copied().unwrap_or(0.0) / 1e6;
            let delta = |after: &BTreeMap<String, u64>, before: &BTreeMap<String, u64>| {
                after.get(&phase).copied().unwrap_or(0) - before.get(&phase).copied().unwrap_or(0)
            };
            let flops = delta(&flops_after, &flops_before);
            let bytes = delta(&bytes_after, &bytes_before);
            PhaseRow {
                gflops: if self_s > 0.0 {
                    flops as f64 / self_s / 1e9
                } else {
                    0.0
                },
                intensity: if bytes > 0 {
                    flops as f64 / bytes as f64
                } else {
                    0.0
                },
                phase,
                self_s,
                flops,
                bytes,
            }
        })
        .collect();
    phases.sort_by(|a, b| b.self_s.total_cmp(&a.self_s));

    ProfileReport {
        case: name.to_string(),
        threads: opts.threads,
        atoms,
        basis,
        serial_total_s,
        parallel_total_s,
        scf_s,
        dfpt_s,
        attribution,
        phases,
        folded: qp_trace::collapsed_stacks(&events),
    }
}

/// Validate a `qp-profile/v1` JSON document: well-formed JSON, all four
/// fractions present, each in `[0, 1]`, summing to 1 within ±0.02.
pub fn validate_profile_json(body: &str) -> std::result::Result<(), String> {
    qp_trace::validate_json(body).map_err(|e| format!("malformed JSON: {e}"))?;
    if !body.contains("\"schema\": \"qp-profile/v1\"") {
        return Err("missing qp-profile/v1 schema marker".to_string());
    }
    let field = |name: &str| -> std::result::Result<f64, String> {
        let pat = format!("\"{name}\": ");
        let at = body
            .find(&pat)
            .ok_or_else(|| format!("missing field {name}"))?;
        let rest = &body[at + pat.len()..];
        let end = rest
            .find([',', '\n', '}'])
            .ok_or_else(|| format!("unterminated field {name}"))?;
        rest[..end]
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("field {name}: {e}"))
    };
    let names = [
        "serial_fraction",
        "scheduling_overhead_fraction",
        "imbalance_fraction",
        "useful_parallel_fraction",
    ];
    let mut sum = 0.0;
    for name in names {
        let v = field(name)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{name} = {v} outside [0, 1]"));
        }
        sum += v;
    }
    if (sum - 1.0).abs() > 0.02 {
        return Err(format!("fractions sum to {sum}, expected 1 ± 0.02"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_par::LaneStats;

    fn rec(
        label: &'static str,
        wall_ns: u64,
        lanes: Vec<(u64, u64, u32)>,
        inline: bool,
        nested: bool,
    ) -> RegionRecord {
        let n_chunks = lanes.iter().map(|l| l.2 as usize).sum::<usize>().max(1);
        RegionRecord {
            label,
            n_items: 100,
            grain: 25,
            n_chunks,
            threads: 2,
            inline,
            caller_only: inline,
            nested,
            setup_ns: 1_000,
            queue_wait_ns: 500,
            wall_ns,
            lanes: lanes
                .into_iter()
                .map(|(lane, busy_ns, chunks)| LaneStats {
                    lane,
                    busy_ns,
                    chunks,
                })
                .collect(),
        }
    }

    #[test]
    fn attribute_decomposes_exhaustively() {
        // One region: wall 100µs, lanes 60µs + 20µs on 2 threads.
        // mean = 40µs (useful), imbalance = 20µs, overhead = 40µs; the
        // remaining 100µs of the 200µs total is serial.
        let records = vec![rec(
            "rho",
            100_000,
            vec![(0, 60_000, 2), (1, 20_000, 2)],
            false,
            false,
        )];
        let a = attribute(&records, 200e-6, 2);
        assert!((a.useful_parallel_fraction - 0.2).abs() < 1e-9);
        assert!((a.imbalance_fraction - 0.1).abs() < 1e-9);
        assert!((a.scheduling_overhead_fraction - 0.2).abs() < 1e-9);
        assert!((a.serial_fraction - 0.5).abs() < 1e-9);
        let sum = a.serial_fraction
            + a.scheduling_overhead_fraction
            + a.imbalance_fraction
            + a.useful_parallel_fraction;
        assert!((sum - 1.0).abs() < 1e-12, "fractions must sum to 1");
        assert_eq!(a.dominant_cause, "serial-fraction");
        assert_eq!(a.regions, 1);
        assert!((a.setup_s - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn attribute_skips_inline_and_nested() {
        let records = vec![
            rec(
                "rho",
                50_000,
                vec![(0, 25_000, 2), (1, 25_000, 2)],
                false,
                false,
            ),
            rec("sumup", 10_000, vec![(0, 10_000, 1)], true, false),
            rec("rho", 5_000, vec![(1, 5_000, 1)], false, true),
        ];
        let a = attribute(&records, 100e-6, 2);
        assert_eq!(a.regions, 1);
        assert_eq!(a.inline_regions, 1);
        assert_eq!(a.nested_regions, 1);
        // Inline + nested walls stay in the serial remainder.
        assert!((a.serial_fraction - 0.5).abs() < 1e-9);
        assert!((a.useful_parallel_fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    fn attribute_credits_caller_drained_regions_as_inline() {
        // An enqueued region whose every chunk ran on the submitting thread
        // is de-facto inline: its setup must not be billed as scheduling
        // overhead and its wall stays in the serial remainder.
        let mut caller_drained = rec("rho", 50_000, vec![(0, 50_000, 4)], false, false);
        caller_drained.caller_only = true;
        let records = vec![
            caller_drained,
            rec(
                "h",
                50_000,
                vec![(0, 25_000, 2), (1, 25_000, 2)],
                false,
                false,
            ),
        ];
        let a = attribute(&records, 150e-6, 2);
        assert_eq!(
            a.regions, 1,
            "caller-only region must not count as parallel"
        );
        assert_eq!(a.inline_regions, 1);
        // Only the genuinely-parallel region's setup is billed.
        assert!((a.setup_s - 1e-6).abs() < 1e-12);
        // Caller-only wall (50µs) + uncovered 50µs = 100µs serial of 150µs.
        assert!((a.serial_fraction - 100.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn attribute_perfect_balance_has_no_imbalance() {
        let records = vec![rec(
            "h",
            100_000,
            vec![(0, 100_000, 2), (1, 100_000, 2)],
            false,
            false,
        )];
        let a = attribute(&records, 100e-6, 2);
        assert!(a.imbalance_fraction.abs() < 1e-9);
        assert!(a.scheduling_overhead_fraction.abs() < 1e-9);
        assert!((a.useful_parallel_fraction - 1.0).abs() < 1e-9);
        assert_eq!(a.dominant_cause, "serial-fraction"); // all zero: first wins
    }

    #[test]
    fn attribute_empty_records_is_all_serial() {
        let a = attribute(&[], 1.0, 4);
        assert!((a.serial_fraction - 1.0).abs() < 1e-12);
        assert_eq!(a.dominant_cause, "serial-fraction");
        assert!(a.grain_histogram.is_empty());
    }

    #[test]
    fn report_json_roundtrips_validation() {
        let records = vec![rec(
            "rho",
            100_000,
            vec![(0, 60_000, 2), (1, 20_000, 2)],
            false,
            false,
        )];
        let report = ProfileReport {
            case: "synthetic".to_string(),
            threads: 2,
            atoms: 3,
            basis: 13,
            serial_total_s: 0.0002,
            parallel_total_s: 0.0002,
            scf_s: 0.0001,
            dfpt_s: 0.0001,
            attribution: attribute(&records, 200e-6, 2),
            phases: vec![PhaseRow {
                phase: "rho".to_string(),
                self_s: 0.0001,
                flops: 2_000_000,
                bytes: 160_000,
                gflops: 20.0,
                intensity: 12.5,
            }],
            folded: "scf 100\n".to_string(),
        };
        let json = report.to_json();
        validate_profile_json(&json).expect("synthetic report must validate");
        assert!(report.render_text().contains("dominant non-useful bucket"));
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let good = "{\n  \"schema\": \"qp-profile/v1\",\n  \"serial_fraction\": 0.5,\n  \
                    \"scheduling_overhead_fraction\": 0.3,\n  \"imbalance_fraction\": 0.1,\n  \
                    \"useful_parallel_fraction\": 0.1\n}\n";
        validate_profile_json(good).expect("balanced fractions validate");
        let bad_sum = good.replace("0.5", "0.9");
        assert!(validate_profile_json(&bad_sum).is_err());
        let out_of_range = good
            .replace("\"serial_fraction\": 0.5", "\"serial_fraction\": 1.5")
            .replace(
                "\"scheduling_overhead_fraction\": 0.3",
                "\"scheduling_overhead_fraction\": -0.7",
            );
        assert!(validate_profile_json(&out_of_range).is_err());
        assert!(validate_profile_json("{}").is_err());
    }
}
