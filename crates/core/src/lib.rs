//! # qp-core
//!
//! The paper's primary contribution: all-electron density-functional
//! perturbation theory (DFPT) for homogeneous electric fields, in the
//! numeric-atomic-orbital full-potential framework, restructured for
//! heterogeneous machines.
//!
//! The crate implements the full Fig. 1 pipeline:
//!
//! 1. Ground-state DFT ([`scf`]): assemble `S`, `H` on the integration grid,
//!    solve `H C = ε S C` (Eq. 5), iterate to self-consistency (Eqs. 1–6).
//! 2. The DFPT self-consistency cycle ([`dfpt`]), per field direction:
//!    response density matrix `P¹` (Eq. 7, phase **DM**), response density
//!    `n¹(r)` (Eq. 8, phase **Sumup**), response electrostatic potential via
//!    multipole Poisson (Eq. 9, phase **Rho**), response Hamiltonian `H¹`
//!    (Eqs. 10–12, phase **H**), Sternheimer update of `C¹`, repeat until
//!    `‖ΔP¹‖` is below threshold.
//! 3. Polarizability `α_IJ = ∂μ_I/∂ξ_J` (Eq. 13).
//!
//! [`kernels`] expresses the four accelerated phases through the `qp-cl`
//! runtime (counters feed the paper's figure harnesses), and [`parallel`]
//! distributes the cycle over `qp-mpi` ranks with either §3.1 task mapping.

// `for d in 0..3` indexing several parallel arrays at once is the clearest
// form for Cartesian components; the iterator rewrite obscures it.
#![allow(clippy::needless_range_loop)]

pub mod basis_cache;
pub mod dfpt;
pub mod dist;
pub mod farfield;
pub mod kernels;
pub mod mixing;
pub mod operators;
pub mod parallel;
pub mod profile;
pub mod properties;
pub mod resil;
pub mod scf;
pub mod screening;
pub mod system;

pub use dfpt::{
    dfpt, dfpt_direction_preemptible, DfptDirState, DfptOptions, DfptResult, DfptShared, DirOutcome,
};
pub use farfield::{FarFieldMode, FARFIELD_AUTO_MIN_ATOMS};
pub use mixing::DfptMixer;
pub use profile::{profile_case, validate_profile_json, ProfileOptions, ProfileReport};
pub use resil::{parallel_dfpt_direction_resilient, ResilienceConfig, ResilientDirectionResult};
pub use scf::{scf, scf_preemptible, scf_resumable, ScfOptions, ScfOutcome, ScfResult, ScfState};
pub use screening::{ScreenPlan, ScreeningMode};
pub use system::System;

/// Open a host-track span for one of the pipeline phases on the calling
/// rank's timeline (no-op unless tracing is enabled), and label the thread
/// so qp-par region records and qp-linalg roofline counters emitted while
/// the guard lives are attributed to the same phase.
pub(crate) fn phase_span(phase: qp_trace::Phase, name: &str) -> PhaseSpan {
    PhaseSpan {
        _span: qp_trace::SpanGuard::begin(qp_trace::thread_rank(), phase, name),
        _label: qp_par::LabelGuard::set(phase.as_str()),
    }
}

/// RAII pair tying a trace span to a qp-par phase label (see [`phase_span`]).
pub(crate) struct PhaseSpan {
    _span: qp_trace::SpanGuard,
    _label: qp_par::LabelGuard,
}

/// Errors from the physics engine.
#[derive(Debug)]
pub enum CoreError {
    /// The SCF or DFPT cycle failed to converge.
    NoConvergence {
        /// Which cycle.
        what: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Last residual.
        residual: f64,
    },
    /// Linear algebra failed underneath.
    Linalg(qp_linalg::LinalgError),
    /// Checkpoint save/load failed (I/O, corruption, version mismatch).
    Checkpoint(String),
}

impl From<qp_linalg::LinalgError> for CoreError {
    fn from(e: qp_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::NoConvergence {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
