//! Per-batch basis-value cache.
//!
//! Grid points never move across SCF and DFPT iterations, so the basis
//! values χμ(r), gradients ∇χμ(r) and the radial-spline evaluations behind
//! them are a pure function of the batch. The paper's §3.1 exploits exactly
//! this invariance by sharing splines across co-located atoms; here we keep
//! the whole per-batch table ([`BatchBasisTable`]) and rebuild it only on a
//! miss. A byte cap (`QP_BASIS_CACHE_MB`, default scaled with the basis
//! size — see [`default_cap_bytes`]) bounds residency with
//! least-recently-used eviction; hit/miss/eviction counts and the running
//! eviction rate are surfaced through `qp_trace::global_metrics` as
//! `basis_cache_{hits,misses,evictions}` and `basis_cache_eviction_rate`.
//!
//! Determinism: a table's contents depend only on (basis, batch), never on
//! cache state — eviction changes *when* values are recomputed, not what
//! they are — so caching is invisible to the SCF/DFPT numbers for any cap
//! and any thread count. The per-slot mutex also makes concurrent lookups
//! of one batch build the table exactly once (later arrivals block briefly
//! and take the hit path).

use crate::system::BatchBasisTable;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Approximate heap bytes held by one table.
fn table_bytes(t: &BatchBasisTable) -> usize {
    t.fn_indices.len() * std::mem::size_of::<usize>()
        + (t.values.len() + t.gradients.len()) * std::mem::size_of::<f64>()
}

/// Default residency cap when `QP_BASIS_CACHE_MB` is unset: a 256 MiB
/// floor (small systems are effectively unbounded) growing 256 KiB per
/// basis function, so large polymers keep their working set cached without
/// letting full-residency tables (O(points × nb) per batch, O(nb²) overall
/// unscreened) exhaust memory.
pub fn default_cap_bytes(n_basis: usize) -> usize {
    const FLOOR: usize = 256 * 1024 * 1024;
    const PER_FN: usize = 256 * 1024;
    FLOOR.max(n_basis.saturating_mul(PER_FN))
}

/// LRU-evicting, byte-capped cache of per-batch basis tables.
pub struct BasisValueCache {
    slots: Vec<Mutex<Option<Arc<BatchBasisTable>>>>,
    /// LRU clock tick of each slot's last access.
    last_used: Vec<AtomicU64>,
    clock: AtomicU64,
    resident_bytes: AtomicUsize,
    cap_bytes: usize,
}

impl BasisValueCache {
    /// Cache with `n_batches` slots and an explicit byte cap
    /// (`usize::MAX` = unbounded).
    pub fn new(n_batches: usize, cap_bytes: usize) -> Self {
        BasisValueCache {
            slots: (0..n_batches).map(|_| Mutex::new(None)).collect(),
            last_used: (0..n_batches).map(|_| AtomicU64::new(0)).collect(),
            clock: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            cap_bytes,
        }
    }

    /// Cache sized from the `QP_BASIS_CACHE_MB` environment variable;
    /// absent or unparseable falls back to [`default_cap_bytes`] for
    /// `n_basis` functions.
    pub fn from_env(n_batches: usize, n_basis: usize) -> Self {
        let cap = std::env::var("QP_BASIS_CACHE_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|mb| mb.saturating_mul(1024 * 1024))
            .unwrap_or_else(|| default_cap_bytes(n_basis));
        Self::new(n_batches, cap)
    }

    /// Number of slots (== number of batches).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// The table for batch `bid`, building it with `build` on a miss.
    pub fn get(&self, bid: usize, build: impl FnOnce() -> BatchBasisTable) -> Arc<BatchBasisTable> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.last_used[bid].store(tick, Ordering::Relaxed);
        let mut slot = self.slots[bid].lock().unwrap();
        if let Some(t) = slot.as_ref() {
            metrics().hits.inc();
            return t.clone();
        }
        metrics().misses.inc();
        let table = Arc::new(build());
        let bytes = table_bytes(&table);
        *slot = Some(table.clone());
        drop(slot);
        let now = self.resident_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if now > self.cap_bytes {
            self.evict_lru(bid);
        }
        table
    }

    /// Evict least-recently-used tables (never `keep`) until under the cap
    /// or nothing evictable remains.
    fn evict_lru(&self, keep: usize) {
        while self.resident_bytes.load(Ordering::Relaxed) > self.cap_bytes {
            // Oldest resident slot; try_lock skips slots mid-build/lookup.
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != keep)
                .filter_map(|(i, s)| {
                    let guard = s.try_lock().ok()?;
                    guard
                        .as_ref()
                        .map(|_| (i, self.last_used[i].load(Ordering::Relaxed)))
                })
                .min_by_key(|&(_, tick)| tick);
            let Some((i, _)) = victim else { return };
            let Ok(mut guard) = self.slots[i].try_lock() else {
                return;
            };
            if let Some(t) = guard.take() {
                self.resident_bytes
                    .fetch_sub(table_bytes(&t), Ordering::Relaxed);
                let m = metrics();
                m.evictions.inc();
                // Rebuild churn: evictions per table build. ≳1 means the
                // cap thrashes — every build evicts another live table.
                m.eviction_rate
                    .set(m.evictions.get() as f64 / m.misses.get().max(1) as f64);
            }
        }
    }
}

struct CacheMetrics {
    hits: qp_trace::Counter,
    misses: qp_trace::Counter,
    evictions: qp_trace::Counter,
    eviction_rate: qp_trace::Gauge,
}

fn metrics() -> &'static CacheMetrics {
    static METRICS: std::sync::OnceLock<CacheMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = qp_trace::global_metrics();
        CacheMetrics {
            hits: reg.counter("basis_cache_hits", &[]),
            misses: reg.counter("basis_cache_misses", &[]),
            evictions: reg.counter("basis_cache_evictions", &[]),
            eviction_rate: reg.gauge("basis_cache_eviction_rate", &[]),
        }
    })
}

/// Global hit/miss/eviction readings `(hits, misses, evictions)`.
pub fn cache_counters() -> (u64, u64, u64) {
    let m = metrics();
    (m.hits.get(), m.misses.get(), m.evictions.get())
}

/// Evictions per table build since process start (the
/// `basis_cache_eviction_rate` gauge): ≈0 when the cap holds the working
/// set, ≳1 when every rebuild evicts another live table (thrashing).
pub fn eviction_rate() -> f64 {
    metrics().eviction_rate.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table(n: usize) -> BatchBasisTable {
        BatchBasisTable {
            fn_indices: (0..n).collect(),
            values: vec![1.0; n * 4],
            gradients: vec![0.5; n * 12],
        }
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = BasisValueCache::new(4, usize::MAX);
        let (h0, m0, _) = cache_counters();
        let a = cache.get(2, || toy_table(3));
        let b = cache.get(2, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let (h1, m1, _) = cache_counters();
        assert_eq!(h1 - h0, 1);
        assert_eq!(m1 - m0, 1);
    }

    #[test]
    fn cap_evicts_least_recently_used() {
        let one = table_bytes(&toy_table(8));
        // Room for two tables, not three.
        let cache = BasisValueCache::new(3, 2 * one + one / 2);
        cache.get(0, || toy_table(8));
        cache.get(1, || toy_table(8));
        assert_eq!(cache.resident_bytes(), 2 * one);
        let (_, _, e0) = cache_counters();
        cache.get(2, || toy_table(8)); // evicts slot 0 (oldest)
        let (_, _, e1) = cache_counters();
        assert_eq!(e1 - e0, 1);
        assert_eq!(cache.resident_bytes(), 2 * one);
        // Slot 0 rebuilds (miss), slot 2 still resident (hit).
        let (_, m0, _) = cache_counters();
        cache.get(2, || panic!("2 was just inserted"));
        cache.get(0, || toy_table(8));
        let (_, m1, _) = cache_counters();
        assert_eq!(m1 - m0, 1);
    }

    #[test]
    fn default_cap_scales_with_basis_count() {
        // Floor for small systems, linear growth past the crossover.
        assert_eq!(default_cap_bytes(0), 256 * 1024 * 1024);
        assert_eq!(default_cap_bytes(7), 256 * 1024 * 1024); // water
        let crossover = 1024; // 1024 * 256 KiB == floor
        assert_eq!(default_cap_bytes(crossover), 256 * 1024 * 1024);
        // polymer:256 — 3586 basis functions.
        assert_eq!(default_cap_bytes(3586), 3586 * 256 * 1024);
        assert!(default_cap_bytes(usize::MAX) == usize::MAX); // saturates
    }

    #[test]
    fn eviction_rate_gauge_tracks_churn() {
        let one = table_bytes(&toy_table(8));
        let cache = BasisValueCache::new(2, one + one / 2); // holds one table
        cache.get(0, || toy_table(8));
        cache.get(1, || toy_table(8)); // evicts 0
                                       // Rate is global (shared across tests in this process): after at
                                       // least one eviction it must be positive and at most 1 per miss.
        let r = eviction_rate();
        assert!(r > 0.0 && r <= 1.0, "rate {r}");
    }

    #[test]
    fn values_identical_after_eviction_and_rebuild() {
        let one = table_bytes(&toy_table(4));
        let cache = BasisValueCache::new(2, one + one / 2);
        let first = cache.get(0, || toy_table(4));
        cache.get(1, || toy_table(4)); // evicts 0
        let rebuilt = cache.get(0, || toy_table(4));
        assert_eq!(first.values, rebuilt.values);
        assert_eq!(first.gradients, rebuilt.gradients);
    }
}
