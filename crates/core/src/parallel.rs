//! The distributed DFPT driver: the full Fig. 1 cycle over `qp-mpi` ranks.
//!
//! The parallel decomposition is FHI-aims': *grid work is distributed*
//! (batches mapped to ranks by either §3.1 strategy), *matrices are
//! replicated* and synthesized by collectives. Per DFPT iteration each rank
//!
//! 1. computes `n¹` on its own batches (Sumup),
//! 2. accumulates its partial `rho_multipole` rows and synthesizes them
//!    across ranks — per-row AllReduce (baseline), packed (§3.2.1), or
//!    packed + hierarchical (§3.2.2),
//! 3. redundantly solves the radial Poisson problem ("trading redundant
//!    calculations for communication avoidance", §4.2),
//! 4. assembles its partial `H¹` block and AllReduces it,
//! 5. performs the (replicated) Sternheimer update.
//!
//! Deterministic rank-ordered reductions make every rank take identical
//! branches, so no extra control-flow synchronization is needed.

use crate::dfpt::{response_density_matrix, DfptOptions};
use crate::mixing::{DfptMixer, MixState};
use crate::operators;
use crate::scf::ScfResult;
use crate::system::System;
use crate::{CoreError, Result};
use qp_chem::harmonics::{num_harmonics, real_spherical_harmonics};
use qp_chem::multipole::{solve_poisson, MultipoleMoments};
use qp_chem::xc;
use qp_grid::mapping::{LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};
use qp_linalg::DMatrix;
use qp_mpi::packed::PackedAllReduce;
use qp_mpi::{run_spmd, CommError, ReduceOp, TrafficRecord};

/// Which §3.1 task mapping distributes the batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// Baseline least-loaded assignment.
    LoadBalancing,
    /// Algorithm 1 recursive bisection.
    LocalityEnhancing,
}

/// How `rho_multipole` is synthesized across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveScheme {
    /// One AllReduce per atom row (the Fig. 10 baseline).
    PerRow,
    /// Rows packed into ≤ 30 MB batches (§3.2.1).
    Packed,
    /// Packed rows synthesized hierarchically (§3.2.2).
    PackedHierarchical,
}

/// Parallel-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// MPI ranks.
    pub n_ranks: usize,
    /// Ranks per shared-memory node.
    pub ranks_per_node: usize,
    /// Task mapping.
    pub mapping: MappingKind,
    /// Collective scheme for `rho_multipole`.
    pub collectives: CollectiveScheme,
}

/// Result of a distributed DFPT direction.
#[derive(Debug)]
pub struct ParallelDirectionResult {
    /// Converged response density matrix.
    pub p1: DMatrix,
    /// Iterations used.
    pub iterations: usize,
    /// All collective-traffic records of the run.
    pub traffic: Vec<TrafficRecord>,
    /// Grid points per rank (mapping diagnostics).
    pub points_per_rank: Vec<usize>,
}

/// Compute this rank's batch assignment (identical on every rank).
pub(crate) fn assign_batches(system: &System, cfg: &ParallelConfig) -> Vec<usize> {
    match cfg.mapping {
        MappingKind::LoadBalancing => LoadBalancingMapping.assign(&system.batches, cfg.n_ranks),
        MappingKind::LocalityEnhancing => {
            LocalityEnhancingMapping.assign(&system.batches, cfg.n_ranks)
        }
    }
}

/// Per-direction precomputation plus the full Fig. 1 iteration body,
/// shared by the plain driver below and the supervised resilient driver in
/// [`crate::resil`].
pub(crate) struct DirWork<'a> {
    system: &'a System,
    ground: &'a ScfResult,
    collectives: CollectiveScheme,
    mixing: f64,
    mixer: DfptMixer,
    dir: usize,
    dip: DMatrix,
    fxc: Vec<f64>,
    /// `Cᵀ` — the MO transform's left factor, built once per direction.
    c_t: DMatrix,
    /// The virtual-orbital columns `C_virt` (`nb × (nb − n_occ)`), the left
    /// factor of the GEMM-form Sternheimer update.
    c_virt: DMatrix,
    nb: usize,
    n_occ: usize,
    n_lm: usize,
    row_len: usize,
    natoms: usize,
}

/// The loop-carried state of one rank's DFPT direction: the mixed `C¹`,
/// its `P¹`, and the mixer history. Identical on every rank at each
/// iteration boundary (deterministic collectives), which is what makes
/// rank 0's checkpoint of it a consistent global cut.
pub(crate) struct DirState {
    pub(crate) c1: DMatrix,
    pub(crate) p1: DMatrix,
    pub(crate) mixer: MixState,
}

impl<'a> DirWork<'a> {
    pub(crate) fn new(
        system: &'a System,
        ground: &'a ScfResult,
        dir: usize,
        opts: &DfptOptions,
        cfg: &ParallelConfig,
    ) -> Self {
        let n_lm = num_harmonics(system.lmax);
        let nb = system.n_basis();
        let n_occ = system.n_occupied();
        let c = &ground.orbitals;
        DirWork {
            system,
            ground,
            collectives: cfg.collectives,
            mixing: opts.mixing,
            mixer: opts.mixer,
            dir,
            dip: operators::dipole_matrix(system, dir),
            fxc: ground
                .density
                .iter()
                .map(|&n| xc::f_xc(n.max(0.0)))
                .collect(),
            c_t: c.transpose(),
            c_virt: DMatrix::from_fn(nb, nb - n_occ, |mu, a| c[(mu, n_occ + a)]),
            nb,
            n_occ,
            n_lm,
            row_len: system.grid.radial.len() * n_lm,
            natoms: system.structure.len(),
        }
    }

    /// Fresh loop state (zero `C¹`/`P¹`, empty mixer history).
    pub(crate) fn initial_state(&self) -> DirState {
        DirState {
            c1: DMatrix::zeros(self.nb, self.n_occ),
            p1: DMatrix::zeros(self.nb, self.nb),
            mixer: MixState::new(self.mixer, self.mixing),
        }
    }

    /// Loop state restored from a checkpoint (`C¹`, `P¹` and the DIIS
    /// history as captured; the histories are empty for the linear mixer).
    pub(crate) fn state_from(
        &self,
        c1: DMatrix,
        p1: DMatrix,
        diis_in: Vec<DMatrix>,
        diis_res: Vec<DMatrix>,
    ) -> DirState {
        DirState {
            c1,
            p1,
            mixer: MixState::with_history(self.mixer, self.mixing, diis_in, diis_res),
        }
    }

    /// The batch indices `assignment` maps to `rank`.
    pub(crate) fn my_batches(assignment: &[usize], rank: usize) -> Vec<usize> {
        assignment
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == rank)
            .map(|(b, _)| b)
            .collect()
    }

    /// One distributed DFPT iteration: Sumup → rho synthesis → Poisson →
    /// `H¹` AllReduce → Sternheimer. Advances `state` in place and returns
    /// the residual `‖ΔP¹‖`.
    pub(crate) fn iteration(
        &self,
        comm: &qp_mpi::Comm,
        my_batches: &[usize],
        iter: usize,
        state: &mut DirState,
    ) -> std::result::Result<f64, CommError> {
        let system = self.system;
        let (nb, n_occ, n_lm, row_len, natoms) =
            (self.nb, self.n_occ, self.n_lm, self.row_len, self.natoms);
        let c = &self.ground.orbitals;
        let eps = &self.ground.eigenvalues;
        let rank = comm.rank();
        let mut iter_span = qp_trace::SpanGuard::begin(rank, qp_trace::Phase::Dfpt, "dfpt.iter");
        if iter_span.is_recording() {
            iter_span.arg("iter", iter).arg("dir", self.dir);
        }
        // ---- Sumup on own batches (GEMM form, see `System::batch_density`) ----
        let sumup_span = crate::phase_span(qp_trace::Phase::Sumup, "sumup.local_n1");
        let local_n1: Vec<Vec<f64>> = my_batches
            .iter()
            .map(|&b| system.batch_density(b, &state.p1))
            .collect();
        drop(sumup_span);

        // ---- Partial rho_multipole rows from own points ----
        let rho_span = crate::phase_span(qp_trace::Phase::Rho, "rho.partial_rows");
        let mut rows = vec![vec![0.0; row_len]; natoms];
        let mut ylm = vec![0.0; n_lm];
        let fourpi = 4.0 * std::f64::consts::PI;
        for (bi, &b) in my_batches.iter().enumerate() {
            let batch = &system.batches[b];
            for (pi, pt) in batch.points.iter().enumerate() {
                let gp = &system.grid.points[pt.grid_index as usize];
                let ia = gp.atom as usize;
                let center = system.structure.atoms[ia].position;
                let d = [
                    gp.position[0] - center[0],
                    gp.position[1] - center[1],
                    gp.position[2] - center[2],
                ];
                real_spherical_harmonics(system.lmax, d, &mut ylm);
                let f = fourpi * gp.w_angular * gp.partition * local_n1[bi][pi];
                let base = gp.shell as usize * n_lm;
                for (lm, y) in ylm.iter().enumerate() {
                    rows[ia][base + lm] += f * y;
                }
            }
        }

        drop(rho_span);

        // ---- Synthesize rho_multipole across ranks ----
        let synth_span = crate::phase_span(qp_trace::Phase::Rho, "rho.synthesize");
        let reduced_rows: Vec<Vec<f64>> = match self.collectives {
            CollectiveScheme::PerRow => {
                let mut out = Vec::with_capacity(natoms);
                for row in rows.iter() {
                    out.push(comm.allreduce(ReduceOp::Sum, row)?);
                }
                out
            }
            CollectiveScheme::Packed => {
                let mut packer = PackedAllReduce::new(comm, ReduceOp::Sum);
                for (ia, row) in rows.iter().enumerate() {
                    packer.push(&format!("rho_multipole:{ia}"), row.clone())?;
                }
                packer.flush()?;
                (0..natoms)
                    .map(|ia| {
                        packer
                            .take(&format!("rho_multipole:{ia}"))
                            .ok_or(CommError::Mismatch("missing packed row"))
                    })
                    .collect::<std::result::Result<_, _>>()?
            }
            CollectiveScheme::PackedHierarchical => {
                let packed: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
                let reduced = qp_mpi::hierarchical::hierarchical_allreduce(
                    comm,
                    "rho_multipole",
                    ReduceOp::Sum,
                    &packed,
                )?;
                reduced.chunks(row_len).map(|c| c.to_vec()).collect()
            }
        };

        drop(synth_span);

        // ---- Redundant Poisson solve (producer) on every rank ----
        let poisson_span = crate::phase_span(qp_trace::Phase::Rho, "rho.poisson");
        let moments = MultipoleMoments {
            lmax: system.lmax,
            n_lm,
            moments: reduced_rows,
        };
        let hartree = solve_poisson(&system.structure, &system.grid, &moments);
        // In tree mode the far part of the per-point Hartree sum is served
        // from aggregated cluster moments (QP_FARFIELD_TOL budget); every
        // rank aggregates from the same redundant Poisson solution, so the
        // replicated potential stays rank-independent.
        let far = system.farfield_tree().map(|tree| {
            (
                tree,
                qp_grid::FarField::aggregate(tree, &hartree, qp_grid::farfield_tol()),
            )
        });
        drop(poisson_span);

        // ---- Partial H1 from own batches ----
        let h_span = crate::phase_span(qp_trace::Phase::H, "h1.partial");
        let mut h1_partial = DMatrix::zeros(nb, nb);
        for (bi, &b) in my_batches.iter().enumerate() {
            let batch = &system.batches[b];
            let table = system.table(b);
            let nf = table.fn_indices.len();
            for (pi, pt) in batch.points.iter().enumerate() {
                let gi = pt.grid_index as usize;
                let gp = &system.grid.points[gi];
                let v_h = match &far {
                    Some((tree, ff)) => ff.eval(tree, &hartree, gp.position),
                    None => hartree.eval_atoms(gp.position, 0..natoms),
                };
                let v1 = v_h + self.fxc[gi] * local_n1[bi][pi];
                let w = gp.weight * v1;
                if w == 0.0 {
                    continue;
                }
                let row = &table.values[pi * nf..(pi + 1) * nf];
                for a in 0..nf {
                    if row[a] == 0.0 {
                        continue;
                    }
                    let fa = table.fn_indices[a];
                    for bq in 0..nf {
                        let fb = table.fn_indices[bq];
                        h1_partial[(fa, fb)] += w * row[a] * row[bq];
                    }
                }
            }
        }
        let h1_flat = comm.allreduce(ReduceOp::Sum, h1_partial.as_slice())?;
        let mut h1 = DMatrix::from_vec(nb, nb, h1_flat).expect("nb x nb");
        h1.axpy(-1.0, &self.dip).expect("same dims");
        drop(h_span);

        // ---- Replicated Sternheimer update (GEMM form) ----
        // C¹_i = Σ_a C_a H¹(MO)_ai/(ε_i − ε_a) is the Level-3 product
        // C_virt · U with U_ai = H¹(MO)_{n_occ+a,i}/(ε_i − ε_{n_occ+a}).
        let stern_span = crate::phase_span(qp_trace::Phase::Sternheimer, "sternheimer");
        let h1_mo = self
            .c_t
            .par_matmul(&h1)
            .and_then(|m| m.par_matmul(c))
            .expect("nb-square chain");
        let u = DMatrix::from_fn(nb - n_occ, n_occ, |a, i| {
            h1_mo[(n_occ + a, i)] / (eps[i] - eps[n_occ + a])
        });
        let c1_new = self.c_virt.par_matmul(&u).expect("conforming dims");
        let mixed = state.mixer.step(&state.c1, &c1_new);
        drop(stern_span);
        let dm_span = crate::phase_span(qp_trace::Phase::Dm, "dm.p1");
        let p1_new = response_density_matrix(c, &mixed, n_occ);
        let residual = p1_new.max_abs_diff(&state.p1);
        drop(dm_span);
        if iter_span.is_recording() {
            iter_span.arg("residual", residual);
        }
        state.c1 = mixed;
        state.p1 = p1_new;
        Ok(residual)
    }
}

/// Map a communication failure onto the core error type.
pub(crate) fn comm_failure(e: CommError) -> CoreError {
    CoreError::NoConvergence {
        what: match e {
            CommError::RankFailed => "parallel DFPT (rank failure)",
            CommError::Timeout => "parallel DFPT (communication timeout)",
            CommError::Mismatch(_) => "parallel DFPT (collective mismatch)",
        },
        iterations: 0,
        residual: f64::NAN,
    }
}

/// Run one DFPT direction distributed over `cfg.n_ranks` ranks.
pub fn parallel_dfpt_direction(
    system: &System,
    ground: &ScfResult,
    dir: usize,
    opts: &DfptOptions,
    cfg: &ParallelConfig,
) -> Result<ParallelDirectionResult> {
    let assignment = assign_batches(system, cfg);
    let work = DirWork::new(system, ground, dir, opts, cfg);

    let outputs = run_spmd(cfg.n_ranks, cfg.ranks_per_node, |comm| {
        let rank = comm.rank();
        let my_batches = DirWork::my_batches(&assignment, rank);
        let my_points: usize = my_batches.iter().map(|&b| system.batches[b].len()).sum();

        let mut state = work.initial_state();
        let mut iterations = 0usize;
        let mut converged = false;

        for iter in 1..=opts.max_iter {
            iterations = iter;
            let residual = work.iteration(comm, &my_batches, iter, &mut state)?;
            if residual < opts.tol {
                converged = true;
                break;
            }
        }

        let traffic = if rank == 0 {
            comm.traffic().snapshot()
        } else {
            Vec::new()
        };
        Ok((converged, iterations, state.p1.clone(), traffic, my_points))
    })
    .map_err(comm_failure)?;

    let (converged, iterations, p1, traffic, _) = outputs[0].clone();
    if !converged {
        return Err(CoreError::NoConvergence {
            what: "parallel DFPT self-consistency",
            iterations,
            residual: f64::NAN,
        });
    }
    let points_per_rank = outputs.iter().map(|o| o.4).collect();
    Ok(ParallelDirectionResult {
        p1,
        iterations,
        traffic,
        points_per_rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfpt::dfpt_direction;
    use crate::scf::{scf, ScfOptions};
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;
    use qp_mpi::CollectiveKind;

    fn setup() -> (System, ScfResult) {
        let mut gs = GridSettings::light();
        gs.n_radial = 24;
        gs.max_angular = 26;
        let sys = System::build(water(), BasisSettings::Light, &gs, 120, 2);
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        (sys, ground)
    }

    fn cfg(mapping: MappingKind, collectives: CollectiveScheme) -> ParallelConfig {
        ParallelConfig {
            n_ranks: 4,
            ranks_per_node: 2,
            mapping,
            collectives,
        }
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let (sys, ground) = setup();
        let opts = DfptOptions::default();
        let serial = dfpt_direction(&sys, &ground, 2, &opts).unwrap();
        for mapping in [MappingKind::LoadBalancing, MappingKind::LocalityEnhancing] {
            let par = parallel_dfpt_direction(
                &sys,
                &ground,
                2,
                &opts,
                &cfg(mapping, CollectiveScheme::PerRow),
            )
            .unwrap();
            assert!(
                par.p1.max_abs_diff(&serial.p1) < 1e-6,
                "{mapping:?}: parallel deviates by {}",
                par.p1.max_abs_diff(&serial.p1)
            );
        }
    }

    #[test]
    fn all_collective_schemes_agree() {
        let (sys, ground) = setup();
        let opts = DfptOptions::default();
        let reference = parallel_dfpt_direction(
            &sys,
            &ground,
            0,
            &opts,
            &cfg(MappingKind::LocalityEnhancing, CollectiveScheme::PerRow),
        )
        .unwrap();
        for scheme in [
            CollectiveScheme::Packed,
            CollectiveScheme::PackedHierarchical,
        ] {
            let out = parallel_dfpt_direction(
                &sys,
                &ground,
                0,
                &opts,
                &cfg(MappingKind::LocalityEnhancing, scheme),
            )
            .unwrap();
            assert!(
                out.p1.max_abs_diff(&reference.p1) < 1e-8,
                "{scheme:?} deviates by {}",
                out.p1.max_abs_diff(&reference.p1)
            );
        }
    }

    #[test]
    fn packing_reduces_collective_calls() {
        let (sys, ground) = setup();
        let opts = DfptOptions::default();
        let per_row = parallel_dfpt_direction(
            &sys,
            &ground,
            1,
            &opts,
            &cfg(MappingKind::LocalityEnhancing, CollectiveScheme::PerRow),
        )
        .unwrap();
        let packed = parallel_dfpt_direction(
            &sys,
            &ground,
            1,
            &opts,
            &cfg(MappingKind::LocalityEnhancing, CollectiveScheme::Packed),
        )
        .unwrap();
        let count =
            |t: &[TrafficRecord], k: CollectiveKind| t.iter().filter(|r| r.kind == k).count();
        // Baseline: natoms AllReduce per iteration for rho_multipole (plus
        // one for H1). Packed: 1 PackedAllReduce per iteration.
        let baseline_all = count(&per_row.traffic, CollectiveKind::AllReduce);
        let rho_packed = count(&packed.traffic, CollectiveKind::PackedAllReduce);
        let h1_packed = count(&packed.traffic, CollectiveKind::AllReduce);
        assert!(rho_packed > 0);
        // Baseline: (natoms + 1) AllReduce per iteration (3 rho_multipole
        // rows + 1 H¹); packed: 1 PackedAllReduce + 1 H¹ AllReduce. For the
        // 3-atom system the rho-row count drops exactly natoms -> 1.
        assert_eq!(h1_packed, rho_packed, "one H1 AllReduce per iteration");
        let rho_baseline_rows = baseline_all.saturating_sub(h1_packed);
        assert!(
            rho_baseline_rows >= 3 * rho_packed,
            "packing should absorb the {rho_baseline_rows} per-row calls into {rho_packed}"
        );
    }

    #[test]
    fn mapping_balances_points() {
        let (sys, ground) = setup();
        let opts = DfptOptions::default();
        let out = parallel_dfpt_direction(
            &sys,
            &ground,
            0,
            &opts,
            &cfg(MappingKind::LocalityEnhancing, CollectiveScheme::Packed),
        )
        .unwrap();
        let max = *out.points_per_rank.iter().max().unwrap() as f64;
        let min = *out.points_per_rank.iter().min().unwrap() as f64;
        assert!(min > 0.0);
        assert!(max / min < 2.0, "{:?}", out.points_per_rank);
    }
}
