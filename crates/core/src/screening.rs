//! Sparsity-aware screening plan for operator assembly.
//!
//! [`ScreenPlan`] bundles the cutoff-sphere data structures from `qp-grid`
//! with the basis-set bookkeeping the assembly kernels need:
//!
//! * the atom-pair [`NeighborList`] — the exact support of every assembled
//!   operator matrix (overlap, kinetic, potential, dipole, `H¹`),
//! * a [`BatchScreen`] cell list answering "which atoms reach this batch"
//!   in O(neighbourhood) instead of the O(n_basis) linear scan,
//! * the atom [`BlockPartition`] (each atom owns a contiguous run of basis
//!   functions) that block-sparse operator matrices are stored over.
//!
//! **Bit-identity contract.** Screening never changes a single output bit:
//!
//! * The screened tabulation path returns the *same sorted function list*
//!   as `BasisSet::functions_near` (same strict `<` predicate, atom-major
//!   order), so every batch table is bytewise identical.
//! * Entries of an assembled operator outside the neighbor-pair support
//!   accumulate only exact `±0.0` terms.  An accumulator seeded at `+0.0`
//!   stays `+0.0` under such additions (in round-to-nearest, exact
//!   cancellation yields `+0.0` and `+0.0 + (−0.0) = +0.0`), so *skipping*
//!   those additions — which is all the screened merge does — leaves every
//!   on-support entry bit-identical and every off-support entry exactly
//!   `+0.0`, matching what the dense path computes for it.

use qp_chem::basis::BasisSet;
use qp_chem::geometry::Structure;
use qp_grid::{BatchScreen, NeighborList};
use qp_linalg::{BlockPartition, BlockSparseMatrix};

/// Structures at or above this many atoms turn screening on under
/// [`ScreeningMode::Auto`].  Below it the neighbor list is ~dense and the
/// plan is pure overhead; the choice is bit-invisible either way.
pub const AUTO_MIN_ATOMS: usize = 16;

/// User-facing screening control (`--screening on|off|auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScreeningMode {
    /// Always build and use the screening plan.
    On,
    /// Never screen; every path is the original dense scan.
    Off,
    /// Screen when the structure has at least [`AUTO_MIN_ATOMS`] atoms.
    #[default]
    Auto,
}

impl ScreeningMode {
    /// Whether a structure of `natoms` atoms gets a screening plan.
    pub fn enabled(self, natoms: usize) -> bool {
        match self {
            ScreeningMode::On => true,
            ScreeningMode::Off => false,
            ScreeningMode::Auto => natoms >= AUTO_MIN_ATOMS,
        }
    }
}

impl std::str::FromStr for ScreeningMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "on" => Ok(ScreeningMode::On),
            "off" => Ok(ScreeningMode::Off),
            "auto" => Ok(ScreeningMode::Auto),
            other => Err(format!(
                "invalid screening mode '{other}' (expected on|off|auto)"
            )),
        }
    }
}

impl std::fmt::Display for ScreeningMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScreeningMode::On => "on",
            ScreeningMode::Off => "off",
            ScreeningMode::Auto => "auto",
        })
    }
}

/// The per-system screening plan: neighbor pairs, batch queries and the
/// atom block partition.  Built once per [`crate::System`]; immutable and
/// shared by every assembly phase.
#[derive(Debug)]
pub struct ScreenPlan {
    /// Atom-pair support of every assembled operator.
    pub neighbours: NeighborList,
    /// Cell-list range queries for batch tabulation.
    batch_screen: BatchScreen,
    /// Atom blocks: atom `I` owns basis functions
    /// `partition.offset(I)..partition.offset(I + 1)`.
    pub partition: BlockPartition,
    /// Owning atom of each basis function.
    pub fn_atom: Vec<u32>,
}

impl ScreenPlan {
    /// Build the plan for a structure and its basis.
    pub fn build(structure: &Structure, basis: &BasisSet) -> Self {
        let natoms = structure.len();
        let sizes: Vec<usize> = (0..natoms)
            .map(|a| basis.functions_of_atom(a).len())
            .collect();
        let mut fn_atom = vec![0u32; basis.len()];
        for a in 0..natoms {
            for i in basis.functions_of_atom(a) {
                fn_atom[i] = a as u32;
            }
        }
        ScreenPlan {
            neighbours: NeighborList::build(structure),
            batch_screen: BatchScreen::build(structure),
            partition: BlockPartition::from_sizes(&sizes),
            fn_atom,
        }
    }

    /// Cell-accelerated equivalent of [`BasisSet::functions_near`]: the
    /// indices of functions whose support reaches within `extra` of `p`,
    /// ascending.  Identical output to the linear scan — every shell of an
    /// atom shares the element cutoff, the predicate is the same strict
    /// `<`, and atoms come back ascending in atom-major function order.
    pub fn functions_near(&self, basis: &BasisSet, p: [f64; 3], extra: f64) -> Vec<usize> {
        let atoms = self.batch_screen.atoms_near(p, extra);
        let mut out = Vec::new();
        for a in atoms {
            out.extend(basis.functions_of_atom(a as usize));
        }
        out
    }

    /// A zeroed block-sparse matrix over the plan's pair support.
    pub fn empty_blocks(&self) -> BlockSparseMatrix {
        BlockSparseMatrix::zeros(
            self.partition.clone(),
            &self.neighbours.row_ptr,
            &self.neighbours.cols,
        )
    }

    /// Fraction of the dense pair space that survives screening.
    pub fn fill_ratio(&self) -> f64 {
        self.neighbours.fill_ratio()
    }

    /// Heap bytes held by the plan's index structures.
    pub fn memory_bytes(&self) -> usize {
        self.neighbours.memory_bytes() + self.fn_atom.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::basis::BasisSettings;
    use qp_chem::structures::{polyethylene, water};

    #[test]
    fn mode_parsing_roundtrip() {
        for (s, m) in [
            ("on", ScreeningMode::On),
            ("off", ScreeningMode::Off),
            ("auto", ScreeningMode::Auto),
        ] {
            assert_eq!(s.parse::<ScreeningMode>().unwrap(), m);
            assert_eq!(m.to_string(), s);
        }
        assert!("ON".parse::<ScreeningMode>().is_err());
        assert!("always".parse::<ScreeningMode>().is_err());
    }

    #[test]
    fn auto_threshold() {
        assert!(!ScreeningMode::Auto.enabled(3));
        assert!(ScreeningMode::Auto.enabled(AUTO_MIN_ATOMS));
        assert!(ScreeningMode::On.enabled(1));
        assert!(!ScreeningMode::Off.enabled(10_000));
    }

    #[test]
    fn functions_near_matches_linear_scan() {
        for structure in [water(), polyethylene(10)] {
            let basis = BasisSet::build(&structure, BasisSettings::Light);
            let plan = ScreenPlan::build(&structure, &basis);
            let (lo, hi) = structure.bounding_box();
            let mid = [
                0.5 * (lo[0] + hi[0]),
                0.5 * (lo[1] + hi[1]),
                0.5 * (lo[2] + hi[2]),
            ];
            for p in [lo, mid, hi, [hi[0] + 3.0, hi[1], hi[2]]] {
                for extra in [0.0, 0.8, 2.5] {
                    assert_eq!(
                        plan.functions_near(&basis, p, extra),
                        basis.functions_near(p, extra),
                        "p = {p:?}, extra = {extra}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_covers_basis_atom_major() {
        let s = polyethylene(6);
        let basis = BasisSet::build(&s, BasisSettings::Light);
        let plan = ScreenPlan::build(&s, &basis);
        assert_eq!(plan.partition.n_blocks(), s.len());
        assert_eq!(plan.partition.total(), basis.len());
        for (i, &a) in plan.fn_atom.iter().enumerate() {
            assert_eq!(a as usize, basis.atom_of(i));
            let off = plan.partition.offset(a as usize);
            assert!(i >= off && i < off + plan.partition.size(a as usize));
        }
    }

    #[test]
    fn empty_blocks_cover_neighbour_support() {
        let s = polyethylene(8);
        let basis = BasisSet::build(&s, BasisSettings::Light);
        let plan = ScreenPlan::build(&s, &basis);
        let m = plan.empty_blocks();
        assert_eq!(m.nnz_blocks(), plan.neighbours.n_pairs());
        for i in 0..s.len() {
            for &j in plan.neighbours.neighbours(i) {
                assert!(m.find(i, j as usize).is_some());
            }
        }
        assert!(m.fill_ratio() < 1.0);
    }
}
