//! Self-consistency accelerators shared by the ground-state SCF and the
//! DFPT response cycle: plain linear mixing and Pulay/DIIS extrapolation.
//!
//! The SCF loop has used DIIS over the density matrix since PR 1; this
//! module extracts that machinery so the DFPT drivers (serial
//! [`crate::dfpt::dfpt_direction`] and the distributed
//! [`crate::parallel`] `DirWork` body) can accelerate the Sternheimer
//! self-consistency the same way — the "accelerated self-consistency"
//! half of the hot-path work, next to the GEMM-form response build.
//!
//! Everything here is deterministic: the extrapolation is a fixed-order
//! dense solve over the residual history, so mixed iterates are
//! bit-identical at any thread count (the determinism contract of
//! `tests/determinism_threads.rs` extends through the mixer).

use qp_linalg::DMatrix;

/// Which mixer drives the DFPT self-consistency. The SCF has its own knob
/// ([`crate::scf::ScfOptions::pulay`]); this enum is the DFPT equivalent,
/// carried in [`crate::dfpt::DfptOptions::mixer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfptMixer {
    /// Plain linear mixing with the `mixing` factor.
    Linear,
    /// Pulay/DIIS extrapolation over the last `depth` iterates, with the
    /// `mixing` factor as residual damping (and as the linear fallback
    /// while the history is short or after a restart).
    Pulay {
        /// History length (the SCF default is 6).
        depth: usize,
    },
}

/// Pulay/DIIS step: find `c` minimizing `‖Σ cᵢ Rᵢ‖` with `Σ cᵢ = 1`, then
/// return `Σ cᵢ (Pᵢ + damping·Rᵢ)`. Returns `None` when the DIIS system is
/// numerically singular (caller restarts the history).
pub fn pulay_extrapolate(p_in: &[DMatrix], residuals: &[DMatrix], damping: f64) -> Option<DMatrix> {
    let m = p_in.len();
    // KKT system: [[B, 1], [1ᵀ, 0]] [c; λ] = [0; 1].
    let mut kkt = DMatrix::zeros(m + 1, m + 1);
    for i in 0..m {
        for j in 0..m {
            let dot: f64 = residuals[i]
                .as_slice()
                .iter()
                .zip(residuals[j].as_slice().iter())
                .map(|(a, b)| a * b)
                .sum();
            kkt[(i, j)] = dot;
        }
        kkt[(i, m)] = 1.0;
        kkt[(m, i)] = 1.0;
    }
    let mut rhs = vec![0.0; m + 1];
    rhs[m] = 1.0;
    let sol = qp_linalg::dense::lu_solve(&kkt, &rhs).ok()?;
    let mut p = DMatrix::zeros(p_in[0].rows(), p_in[0].cols());
    for i in 0..m {
        let c = sol[i];
        if !c.is_finite() || c.abs() > 1e4 {
            return None;
        }
        p.axpy(c, &p_in[i]).ok()?;
        p.axpy(c * damping, &residuals[i]).ok()?;
    }
    Some(p)
}

/// `(1 − β)·current + β·target`.
pub fn linear_mix(current: &DMatrix, target: &DMatrix, beta: f64) -> DMatrix {
    let mut out = current.clone();
    out.scale(1.0 - beta);
    out.axpy(beta, target).expect("same dims");
    out
}

/// Loop-carried mixer state for one self-consistency cycle: either a plain
/// linear mixer (stateless) or a Pulay history. Construct once per cycle
/// and feed `(current, target)` pairs through [`MixState::step`].
///
/// The Pulay schedule mirrors the SCF loop exactly: linear mixing until
/// three `(input, residual)` pairs are banked, DIIS afterwards, history
/// capped at `depth`, and a restart (clear + one linear step) when the
/// DIIS system is ill-conditioned.
#[derive(Debug, Clone)]
pub enum MixState {
    /// Plain linear mixing.
    Linear {
        /// Mixing factor β.
        beta: f64,
    },
    /// Pulay/DIIS history.
    Pulay {
        /// History length.
        depth: usize,
        /// Residual damping and linear-fallback factor.
        beta: f64,
        /// Input-iterate history (most recent last).
        inputs: Vec<DMatrix>,
        /// Residual history (same length as `inputs`).
        residuals: Vec<DMatrix>,
    },
}

impl MixState {
    /// Fresh mixer state for `mixer` with mixing factor `beta`.
    pub fn new(mixer: DfptMixer, beta: f64) -> Self {
        match mixer {
            DfptMixer::Linear => MixState::Linear { beta },
            DfptMixer::Pulay { depth } => MixState::Pulay {
                depth,
                beta,
                inputs: Vec::new(),
                residuals: Vec::new(),
            },
        }
    }

    /// Rebuild mixer state from a checkpointed history (empty vectors for
    /// the linear mixer). The histories must replay the fault-free
    /// sequence bit-exactly, which holds because [`MixState::step`] is
    /// deterministic in its inputs.
    pub fn with_history(
        mixer: DfptMixer,
        beta: f64,
        inputs: Vec<DMatrix>,
        residuals: Vec<DMatrix>,
    ) -> Self {
        match mixer {
            DfptMixer::Linear => MixState::Linear { beta },
            DfptMixer::Pulay { depth } => MixState::Pulay {
                depth,
                beta,
                inputs,
                residuals,
            },
        }
    }

    /// The `(inputs, residuals)` history for checkpointing — empty for the
    /// linear mixer.
    pub fn history(&self) -> (&[DMatrix], &[DMatrix]) {
        match self {
            MixState::Linear { .. } => (&[], &[]),
            MixState::Pulay {
                inputs, residuals, ..
            } => (inputs, residuals),
        }
    }

    /// Advance the cycle: record `(current, target − current)` and return
    /// the next mixed iterate.
    pub fn step(&mut self, current: &DMatrix, target: &DMatrix) -> DMatrix {
        match self {
            MixState::Linear { beta } => linear_mix(current, target, *beta),
            MixState::Pulay {
                depth,
                beta,
                inputs,
                residuals,
            } => {
                let mut r = target.clone();
                r.axpy(-1.0, current).expect("same dims");
                inputs.push(current.clone());
                residuals.push(r);
                while inputs.len() > *depth {
                    inputs.remove(0);
                    residuals.remove(0);
                }
                if inputs.len() >= 3 {
                    if let Some(p) = pulay_extrapolate(inputs, residuals, *beta) {
                        return p;
                    }
                    // Ill-conditioned DIIS system: restart the history.
                    inputs.clear();
                    residuals.clear();
                }
                linear_mix(current, target, *beta)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: &[f64]) -> DMatrix {
        DMatrix::from_vec(2, 2, v.to_vec()).unwrap()
    }

    #[test]
    fn linear_state_matches_closed_form() {
        let mut st = MixState::new(DfptMixer::Linear, 0.25);
        let cur = m(&[1.0, 2.0, 3.0, 4.0]);
        let tgt = m(&[5.0, 6.0, 7.0, 8.0]);
        let out = st.step(&cur, &tgt);
        for (i, &v) in [2.0, 3.0, 4.0, 5.0].iter().enumerate() {
            assert!((out.as_slice()[i] - v).abs() < 1e-15);
        }
        assert!(st.history().0.is_empty());
    }

    /// A contractive diagonal map `T(x)_i = λ_i x_i + b_i` with distinct
    /// eigenvalues (so the residual history spans more than one direction
    /// and the DIIS system is well-posed).
    fn apply(x: &DMatrix) -> DMatrix {
        let lambda = [0.9, 0.5, 0.2, 0.7];
        let b = [1.0, 2.0, -1.0, 0.5];
        let mut t = x.clone();
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            *v = lambda[i] * *v + b[i];
        }
        t
    }

    #[test]
    fn pulay_state_is_linear_until_three_entries() {
        let beta = 0.4;
        let mut st = MixState::new(DfptMixer::Pulay { depth: 4 }, beta);
        let x0 = m(&[0.0; 4]);
        let step1 = st.step(&x0, &apply(&x0));
        assert_eq!(step1.max_abs_diff(&linear_mix(&x0, &apply(&x0), beta)), 0.0);
        let step2 = st.step(&step1, &apply(&step1));
        assert_eq!(
            step2.max_abs_diff(&linear_mix(&step1, &apply(&step1), beta)),
            0.0
        );
        // Third step has 3 banked pairs: DIIS kicks in and deviates from
        // the plain linear step.
        let step3 = st.step(&step2, &apply(&step2));
        assert!(step3.max_abs_diff(&linear_mix(&step2, &apply(&step2), beta)) > 1e-12);
    }

    #[test]
    fn pulay_fixed_point_converges_faster_than_linear() {
        let run = |mixer: DfptMixer| {
            let mut st = MixState::new(mixer, 0.5);
            let mut x = m(&[0.0; 4]);
            for it in 1..=300 {
                let t = apply(&x);
                let next = st.step(&x, &t);
                let res = next.max_abs_diff(&x);
                x = next;
                if res < 1e-10 {
                    return it;
                }
            }
            300
        };
        let lin = run(DfptMixer::Linear);
        let diis = run(DfptMixer::Pulay { depth: 6 });
        assert!(diis < lin, "DIIS {diis} iters vs linear {lin}");
        assert!(diis < 30, "DIIS should converge quickly, took {diis}");
    }

    #[test]
    fn history_cap_and_round_trip() {
        let mut st = MixState::new(DfptMixer::Pulay { depth: 3 }, 0.3);
        let tgt = m(&[1.0, 1.0, 1.0, 1.0]);
        let mut x = m(&[0.0; 4]);
        for _ in 0..6 {
            x = st.step(&x, &tgt);
        }
        let (ins, res) = st.history();
        assert!(ins.len() <= 3 && ins.len() == res.len());
        // Rebuilding from the snapshot must continue identically.
        let mut a = st.clone();
        let mut b = MixState::with_history(
            DfptMixer::Pulay { depth: 3 },
            0.3,
            ins.to_vec(),
            res.to_vec(),
        );
        let xa = a.step(&x, &tgt);
        let xb = b.step(&x, &tgt);
        assert_eq!(xa.max_abs_diff(&xb), 0.0, "bit-identical resume");
    }
}
