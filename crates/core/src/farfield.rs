//! Far-field evaluation control for the Hartree potential phases.
//!
//! [`FarFieldMode`] mirrors [`crate::screening::ScreeningMode`]: a
//! user-facing execution knob (`--farfield direct|tree|auto`) that never
//! changes *what* is computed, only *how fast* the far part of the
//! partitioned Hartree sum converges. The `direct` path is the oracle;
//! `tree` serves atoms beyond the near radius from hierarchical cluster
//! expansions (see `qp_grid::farfield`) within the `QP_FARFIELD_TOL`
//! accuracy budget; `auto` picks `tree` only for structures large enough
//! that the O(n²) direct sum is the dominant Rho cost.

/// Structures at or above this many atoms use the cluster tree under
/// [`FarFieldMode::Auto`]. Below it the direct sum is already cheap and —
/// unlike screening — the tree path is *not* bit-identical (it is
/// tolerance-bounded), so small systems keep the exact evaluator. All
/// regression workloads (water = 3, ligand = 49, polymer:8 = 50 atoms)
/// stay on the direct path under `auto`.
pub const FARFIELD_AUTO_MIN_ATOMS: usize = 96;

/// User-facing far-field control (`--farfield direct|tree|auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FarFieldMode {
    /// Always the exact per-atom sum (the test oracle).
    Direct,
    /// Always serve the far field from the hierarchical cluster tree.
    Tree,
    /// Tree when the structure has at least [`FARFIELD_AUTO_MIN_ATOMS`]
    /// atoms, direct otherwise.
    #[default]
    Auto,
}

impl FarFieldMode {
    /// Whether a structure of `natoms` atoms evaluates its Hartree far
    /// field through the cluster tree.
    pub fn enabled(self, natoms: usize) -> bool {
        match self {
            FarFieldMode::Direct => false,
            FarFieldMode::Tree => true,
            FarFieldMode::Auto => natoms >= FARFIELD_AUTO_MIN_ATOMS,
        }
    }
}

impl std::str::FromStr for FarFieldMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "direct" => Ok(FarFieldMode::Direct),
            "tree" => Ok(FarFieldMode::Tree),
            "auto" => Ok(FarFieldMode::Auto),
            other => Err(format!(
                "invalid farfield mode '{other}' (expected direct|tree|auto)"
            )),
        }
    }
}

impl std::fmt::Display for FarFieldMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FarFieldMode::Direct => "direct",
            FarFieldMode::Tree => "tree",
            FarFieldMode::Auto => "auto",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_roundtrip() {
        for (s, m) in [
            ("direct", FarFieldMode::Direct),
            ("tree", FarFieldMode::Tree),
            ("auto", FarFieldMode::Auto),
        ] {
            assert_eq!(s.parse::<FarFieldMode>().unwrap(), m);
            assert_eq!(m.to_string(), s);
        }
        assert!("TREE".parse::<FarFieldMode>().is_err());
        assert!("fmm".parse::<FarFieldMode>().is_err());
    }

    #[test]
    fn auto_threshold_keeps_regression_workloads_direct() {
        assert!(!FarFieldMode::Auto.enabled(3)); // water
        assert!(!FarFieldMode::Auto.enabled(49)); // ligand
        assert!(!FarFieldMode::Auto.enabled(50)); // polymer:8
        assert!(FarFieldMode::Auto.enabled(FARFIELD_AUTO_MIN_ATOMS));
        assert!(FarFieldMode::Tree.enabled(1));
        assert!(!FarFieldMode::Direct.enabled(10_000));
    }
}
