//! Ground-state Kohn–Sham self-consistency (Eqs. 1–6 of the paper).
//!
//! The DFT phase "serves to provide data for the DFPT phase" (artifact
//! appendix): converged orbitals `C`, eigenvalues `ε`, density matrix `P`
//! and ground-state density `n₀(r)`. The loop is the standard one —
//! density → Hartree potential (multipole Poisson) → xc potential → `H` →
//! generalized eigenproblem → new density — with linear mixing.

use crate::mixing::pulay_extrapolate;
use crate::operators;
use crate::system::System;
use crate::{CoreError, Result};
use qp_chem::multipole::{solve_poisson, MultipoleMoments};
use qp_chem::xc;
use qp_grid::FarField;
use qp_linalg::{generalized_symmetric_eigen, DMatrix};

/// SCF options.
#[derive(Debug, Clone, Copy)]
pub struct ScfOptions {
    /// Maximum SCF iterations.
    pub max_iter: usize,
    /// Convergence threshold on the density-matrix change (max abs).
    pub tol: f64,
    /// Linear mixing parameter for the density matrix.
    pub mixing: f64,
    /// Homogeneous external electric field ξ (adds `−Σ_d ξ_d D_d` to `H`;
    /// the finite-difference cross-check of the DFPT implementation).
    pub field: Option<[f64; 3]>,
    /// Fermi–Dirac smearing width kT (Hartree, Eq. 3). `None` = integer
    /// (aufbau) occupations; small gaps and near-degenerate frontier
    /// orbitals need smearing to converge.
    pub smearing: Option<f64>,
    /// Pulay/DIIS history length. `Some(m)` accelerates convergence by
    /// extrapolating over the last `m` density matrices (linear mixing is
    /// used for the first two iterations); `None` = plain linear mixing.
    pub pulay: Option<usize>,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            max_iter: 120,
            tol: 1e-8,
            mixing: 0.35,
            field: None,
            smearing: None,
            pulay: Some(6),
        }
    }
}

/// Converged ground state.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Kohn–Sham total energy (Hartree).
    pub energy: f64,
    /// Eigenvalues (ascending).
    pub eigenvalues: Vec<f64>,
    /// Orbital coefficients `C` (columns), `S`-orthonormal.
    pub orbitals: DMatrix,
    /// Density matrix `P` (Eq. 6).
    pub density_matrix: DMatrix,
    /// Orbital occupations `f_i` (2/0 aufbau, or Fermi–Dirac under
    /// smearing).
    pub occupations: Vec<f64>,
    /// Ground-state density at every grid point.
    pub density: Vec<f64>,
    /// Overlap matrix (reused by DFPT).
    pub overlap: DMatrix,
    /// Iterations used.
    pub iterations: usize,
}

/// The loop-carried SCF state between iterations: everything needed to
/// resume the cycle at `start_iter + 1` and replay the remaining
/// iterations bit-exactly. Snapshotted by the checkpoint layer
/// (`qp-resil`) and fed back through [`scf_resumable`].
#[derive(Debug, Clone)]
pub struct ScfState {
    /// Completed SCF iterations.
    pub start_iter: usize,
    /// Kohn–Sham total energy at `start_iter` (diagnostic).
    pub energy: f64,
    /// The mixed density matrix seeding iteration `start_iter + 1`.
    pub p_mat: DMatrix,
    /// Pulay/DIIS input-density history.
    pub diis_in: Vec<DMatrix>,
    /// Pulay/DIIS residual history.
    pub diis_res: Vec<DMatrix>,
}

/// Electronic dipole moment `∫ r_I n(r) d³r` for each Cartesian direction,
/// from the density on the grid.
pub fn electronic_dipole(system: &System, density: &[f64]) -> [f64; 3] {
    let mut mu = [0.0; 3];
    for (p, &n) in system.grid.points.iter().zip(density.iter()) {
        for d in 0..3 {
            mu[d] += p.weight * p.position[d] * n;
        }
    }
    mu
}

/// Outcome of a preemptible SCF run.
pub enum ScfOutcome {
    /// The cycle converged; the ground state.
    Converged(ScfResult),
    /// The `on_iter` callback requested preemption; resume later by
    /// passing this state back to [`scf_preemptible`].
    Preempted(ScfState),
}

/// Run the ground-state SCF.
pub fn scf(system: &System, opts: &ScfOptions) -> Result<ScfResult> {
    scf_resumable(system, opts, None, &mut |_| {})
}

/// [`scf`] with checkpoint/restart hooks: `resume` seeds the loop from a
/// previously captured [`ScfState`] (replaying the remaining iterations
/// bit-exactly), and `on_iter` observes the loop-carried state after every
/// non-converged iteration (the checkpoint layer snapshots it there).
pub fn scf_resumable(
    system: &System,
    opts: &ScfOptions,
    resume: Option<ScfState>,
    on_iter: &mut dyn FnMut(&ScfState),
) -> Result<ScfResult> {
    match scf_preemptible(system, opts, resume, &mut |st| {
        on_iter(st);
        true
    })? {
        ScfOutcome::Converged(res) => Ok(res),
        ScfOutcome::Preempted(_) => unreachable!("callback never preempts"),
    }
}

/// [`scf_resumable`] whose `on_iter` callback can additionally request
/// preemption at an iteration boundary by returning `false` — the
/// resumable-run entry point the serving layer (`qp-serve`) drives. The
/// returned [`ScfState`] is exactly what a later call replays from, and
/// the preempted-then-resumed cycle lands on the bit-identical ground
/// state (the replay argument of `tests/integration_resilience.rs`).
pub fn scf_preemptible(
    system: &System,
    opts: &ScfOptions,
    resume: Option<ScfState>,
    on_iter: &mut dyn FnMut(&ScfState) -> bool,
) -> Result<ScfOutcome> {
    let mut scf_span =
        qp_trace::SpanGuard::begin(qp_trace::thread_rank(), qp_trace::Phase::Scf, "scf");
    // Regions and GEMMs launched anywhere in the SCF loop default to the
    // "scf" phase bucket unless a finer phase_span overrides it.
    let _label = qp_par::LabelGuard::set("scf");
    if scf_span.is_recording() {
        scf_span
            .arg("atoms", system.structure.len())
            .arg("basis", system.n_basis());
    }
    let residual_gauge = qp_trace::global_metrics().gauge("scf.residual", &[]);
    let energy_gauge = qp_trace::global_metrics().gauge("scf.energy", &[]);
    let s_mat = operators::overlap(system);
    let t_mat = operators::kinetic(system);
    let v_ext = operators::external_potential(system);
    let v_ext_mat = operators::potential_matrix(system, &v_ext);

    let mut h_core = t_mat.clone();
    h_core.axpy(1.0, &v_ext_mat)?;
    if let Some(field) = opts.field {
        for (d, &xi) in field.iter().enumerate() {
            if xi != 0.0 {
                let dip = operators::dipole_matrix(system, d);
                h_core.axpy(-xi, &dip)?;
            }
        }
    }

    // Initial guess: core Hamiltonian.
    let n_occ = system.n_occupied();
    let n_elec = system.n_electrons() as f64;
    let occupy = |eigs: &[f64]| -> Vec<f64> {
        match opts.smearing {
            Some(kt) => operators::fermi_occupations(eigs, n_elec, kt),
            None => {
                let mut f = vec![0.0; eigs.len()];
                for fi in f.iter_mut().take(n_occ) {
                    *fi = 2.0;
                }
                f
            }
        }
    };
    let (start_iter, mut p_mat, mut diis_in, mut diis_res) = match resume {
        Some(st) => (st.start_iter, st.p_mat, st.diis_in, st.diis_res),
        None => {
            let dec0 = generalized_symmetric_eigen(&h_core, &s_mat)?;
            let occ0 = occupy(&dec0.eigenvalues);
            let p0 = operators::density_matrix_occ(&dec0.eigenvectors, &occ0);
            (0, p0, Vec::new(), Vec::new())
        }
    };

    let mut last: (qp_linalg::EigenDecomposition, f64, Vec<f64>);
    let mut residual = f64::INFINITY;
    for iter in (start_iter + 1)..=opts.max_iter {
        let mut iter_span =
            qp_trace::SpanGuard::begin(qp_trace::thread_rank(), qp_trace::Phase::Scf, "scf.iter");
        if iter_span.is_recording() {
            iter_span.arg("iter", iter);
        }
        let density = system.density_on_grid(&p_mat);
        // Hartree potential of the electron density. The geometry plan
        // (distances, harmonics, spline brackets per (point, atom)) is
        // precomputed once per system; the planned and direct branches are
        // bit-identical, and which one runs depends only on system size.
        let plan = system.hartree_plan();
        let moments = match plan.as_deref() {
            Some(pl) => {
                MultipoleMoments::compute_planned(&system.structure, &system.grid, &density, pl)
            }
            None => {
                MultipoleMoments::compute(&system.structure, &system.grid, &density, system.lmax)
            }
        };
        let hartree = solve_poisson(&system.structure, &system.grid, &moments);
        let natoms = system.structure.len();
        // Each point's potential lands in its own slot; the index-ordered
        // parallel fill returns bit-identical values at any thread count.
        let mut v_h = vec![0.0; system.grid.len()];
        let est = (natoms * hartree.n_lm * 8).max(1) as u64;
        // The hierarchical far field (when the mode enables it) replaces
        // the O(natoms) per-point sum by near-set + cluster expansions,
        // within the QP_FARFIELD_TOL budget; otherwise the planned and
        // direct branches are bit-identical.
        match system.farfield_tree() {
            Some(tree) => {
                let far = FarField::aggregate(tree, &hartree, qp_grid::farfield_tol());
                qp_par::fill_slice_hinted(&mut v_h, est, |ip| {
                    far.eval(tree, &hartree, system.grid.points[ip].position)
                });
            }
            None => match plan.as_deref() {
                Some(pl) => {
                    qp_par::fill_slice_hinted(&mut v_h, est, |ip| hartree.eval_planned(pl, ip))
                }
                None => qp_par::fill_slice_hinted(&mut v_h, est, |ip| {
                    hartree.eval_atoms(system.grid.points[ip].position, 0..natoms)
                }),
            },
        }
        let v_xc: Vec<f64> = density.iter().map(|&n| xc::v_xc(n.max(0.0))).collect();
        let v_eff: Vec<f64> = v_h.iter().zip(v_xc.iter()).map(|(a, b)| a + b).collect();
        let v_eff_mat = operators::potential_matrix(system, &v_eff);

        let mut h = h_core.clone();
        h.axpy(1.0, &v_eff_mat)?;
        let dec = generalized_symmetric_eigen(&h, &s_mat)?;
        let occ = occupy(&dec.eigenvalues);
        let p_new = operators::density_matrix_occ(&dec.eigenvectors, &occ);

        residual = p_new.max_abs_diff(&p_mat);
        residual_gauge.set(residual);
        if iter_span.is_recording() {
            iter_span.arg("residual", residual);
        }

        // Kohn-Sham total energy: Σ f_i ε_i − ½∫n v_H − ∫n v_xc + ∫n ε_xc
        // + E_nuc-nuc.
        let band: f64 = dec
            .eigenvalues
            .iter()
            .zip(occ.iter())
            .map(|(e, f)| f * e)
            .sum();
        let e_h: f64 = system
            .grid
            .points
            .iter()
            .zip(density.iter().zip(v_h.iter()))
            .map(|(p, (&n, &vh))| p.weight * n * vh)
            .sum();
        let e_vxc: f64 = system
            .grid
            .points
            .iter()
            .zip(density.iter().zip(v_xc.iter()))
            .map(|(p, (&n, &vx))| p.weight * n * vx)
            .sum();
        let e_xc: f64 = system
            .grid
            .points
            .iter()
            .zip(density.iter())
            .map(|(p, &n)| p.weight * n * xc::epsilon_xc(n.max(0.0)))
            .sum();
        let energy = band - 0.5 * e_h - e_vxc + e_xc + system.structure.nuclear_repulsion();

        last = (dec, energy, density);

        if residual < opts.tol {
            energy_gauge.set(energy);
            // Final density consistent with the converged orbitals.
            let density = system.density_on_grid(&p_new);
            return Ok(ScfOutcome::Converged(ScfResult {
                energy,
                eigenvalues: last.0.eigenvalues,
                orbitals: last.0.eigenvectors,
                density_matrix: p_new,
                occupations: occ,
                density,
                overlap: s_mat,
                iterations: iter,
            }));
        }

        // Mixing: Pulay/DIIS extrapolation over the residual history when
        // enabled, plain linear mixing otherwise (and for the first steps).
        diis_in.push(p_mat.clone());
        let mut r = p_new.clone();
        r.axpy(-1.0, &p_mat)?;
        diis_res.push(r);
        if let Some(depth) = opts.pulay {
            while diis_in.len() > depth {
                diis_in.remove(0);
                diis_res.remove(0);
            }
        }
        let use_diis = opts.pulay.is_some() && diis_in.len() >= 3;
        p_mat = if use_diis {
            match pulay_extrapolate(&diis_in, &diis_res, opts.mixing) {
                Some(p) => p,
                None => {
                    // Ill-conditioned DIIS system: restart the history.
                    diis_in.clear();
                    diis_res.clear();
                    let mut mixed = p_mat.clone();
                    mixed.scale(1.0 - opts.mixing);
                    mixed.axpy(opts.mixing, &p_new)?;
                    mixed
                }
            }
        } else {
            let mut mixed = p_mat.clone();
            mixed.scale(1.0 - opts.mixing);
            mixed.axpy(opts.mixing, &p_new)?;
            mixed
        };

        let state = ScfState {
            start_iter: iter,
            energy,
            p_mat: p_mat.clone(),
            diis_in: diis_in.clone(),
            diis_res: diis_res.clone(),
        };
        if !on_iter(&state) {
            return Ok(ScfOutcome::Preempted(state));
        }
    }
    Err(CoreError::NoConvergence {
        what: "ground-state SCF",
        iterations: opts.max_iter,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;

    fn water_system() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 30;
        gs.max_angular = 26;
        System::build(water(), BasisSettings::Light, &gs, 150, 2)
    }

    #[test]
    fn water_scf_converges() {
        let sys = water_system();
        let res = scf(&sys, &ScfOptions::default()).expect("water SCF converges");
        assert!(res.iterations < 120);
        // Density integrates to 10 electrons (grid-quadrature tolerance).
        let ne = sys.grid.integrate_values(&res.density);
        assert!((ne - 10.0).abs() < 0.1, "∫n = {ne}");
        // Energy in a physically sensible window for LDA water in a minimal
        // confined basis (exact: ≈ −75.9 Ha; minimal-basis coarse-grid
        // variational energy lands above that but must be deeply bound).
        assert!(
            res.energy < -50.0 && res.energy > -110.0,
            "E = {}",
            res.energy
        );
    }

    #[test]
    fn water_has_five_bound_occupied_orbitals() {
        let sys = water_system();
        let res = scf(&sys, &ScfOptions::default()).unwrap();
        for i in 0..5 {
            assert!(
                res.eigenvalues[i] < 0.0,
                "occupied ε_{i} = {}",
                res.eigenvalues[i]
            );
        }
        // Finite HOMO-LUMO gap.
        let gap = res.eigenvalues[5] - res.eigenvalues[4];
        assert!(gap > 0.05, "gap = {gap}");
    }

    #[test]
    fn orbitals_are_overlap_orthonormal() {
        let sys = water_system();
        let res = scf(&sys, &ScfOptions::default()).unwrap();
        let ctsc = res
            .orbitals
            .transpose()
            .matmul(&res.overlap)
            .unwrap()
            .matmul(&res.orbitals)
            .unwrap();
        assert!(ctsc.max_abs_diff(&DMatrix::identity(sys.n_basis())) < 1e-8);
    }

    #[test]
    fn field_polarizes_the_density() {
        let sys = water_system();
        let res0 = scf(&sys, &ScfOptions::default()).unwrap();
        let mu0 = electronic_dipole(&sys, &res0.density);
        let xi = 0.005;
        let resf = scf(
            &sys,
            &ScfOptions {
                field: Some([0.0, 0.0, xi]),
                ..ScfOptions::default()
            },
        )
        .unwrap();
        let muf = electronic_dipole(&sys, &resf.density);
        // With h' = −ξ r_z, electrons shift toward +z: ∫ z n grows.
        assert!(
            muf[2] > mu0[2] + 1e-5,
            "dipole did not respond: {} -> {}",
            mu0[2],
            muf[2]
        );
    }

    #[test]
    fn scf_is_deterministic() {
        let sys = water_system();
        let a = scf(&sys, &ScfOptions::default()).unwrap();
        let b = scf(&sys, &ScfOptions::default()).unwrap();
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }
}
